"""Shared configuration for the benchmark harness.

Each ``test_bench_*`` module regenerates one table or figure of the paper via
the corresponding driver in :mod:`repro.experiments`, times it with
pytest-benchmark, and prints the reproduced rows/series so the output can be
compared against the paper side by side.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks print their reproduced tables; keep output readable.
    config.option.benchmark_disable_gc = True


@pytest.fixture
def show():
    """Print a reproduced table/figure under the benchmark's output."""

    def _show(text: str) -> None:
        print("\n" + text)

    return _show
