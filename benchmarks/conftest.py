"""Shared configuration for the benchmark harness.

Each ``test_bench_*`` module regenerates one table or figure of the paper via
the corresponding driver in :mod:`repro.experiments`, times it with
pytest-benchmark, and prints the reproduced rows/series so the output can be
compared against the paper side by side.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import subprocess
import sys

import pytest


def pytest_configure(config):
    # Benchmarks print their reproduced tables; keep output readable.
    config.option.benchmark_disable_gc = True


@pytest.fixture
def show():
    """Print a reproduced table/figure under the benchmark's output."""

    def _show(text: str) -> None:
        print("\n" + text)

    return _show


#: stderr lines matching any of these fragments are shell-environment noise,
#: not program output.  Conda-based CI images emit activation warnings
#: ("CondaError: Run 'conda init' ...", "CommandNotFoundError: ...") on every
#: subprocess that starts a login shell, which used to litter bench logs and
#: made real warnings easy to miss.
_STDERR_NOISE_FRAGMENTS = (
    "CondaError",
    "CommandNotFoundError",
    "conda init",
    "conda activate",
)


@pytest.fixture
def run_quiet():
    """Run a subprocess, forwarding stderr with shell-activation noise removed.

    Returns the ``CompletedProcess`` (stdout/stderr captured as text, the
    filtered stderr re-emitted to this process's stderr).  Benchmarks that
    shell out — e.g. to ``tools/profile_engine.py`` — use this instead of
    ``subprocess.run`` directly so conda activation warnings from the CI
    image's login shell never end up in the bench logs.
    """

    def _run(argv, **kwargs):
        kwargs.setdefault("capture_output", True)
        kwargs.setdefault("text", True)
        proc = subprocess.run(argv, **kwargs)
        if proc.stderr:
            kept = [
                line
                for line in proc.stderr.splitlines()
                if not any(f in line for f in _STDERR_NOISE_FRAGMENTS)
            ]
            if kept:
                print("\n".join(kept), file=sys.stderr)
        return proc

    return _run
