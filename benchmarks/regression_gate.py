"""Throughput regression gate for the benchmark baselines.

Compares a freshly produced metrics JSON against the matching committed
baseline and fails when any gated metric regressed by more than the
tolerance (default 20%).  ``--kind`` selects the metric set:

``batching`` (default)
    Fresh JSON from ``benchmarks/test_bench_batching.py`` vs the committed
    ``BENCH_batching.json``.  The gated quantities are *simulation
    outcomes* — goodput, throughput, SLO attainment and the B=8/B=1
    goodput gain — which are deterministic for a fixed seed, so the gate
    is immune to CI runner noise; a >20% drop can only come from a
    behavioral change in the serving stack.  Cache-load counts are gated
    in the other direction: the batched cell must not load *more* than
    the baseline allows.

``engine``
    Fresh JSON from ``benchmarks/test_bench_engine.py`` vs the committed
    ``BENCH_engine.json``.  These are *wall-clock* queries/sec of the
    engine's fast/sharded execution strategies, so CI passes a wide
    tolerance (runner speed varies); the ``fast_speedup`` ratio is the
    stable signal — both loops run on the same machine, so a drop means
    the fast path itself got slower relative to the reference loop.
    Only the 10k/1M tiers are gated: the 10M tier is nightly-only and
    absent from PR-produced fresh JSONs.

Usage::

    python benchmarks/regression_gate.py \
        benchmarks/BENCH_batching.json benchmark-batching-fresh.json \
        [--tolerance 0.20]
    python benchmarks/regression_gate.py --kind engine \
        benchmarks/BENCH_engine.json benchmark-engine-fresh.json \
        --tolerance 0.5
"""

from __future__ import annotations

import argparse
import json
import sys

#: (path into the JSON, metric direction). ``higher``: fresh must reach
#: baseline * (1 - tolerance). ``lower``: fresh must stay under
#: baseline * (1 + tolerance).
GATED_METRICS: dict[str, tuple[tuple[tuple[str, ...], str], ...]] = {
    "batching": (
        (("B1", "goodput_per_ms"), "higher"),
        (("B1", "throughput_per_ms"), "higher"),
        (("B8", "goodput_per_ms"), "higher"),
        (("B8", "throughput_per_ms"), "higher"),
        (("B8", "mean_batch_occupancy"), "higher"),
        (("goodput_gain",), "higher"),
        (("B8", "cache_loads"), "lower"),
    ),
    "engine": (
        (("q10k", "fast_qps"), "higher"),
        (("q1m", "reference_qps"), "higher"),
        (("q1m", "fast_qps"), "higher"),
        (("q1m", "shard_qps"), "higher"),
        (("q1m", "fast_speedup"), "higher"),
    ),
}


def _lookup(data: dict, path: tuple[str, ...]) -> float:
    node = data
    for key in path:
        node = node[key]
    return float(node)


def check(baseline: dict, fresh: dict, tolerance: float, kind: str = "batching") -> list[str]:
    """Violation messages (empty when every gated metric is within bounds)."""
    violations = []
    for path, direction in GATED_METRICS[kind]:
        label = ".".join(path)
        try:
            base = _lookup(baseline, path)
            new = _lookup(fresh, path)
        except KeyError:
            violations.append(f"{label}: missing from baseline or fresh JSON")
            continue
        if direction == "higher":
            floor = base * (1.0 - tolerance)
            if new < floor:
                violations.append(
                    f"{label}: {new:.4f} < {floor:.4f} "
                    f"(baseline {base:.4f}, tolerance {tolerance:.0%})"
                )
        else:
            ceiling = base * (1.0 + tolerance)
            if new > ceiling:
                violations.append(
                    f"{label}: {new:.4f} > {ceiling:.4f} "
                    f"(baseline {base:.4f}, tolerance {tolerance:.0%})"
                )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly produced metrics JSON")
    parser.add_argument(
        "--kind",
        choices=sorted(GATED_METRICS),
        default="batching",
        help="which benchmark's metric set to gate (default: batching)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative regression (default 0.20)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.fresh, encoding="utf-8") as fh:
        fresh = json.load(fh)
    violations = check(baseline, fresh, args.tolerance, args.kind)
    if violations:
        print("throughput regression gate FAILED:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print(
        f"throughput regression gate passed "
        f"({len(GATED_METRICS[args.kind])} {args.kind} metrics "
        f"within {args.tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
