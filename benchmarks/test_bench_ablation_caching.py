"""Benchmark (extension): ablation of SubGraph caching policies."""

from repro.experiments import ablation_caching as exp


def test_bench_ablation_caching(benchmark, show):
    result = benchmark(exp.run, "ofa_mobilenetv3", num_queries=120)
    show(exp.report(result))
    outcomes = result.by_name()
    # Any caching beats never caching; adaptive policies beat never caching on
    # byte hit ratio.
    assert outcomes["running-average"].mean_latency_ms <= outcomes["never"].mean_latency_ms
    assert outcomes["running-average"].mean_byte_hit_ratio > outcomes["never"].mean_byte_hit_ratio
