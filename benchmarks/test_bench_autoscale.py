"""Benchmark (extension): the SLO-attainment-vs-cost frontier sweep.

Acceptance demonstration for the autoscaling control plane, driven through
the declarative facade: over one diurnal + flash-crowd trace the reactive
autoscaler must attain at least the SLO of the best static pool of no
greater replica-seconds cost, while costing less than the static pool sized
for the peak.  The full frontier (static pools, reactive and
target-utilization autoscalers, the scheduled oracle) is printed so the
Pareto picture can be eyeballed next to the numbers.
"""

from repro.core.policies import Policy
from repro.experiments import frontier_autoscale
from repro.serving import SushiStack, SushiStackConfig


def test_bench_frontier_autoscale(benchmark, show):
    stack = SushiStack(
        SushiStackConfig(
            supernet_name="ofa_mobilenetv3", policy=Policy.STRICT_LATENCY, seed=0
        )
    )

    def sweep():
        return frontier_autoscale.run(
            stack=stack,
            num_queries=500,
            static_counts=(1, 2, 3, 4, 6),
            reactive_queue_thresholds=(4.0,),
            utilization_targets=(0.5,),
            seed=0,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(frontier_autoscale.report(result))

    reactive = result.point("reactive-q4")
    best_static = result.best_static_within_cost(reactive.replica_seconds)
    assert reactive.slo_attainment >= best_static.slo_attainment
    peak = max(result.static_points(), key=lambda p: p.replica_seconds)
    assert reactive.replica_seconds < peak.replica_seconds
    # The elastic pool actually flexed: scale-ups happened and the mean pool
    # sits strictly between the floor and the cap.
    assert 1.0 < reactive.mean_replicas < peak.mean_replicas
