"""Benchmark (extension): batched dispatch — B=8 shared-SubNet vs B=1.

Acceptance demonstration for batched dispatch, driven through the
declarative serving facade: at a Poisson arrival rate that overloads the
unbatched pool, ``max_batch=8`` under the ``shared_subnet`` policy restores
strictly higher goodput with measurably fewer cache loads — queries
co-scheduled on one SubNet amortize the weight traffic and the cache load
across the batch, exactly what SGS weight sharing buys at serving time.

The run's headline metrics are dumped as JSON (deterministic — they are
simulation outcomes, not wall times) and compared by CI against the
committed ``BENCH_batching.json`` baseline with a 20% regression gate; see
``benchmarks/regression_gate.py``.
"""

import json
import os

from repro.core.policies import Policy
from repro.experiments.load_sweep import overload_rates
from repro.serving import (
    ArrivalSpec,
    BatchingSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
    SushiStack,
    SushiStackConfig,
    WorkloadSpec,
    run_scenario,
)

#: Where the fresh metrics JSON lands (CI diffs it against BENCH_batching.json).
FRESH_JSON = os.environ.get("BENCH_BATCHING_JSON", "benchmark-batching-fresh.json")


def _scenario(max_batch: int, rate: float) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"bench-batching-B{max_batch}",
        supernet_name="ofa_mobilenetv3",
        policy=Policy.STRICT_LATENCY,
        # A caching window larger than the batch: decisions fall on window
        # boundaries for both cells, so the load comparison is about
        # amortization, not decision cadence.
        cache_update_period=16,
        replica_groups=(
            ReplicaGroupSpec(
                count=2,
                discipline="edf",
                batching=BatchingSpec(max_batch=max_batch, policy="shared_subnet"),
            ),
        ),
        router="jsq",
        admission="drop_expired",
        workload=WorkloadSpec(
            num_queries=400,
            accuracy_range=None,
            # Several multiples of the family's latency range, so batched
            # evaluations can still meet SLOs (a constraint tighter than one
            # batch evaluation makes batching pointless by construction).
            latency_range_ms=(8.0, 40.0),
            pattern="uniform",
        ),
        arrivals=ArrivalSpec(kind="poisson", rate_per_ms=rate, seed=0),
        seed=0,
    )


def _cache_loads(result) -> int:
    return sum(1 for r in result.records if r.cache_load_ms > 0)


def test_bench_batching_overload(benchmark, show):
    stack = SushiStack(
        SushiStackConfig(
            supernet_name="ofa_mobilenetv3",
            policy=Policy.STRICT_LATENCY,
            cache_update_period=16,
            seed=0,
        )
    )
    stack_cache = {stack.config: stack}
    # 4x one replica's fastest possible service: the 2-replica pool is
    # overloaded (rho >= 2) even at the table's minimum latency.
    (overload_rate,) = overload_rates(stack, (4.0,))

    def cells():
        return {
            b: run_scenario(_scenario(b, overload_rate), stack_cache=stack_cache)
            for b in (1, 8)
        }

    results = benchmark(cells)
    unbatched, batched = results[1], results[8]
    show(
        "\n".join(
            f"B={b}: goodput={r.goodput_per_ms:.3f}/ms "
            f"throughput={r.achieved_throughput_per_ms:.3f}/ms "
            f"attainment={r.slo_attainment:.3f} drop={r.drop_rate:.3f} "
            f"occupancy={r.mean_batch_occupancy:.2f} "
            f"cache_loads={_cache_loads(r)}"
            for b, r in sorted(results.items())
        )
    )

    metrics = {
        "B1": {
            "goodput_per_ms": unbatched.goodput_per_ms,
            "throughput_per_ms": unbatched.achieved_throughput_per_ms,
            "slo_attainment": unbatched.slo_attainment,
            "cache_loads": _cache_loads(unbatched),
        },
        "B8": {
            "goodput_per_ms": batched.goodput_per_ms,
            "throughput_per_ms": batched.achieved_throughput_per_ms,
            "slo_attainment": batched.slo_attainment,
            "cache_loads": _cache_loads(batched),
            "mean_batch_occupancy": batched.mean_batch_occupancy,
        },
        "goodput_gain": batched.goodput_per_ms / unbatched.goodput_per_ms,
    }
    with open(FRESH_JSON, "w", encoding="utf-8") as fh:
        json.dump(metrics, fh, indent=2)

    # The pool is genuinely overloaded at B=1 and batching actually engages.
    assert unbatched.offered_load > 1.0
    assert batched.mean_batch_occupancy > 2.0
    # Acceptance: shared-SubNet batching restores strictly higher goodput
    # with measurably fewer cache loads on the same trace and seed.
    assert batched.goodput_per_ms > unbatched.goodput_per_ms
    assert _cache_loads(batched) < _cache_loads(unbatched)
    # Batch members complete together, so records report the batch time;
    # the engine's accounting must stay within physical bounds regardless.
    for r in results.values():
        assert 0.0 <= r.drop_rate <= 1.0
        assert 0.0 <= r.slo_attainment <= 1.0
        stats_served = sum(s.num_served for s in r.replica_stats)
        assert stats_served == r.num_served
