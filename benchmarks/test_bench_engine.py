"""Benchmark (extension): the engine fast path — queries/sec by tier.

Times the three execution strategies of ``ServingEngine.run`` on a synthetic
constant-work pool (a near-free backend, so the measurement is the event
loop itself, not a model):

* ``reference`` — the Event/EventHeap loop (pre-fast-path semantics),
* ``fast``      — numpy arrival buffer + cursor + raw-tuple completion heap,
* ``shard``     — per-replica independent simulation (round-robin pools).

Each (tier, mode) cell runs in a **fresh subprocess** via
``tools/profile_engine.py``.  Sequential in-process measurement is
systematically unfair to whichever mode runs later: the hundreds of MB of
outcome objects kept alive by earlier runs inflate allocator and cache
pressure enough to halve the later mode's throughput.  A fresh interpreter
per cell (with GC disabled around the timed region, which the harness does
itself) removes the ordering effect.  The subprocesses run through the
``run_quiet`` fixture so conda activation noise from the CI image's login
shell never reaches the bench logs.

Two tiers run on every PR (10k and 1M queries); the 10M tier only runs when
``BENCH_ENGINE_10M=1`` (nightly / local baselining — the reference loop
alone takes minutes there).  The 10k tier also runs all three strategies
in-process and asserts them bit-identical — same outcomes, drops and
per-replica stats — so the speedup is never bought with a behavioral
change; the exhaustive identity evidence lives in the hypothesis property
tests under ``tests/``.

Wall-clock queries/sec land in a fresh JSON which CI diffs against the
committed ``benchmarks/BENCH_engine.json`` via ``regression_gate.py --kind
engine`` (wide tolerance: these are wall times on shared runners, unlike
the deterministic simulation metrics the batching gate checks; the
``fast_speedup`` ratio is the stable signal).
"""

from __future__ import annotations

import json
import os
import re
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.metrics import QueryRecord
from repro.serving.engine import AcceleratorReplica, ServingEngine
from repro.serving.engine.core import poisson_arrivals
from repro.serving.workload import WorkloadGenerator, WorkloadSpec

#: Where the fresh metrics JSON lands (CI diffs it against BENCH_engine.json).
FRESH_JSON = os.environ.get("BENCH_ENGINE_JSON", "benchmark-engine-fresh.json")

REPO_ROOT = Path(__file__).resolve().parents[1]
REPLICAS = 4
RATE_PER_MS = 0.8
SERVICE_MS = 1.2
SEED = 3

#: profile_engine.py's summary line, e.g. "... (231,883 queries/sec; ...".
_QPS_RE = re.compile(r"\(([\d,]+) queries/sec")


class ConstantWorkServer:
    """Near-free backend: constant service, one shared record.

    The engine never reads the record's ``query_index`` (outcomes carry the
    query's own index), so sharing one record is safe and keeps
    ``serve_query`` down to an attribute read — the identity runs then
    exercise the event loop, not record construction.  Mirrors the server
    ``tools/profile_engine.py`` uses for the timed cells.
    """

    __slots__ = ("record",)

    def __init__(self) -> None:
        self.record = QueryRecord(
            query_index=-1,
            accuracy_constraint=0.5,
            latency_constraint_ms=1e9,
            subnet_name="bench-stub",
            served_accuracy=0.9,
            served_latency_ms=SERVICE_MS,
        )

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return self.record


def _measure_qps(run_quiet, mode: str, num_queries: int) -> float:
    """queries/sec of one (mode, tier) cell in a fresh interpreter."""
    proc = run_quiet(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "profile_engine.py"),
            "--num-queries", str(num_queries),
            "--replicas", str(REPLICAS),
            "--rate", str(RATE_PER_MS),
            "--service-ms", str(SERVICE_MS),
            "--seed", str(SEED),
            "--mode", mode,
        ],
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert proc.returncode == 0, proc.stderr
    match = _QPS_RE.search(proc.stdout)
    assert match, f"no queries/sec in output: {proc.stdout!r}"
    return float(match.group(1).replace(",", ""))


def _tier(run_quiet, num_queries: int) -> dict:
    metrics: dict = {"num_queries": num_queries}
    metrics["reference_qps"] = _measure_qps(run_quiet, "reference", num_queries)
    metrics["fast_qps"] = _measure_qps(run_quiet, "fast", num_queries)
    metrics["shard_qps"] = _measure_qps(run_quiet, "shard", num_queries)
    metrics["fast_speedup"] = metrics["fast_qps"] / metrics["reference_qps"]
    metrics["shard_speedup"] = metrics["shard_qps"] / metrics["reference_qps"]
    return metrics


def _merge_fresh_json(key: str, tier_metrics: dict) -> None:
    """Read-merge-write so the PR tiers and the 10M tier share one file."""
    path = Path(FRESH_JSON)
    data = json.loads(path.read_text(encoding="utf-8")) if path.exists() else {}
    data[key] = tier_metrics
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def _show_tier(show, label: str, m: dict) -> None:
    show(
        f"{label}:  reference={m['reference_qps']:,.0f} q/s  "
        f"fast={m['fast_qps']:,.0f} q/s  shard={m['shard_qps']:,.0f} q/s  "
        f"fastx={m['fast_speedup']:.2f}  shardx={m['shard_speedup']:.2f}"
    )


def test_engine_modes_identical_at_10k():
    """The fast and sharded loops are execution strategies, not semantics."""
    gen = WorkloadGenerator(
        WorkloadSpec(num_queries=10_000, pattern="uniform"), seed=SEED
    )
    arrivals = poisson_arrivals(
        10_000, RATE_PER_MS, rng=np.random.default_rng(SEED + 1)
    )
    atrace = gen.generate_array_trace()

    def _run(trace, **kwargs):
        engine = ServingEngine(
            [AcceleratorReplica(ConstantWorkServer()) for _ in range(REPLICAS)],
            admission="drop_expired",
        )
        return engine.run(trace, arrivals, **kwargs)

    ref = _run(gen.generate())
    for result in (_run(atrace, fast_path=True), _run(atrace, shard=True)):
        assert result.outcomes == ref.outcomes
        assert result.dropped == ref.dropped
        assert result.replica_stats == ref.replica_stats
        assert result.duration_ms == ref.duration_ms


def test_bench_engine_tiers(show, run_quiet):
    m10k = _tier(run_quiet, 10_000)
    m1m = _tier(run_quiet, 1_000_000)

    # The acceptance bar: the fast loop clears 3x the reference loop's
    # throughput at the 1M tier (asserted with margin for runner noise; the
    # committed baseline records the measured ratio).
    assert m1m["fast_speedup"] >= 2.0, m1m

    _merge_fresh_json("q10k", m10k)
    _merge_fresh_json("q1m", m1m)
    _show_tier(show, "q10k", m10k)
    _show_tier(show, "q1m", m1m)


@pytest.mark.skipif(
    os.environ.get("BENCH_ENGINE_10M") != "1",
    reason="10M tier is nightly/local only (set BENCH_ENGINE_10M=1)",
)
def test_bench_engine_10m(show, run_quiet):
    m10m = _tier(run_quiet, 10_000_000)
    assert m10m["fast_speedup"] >= 2.0, m10m
    _merge_fresh_json("q10m", m10m)
    _show_tier(show, "q10m", m10m)


def test_profile_hotspots_smoke(run_quiet):
    """The cProfile path of the harness stays runnable."""
    proc = run_quiet(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "profile_engine.py"),
            "--num-queries", "2000",
            "--mode", "fast",
            "--hotspots", "3",
        ],
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )
    assert proc.returncode == 0, proc.stderr
    assert "queries/sec" in proc.stdout
    assert "_fast_drain" in proc.stdout  # the hotspot listing found the loop
