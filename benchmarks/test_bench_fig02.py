"""Benchmark: regenerate Fig. 2 (arithmetic intensity per conv layer)."""

from repro.experiments import fig02_arithmetic_intensity as exp


def test_bench_fig02_arithmetic_intensity(benchmark, show):
    result = benchmark(exp.run)
    show(exp.report(result))
    assert result.memory_bound_fraction["ofa_mobilenetv3"] > 0.1
