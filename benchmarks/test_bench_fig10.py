"""Benchmark: regenerate Fig. 10 (latency breakdown w/ and w/o the PB)."""

import pytest

from repro.experiments import fig10_latency_breakdown as exp


@pytest.mark.parametrize("supernet", ["ofa_resnet50", "ofa_mobilenetv3"])
def test_bench_fig10_latency_breakdown(benchmark, show, supernet):
    result = benchmark(exp.run, supernet)
    show(exp.report(result))
    lo, hi = result.reduction_range_percent
    assert 3.0 < lo <= hi < 30.0
