"""Benchmark: regenerate Fig. 11 (roofline and SGS roofline)."""

import pytest

from repro.experiments import fig11_roofline as exp


@pytest.mark.parametrize("supernet", ["ofa_resnet50", "ofa_mobilenetv3"])
def test_bench_fig11_roofline(benchmark, show, supernet):
    result = benchmark(exp.run, supernet)
    show(exp.report(result))
    assert all(gain > 1.0 for gain in result.intensity_gain)
