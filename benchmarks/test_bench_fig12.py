"""Benchmark: regenerate Fig. 12 (design-space exploration)."""

import pytest

from repro.experiments import fig12_dse as exp


@pytest.mark.parametrize("supernet", ["ofa_resnet50", "ofa_mobilenetv3"])
def test_bench_fig12_dse(benchmark, show, supernet):
    result = benchmark(
        exp.run,
        supernet,
        pb_kb_values=(512, 1728, 3456, 6912),
        bandwidth_values_gbps=(9.6, 19.2, 38.4),
        macs_per_cycle_values=(1296, 6480),
    )
    show(exp.report(result))
    assert result.max_time_save_percent() > 2.0
