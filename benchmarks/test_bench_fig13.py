"""Benchmark: regenerate Fig. 13 (board latency and off-chip energy)."""

from repro.experiments import fig13_board_latency_energy as exp


def test_bench_fig13_board_latency_energy(benchmark, show):
    result = benchmark(exp.run)
    show(exp.report(result))
    zlo, zhi = result.speedup_range("zcu104", "w/ PB")
    assert zhi > 1.5  # SushiAccel clearly beats the CPU
    elo, ehi = result.energy_saving_range_percent()
    assert ehi > 10.0
