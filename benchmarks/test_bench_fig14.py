"""Benchmark: regenerate Fig. 14 (per-layer latency vs the Xilinx DPU)."""

from repro.experiments import fig14_dpu_comparison as exp


def test_bench_fig14_dpu_comparison(benchmark, show):
    result = benchmark(exp.run)
    show(exp.report(result))
    assert result.geomean_speedup > 1.05
