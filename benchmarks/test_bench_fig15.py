"""Benchmark: regenerate Fig. 15 (SushiSched functional evaluation)."""

import pytest

from repro.experiments import fig15_scheduler_functional as exp


@pytest.mark.parametrize("supernet", ["ofa_resnet50", "ofa_mobilenetv3"])
def test_bench_fig15_scheduler_functional(benchmark, show, supernet):
    result = benchmark(exp.run, supernet, num_queries=150)
    show(exp.report(result))
    assert result.latency_series.satisfied_fraction > 0.9
    assert result.accuracy_series.satisfied_fraction > 0.95
