"""Benchmark: regenerate Fig. 16 (end-to-end SUSHI vs baselines)."""

import pytest

from repro.core.policies import Policy
from repro.experiments import fig16_end_to_end as exp


@pytest.mark.parametrize("supernet", ["ofa_resnet50", "ofa_mobilenetv3"])
@pytest.mark.parametrize("policy", [Policy.STRICT_ACCURACY, Policy.STRICT_LATENCY])
def test_bench_fig16_end_to_end(benchmark, show, supernet, policy):
    result = benchmark(exp.run, supernet, policy=policy, num_queries=150)
    show(exp.report(result))
    metrics = {k: v.metrics for k, v in result.results.items()}
    assert metrics["sushi"].mean_latency_ms <= metrics["no_sushi"].mean_latency_ms * 1.001
