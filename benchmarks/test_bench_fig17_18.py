"""Benchmark: regenerate Fig. 17/18 (temporal analysis of the caching window Q)."""

import pytest

from repro.experiments import fig17_18_temporal as exp


@pytest.mark.parametrize("supernet", ["ofa_resnet50", "ofa_mobilenetv3"])
def test_bench_fig17_18_temporal(benchmark, show, supernet):
    result = benchmark(exp.run, supernet, num_queries=120)
    show(exp.report(result))
    assert result.best_window() in exp.DEFAULT_WINDOWS
