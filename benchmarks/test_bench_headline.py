"""Benchmark: regenerate the paper's headline numbers (Section 5.7 / A.4)."""

from repro.experiments import headline as exp


def test_bench_headline(benchmark, show):
    result = benchmark(exp.run, num_queries=200)
    show(exp.report(result))
    assert result.best_latency_improvement() > 0
    assert result.best_energy_saving() > 5.0
