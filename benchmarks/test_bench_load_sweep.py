"""Benchmark (extension): open-loop SLO attainment under increasing load."""

from repro.core.policies import Policy
from repro.serving import ExperimentRunner
from repro.serving.simulator import OpenLoopSimulator


def test_bench_open_loop_load_sweep(benchmark, show):
    runner = ExperimentRunner("ofa_mobilenetv3", policy=Policy.STRICT_LATENCY, seed=0)
    trace = runner.default_workload(num_queries=150)
    simulator = OpenLoopSimulator.from_stack(runner.sushi)

    def sweep():
        return simulator.load_sweep(trace, arrival_rates_per_ms=(0.2, 0.5, 1.0, 2.0), seed=0)

    results = benchmark(sweep)
    lines = ["Open-loop load sweep (SUSHI, MobileNetV3):"]
    for rate, result in results.items():
        lines.append(
            f"  arrival {rate:.1f}/ms  rho={result.offered_load:.2f}  "
            f"SLO attainment {result.slo_attainment:.2f}  "
            f"mean response {result.mean_response_ms:.2f} ms  "
            f"p99 {result.p99_response_ms:.2f} ms"
        )
    show("\n".join(lines))
    # Higher load can only hurt SLO attainment.
    attainments = [results[r].slo_attainment for r in sorted(results)]
    assert all(a >= b - 1e-9 for a, b in zip(attainments, attainments[1:]))
