"""Benchmark (extension): multi-replica engine sweep — replicas x arrival rate.

Acceptance demonstration for the discrete-event engine: at an arrival rate
that overloads a single replica (rho > 1), a 2-replica join-shortest-queue
configuration on the *same trace and seed* restores strictly higher SLO
attainment.  The sweep itself is the registered ``load_sweep`` experiment
driver, reusing one prebuilt stack across all cells.
"""

from repro.core.policies import Policy
from repro.experiments import load_sweep
from repro.serving.stack import SushiStack, SushiStackConfig

REPLICA_COUNTS = (1, 2, 4)


def test_bench_multi_replica_sweep(benchmark, show):
    stack = SushiStack(
        SushiStackConfig(
            supernet_name="ofa_mobilenetv3", policy=Policy.STRICT_LATENCY, seed=0
        )
    )
    # A light rate and one that overloads a single replica even if every
    # query were served at the table's minimum latency (rho_1 >= 1.5).
    light_rate, overload_rate = load_sweep.overload_rates(stack, (0.375, 1.5))

    def sweep():
        return load_sweep.run(
            stack=stack,
            num_queries=150,
            arrival_rates_per_ms=(light_rate, overload_rate),
            replica_counts=REPLICA_COUNTS,
            seed=0,
        )

    result = benchmark(sweep)
    show(load_sweep.report(result))

    heavy_1 = result.cell(1, overload_rate)
    heavy_2 = result.cell(2, overload_rate)
    # One replica is genuinely overloaded at this rate; two are not.
    assert heavy_1.offered_load > 1.0
    assert heavy_2.offered_load < heavy_1.offered_load
    # Acceptance: 2-replica JSQ strictly beats 1 replica on the same trace/seed.
    assert heavy_2.slo_attainment > heavy_1.slo_attainment
    # More replicas never hurt at fixed load.
    assert result.cell(4, overload_rate).slo_attainment >= heavy_2.slo_attainment
    # Every cell's accounting stays within physical bounds.
    for c in result.cells:
        assert 0.0 <= c.drop_rate <= 1.0
        assert 0.0 <= c.slo_attainment <= 1.0
