"""Benchmark (extension): multi-replica engine sweep — replicas x arrival rate.

Acceptance demonstration for the discrete-event engine, driven through the
declarative serving facade: every cell is one :class:`ScenarioSpec` run via
``run_scenario`` (the same path as ``python -m repro serve``).  At an arrival
rate that overloads a single replica (rho > 1), a 2-replica
join-shortest-queue configuration on the *same trace and seed* restores
strictly higher SLO attainment; a heterogeneous large+small-PB pool also
beats the overloaded single replica.
"""

from repro.core.policies import Policy
from repro.experiments.load_sweep import overload_rates
from repro.serving import (
    ArrivalSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
    SushiStack,
    SushiStackConfig,
    WorkloadSpec,
    run_scenario,
)

REPLICA_COUNTS = (1, 2, 4)


def _scenario(num_replicas: int, rate: float) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"bench-{num_replicas}x{rate:g}",
        supernet_name="ofa_mobilenetv3",
        policy=Policy.STRICT_LATENCY,
        replica_groups=(ReplicaGroupSpec(count=num_replicas, discipline="edf"),),
        router="jsq",
        admission="drop_expired",
        workload=WorkloadSpec(
            num_queries=150, accuracy_range=None, latency_range_ms=None
        ),
        arrivals=ArrivalSpec(kind="poisson", rate_per_ms=rate, seed=0),
        seed=0,
    )


def test_bench_multi_replica_sweep(benchmark, show):
    stack = SushiStack(
        SushiStackConfig(
            supernet_name="ofa_mobilenetv3", policy=Policy.STRICT_LATENCY, seed=0
        )
    )
    stack_cache = {stack.config: stack}
    # A light rate and one that overloads a single replica even if every
    # query were served at the table's minimum latency (rho_1 >= 1.5).
    light_rate, overload_rate = overload_rates(stack, (0.375, 1.5))

    def sweep():
        return {
            (n, rate): run_scenario(_scenario(n, rate), stack_cache=stack_cache)
            for n in REPLICA_COUNTS
            for rate in (light_rate, overload_rate)
        }

    results = benchmark(sweep)
    show(
        "\n".join(
            f"{n} replica(s) @ {rate:.3g}/ms: rho={r.offered_load:.3f} "
            f"attainment={r.slo_attainment:.3f} drop={r.drop_rate:.3f} "
            f"p99={r.p99_response_ms:.3f}ms"
            for (n, rate), r in sorted(results.items())
        )
    )

    heavy_1 = results[(1, overload_rate)]
    heavy_2 = results[(2, overload_rate)]
    # One replica is genuinely overloaded at this rate; two are not.
    assert heavy_1.offered_load > 1.0
    assert heavy_2.offered_load < heavy_1.offered_load
    # Acceptance: 2-replica JSQ strictly beats 1 replica on the same trace/seed.
    assert heavy_2.slo_attainment > heavy_1.slo_attainment
    # More replicas never hurt at fixed load.
    assert results[(4, overload_rate)].slo_attainment >= heavy_2.slo_attainment
    # Every cell's accounting stays within physical bounds.
    for r in results.values():
        assert 0.0 <= r.drop_rate <= 1.0
        assert 0.0 <= r.slo_attainment <= 1.0


def test_bench_heterogeneous_pool(benchmark, show):
    """A mixed large-PB + small-PB pool rides out the same overload."""
    stack = SushiStack(
        SushiStackConfig(
            supernet_name="ofa_mobilenetv3", policy=Policy.STRICT_LATENCY, seed=0
        )
    )
    stack_cache = {stack.config: stack}
    (overload_rate,) = overload_rates(stack, (1.5,))
    hetero = ScenarioSpec(
        name="bench-hetero",
        supernet_name="ofa_mobilenetv3",
        policy=Policy.STRICT_LATENCY,
        replica_groups=(
            ReplicaGroupSpec(count=1, pb_kb=1728.0, discipline="edf", name="large"),
            ReplicaGroupSpec(count=1, pb_kb=432.0, discipline="edf", name="small"),
        ),
        router="jsq",
        admission="drop_expired",
        workload=WorkloadSpec(
            num_queries=150, accuracy_range=None, latency_range_ms=None
        ),
        arrivals=ArrivalSpec(kind="poisson", rate_per_ms=overload_rate, seed=0),
        seed=0,
    )

    result = benchmark(lambda: run_scenario(hetero, stack_cache=stack_cache))
    single = run_scenario(_scenario(1, overload_rate), stack_cache=stack_cache)
    show(
        f"hetero 1 large + 1 small PB: rho={result.offered_load:.3f} "
        f"attainment={result.slo_attainment:.3f} vs single {single.slo_attainment:.3f}"
    )
    assert [s.name for s in result.replica_stats] == ["large-0", "small-0"]
    # Both tiers pull their weight and the pool beats the overloaded single.
    assert all(s.num_served > 0 for s in result.replica_stats)
    assert result.slo_attainment > single.slo_attainment
