"""Benchmark: regenerate Table 1 (buffer bandwidth requirements)."""

from repro.experiments import tab01_bandwidth as exp


def test_bench_tab01_bandwidth(benchmark, show):
    result = benchmark(exp.run)
    show(exp.report(result))
    assert result.requirements_bytes_per_cycle["PB"] >= result.off_chip_bytes_per_cycle
