"""Benchmark: regenerate Table 2 (FPGA resource comparison)."""

from repro.experiments import tab02_resources as exp


def test_bench_tab02_resources(benchmark, show):
    result = benchmark(exp.run)
    show(exp.report(result))
    assert len(result.rows) == 5
