"""Benchmark: regenerate Table 3 (buffer storage allocation on ZCU104)."""

from repro.experiments import tab03_buffer_config as exp


def test_bench_tab03_buffer_config(benchmark, show):
    result = benchmark(exp.run)
    show(exp.report(result))
    assert result.allocation_kb["with_pb_kb"]["PB"] > 0
    assert result.allocation_kb["without_pb_kb"]["PB"] == 0
