"""Benchmark: regenerate Table 4 (reuse comparison matrix)."""

from repro.experiments import tab04_reuse as exp


def test_bench_tab04_reuse(benchmark, show):
    result = benchmark(exp.run)
    show(exp.report(result))
    assert result.rows["SUSHI"]["SubGraph Reuse (spatial)"] == "yes"
