"""Benchmark: regenerate Table 5 (latency improvement vs latency-table size)."""

import pytest

from repro.experiments import tab05_table_size as exp


@pytest.mark.parametrize("supernet", ["ofa_resnet50", "ofa_mobilenetv3"])
def test_bench_tab05_table_size(benchmark, show, supernet):
    result = benchmark(exp.run, supernet, column_counts=(10, 40, 80, 100), num_queries=100)
    show(exp.report(result))
    assert set(result.improvements_percent) == {10, 40, 80, 100}
