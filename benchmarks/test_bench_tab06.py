"""Benchmark: regenerate Table 6 (latency-table lookup time)."""

from repro.experiments import tab06_lookup_time as exp


def test_bench_tab06_lookup_time(benchmark, show):
    result = benchmark(exp.run, column_counts=(100, 200, 500, 1000, 2000), lookups_per_size=200)
    show(exp.report(result))
    # Lookups must stay far below one inference (paper: < 1/1000).
    assert result.max_lookup_fraction_of_inference() < 0.05
