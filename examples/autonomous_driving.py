"""Autonomous-vehicle perception serving: latency is the hard constraint.

The paper motivates SUSHI with on-board AV workloads (street-sign and
pedestrian detection, trajectory tracking) whose deadline changes with the
driving regime: sparse suburban cruising tolerates slower, more accurate
models, while dense urban traffic demands tight deadlines.  This example
models that as a *phased* query stream served under the STRICT_LATENCY
policy on the embedded ZCU104 platform, and shows how SUSHI's cache-aware
scheduling converts headroom into served accuracy.

Run with::

    python examples/autonomous_driving.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.platforms import ZCU104
from repro.analysis.reporting import format_table
from repro.core.policies import Policy
from repro.serving import ExperimentRunner
from repro.serving.workload import WorkloadGenerator, WorkloadSpec, feasible_ranges_from_table


def main() -> None:
    runner = ExperimentRunner(
        "ofa_resnet50",
        platform=ZCU104,
        policy=Policy.STRICT_LATENCY,
        cache_update_period=8,
        seed=42,
    )
    acc_range, lat_range = feasible_ranges_from_table(runner.sushi.table)
    spec = WorkloadSpec(
        num_queries=240,
        accuracy_range=acc_range,
        latency_range_ms=lat_range,
        pattern="phased",     # alternating urban (tight) / suburban (loose) phases
        num_phases=6,
    )
    trace = WorkloadGenerator(spec, seed=42).generate(name="av-perception")
    results, summary = runner.compare(trace)

    rows = {}
    for name, stream in results.items():
        m = stream.metrics
        rows[name] = {
            "mean latency (ms)": m.mean_latency_ms,
            "latency SLO attainment": m.latency_slo_attainment,
            "mean served accuracy (%)": 100 * m.mean_accuracy,
            "off-chip energy (mJ)": m.total_offchip_energy_mj,
        }
    print(format_table(rows, title="AV perception stream on ZCU104 (STRICT_LATENCY)"))
    print(
        f"\nSUSHI served {summary.accuracy_improvement_points:+.2f} accuracy points vs "
        f"No-SUSHI at {summary.latency_improvement_vs_no_sushi_percent:.1f}% lower mean latency, "
        f"saving {summary.energy_saving_vs_no_sushi_percent:.1f}% off-chip energy."
    )

    # Per-phase view: which SubNets did the scheduler pick as deadlines changed?
    records = results["sushi"].records
    phase_len = len(records) // spec.num_phases
    print("\nServed SubNet mix per driving phase (SUSHI):")
    for p in range(spec.num_phases):
        chunk = records[p * phase_len : (p + 1) * phase_len]
        names, counts = np.unique([r.subnet_name for r in chunk], return_counts=True)
        mix = ", ".join(f"{n}x{c}" for n, c in zip(names, counts))
        mean_deadline = np.mean([r.latency_constraint_ms for r in chunk])
        print(f"  phase {p + 1}: mean deadline {mean_deadline:5.1f} ms -> {mix}")


if __name__ == "__main__":
    main()
