"""Autoscaled serving: ride a diurnal + flash-crowd trace elastically.

Demonstrates the autoscaling control plane end to end:

1. load the bursty example scenario (``examples/scenarios/autoscale_pool.json``)
   — a single SUSHI replica group under a time-varying arrival trace with a
   reactive autoscaler (queue-depth/drop-rate thresholds, drain-then-retire),
2. run the same trace against static pools of 1..4 replicas by nulling the
   autoscaler and overriding the replica count,
3. compare SLO attainment against the replica-seconds *cost* each
   configuration paid — the autoscaler should sit above the static pool of
   equal mean cost and below the peak-sized pool's bill.

The same scenario runs unchanged from the command line::

    PYTHONPATH=src python -m repro serve --scenario examples/scenarios/autoscale_pool.json

Run with::

    PYTHONPATH=src python examples/autoscaling_serving.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.serving import ScenarioSpec, format_result_summary, run_scenario

SCENARIO = Path(__file__).parent / "scenarios" / "autoscale_pool.json"


def main() -> None:
    spec = ScenarioSpec.from_json(SCENARIO.read_text())
    stack_cache: dict = {}

    result = run_scenario(spec, stack_cache=stack_cache)
    print(format_result_summary(spec, result))
    print()

    print("SLO attainment vs replica-seconds cost on the same trace:")
    rows = [
        (
            f"autoscaled ({result.autoscale.policy})",
            result.slo_attainment,
            result.replica_seconds,
            result.mean_active_replicas,
        )
    ]
    static = spec.override("autoscaler", None)
    for count in (1, 2, 3, 4):
        scaled = static.override("replica_groups.0.count", count)
        r = run_scenario(scaled, stack_cache=stack_cache)
        rows.append((f"static-{count}", r.slo_attainment, r.replica_seconds, float(count)))
    for label, slo, cost, mean_replicas in rows:
        print(
            f"  {label:<22} SLO {slo:5.3f}   cost {cost:6.3f} replica-s"
            f"   mean pool {mean_replicas:.2f}"
        )


if __name__ == "__main__":
    main()
