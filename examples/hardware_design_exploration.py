"""Hardware design exploration: sizing the Persistent Buffer.

An accelerator architect adopting SubGraph Stationary caching has to decide
how much of the on-chip storage budget to dedicate to the Persistent Buffer,
given an off-chip bandwidth and a compute budget (Section 5.3 of the paper).
This example walks the public accelerator-model API:

1. roofline analysis of the Pareto family (which SubNets are memory bound),
2. a design-space sweep over PB size / bandwidth / throughput (Fig. 12),
3. FPGA resource and buffer-allocation estimates for the chosen design
   (Tables 2 and 3).

Run with::

    python examples/hardware_design_exploration.py
"""

from __future__ import annotations

from repro.accelerator import (
    ANALYTIC_DEFAULT,
    ZCU104,
    DesignSpaceExplorer,
    RooflineModel,
    buffer_allocation_table,
    estimate_resources,
)
from repro.analysis.reporting import format_table
from repro.supernet import load_supernet, paper_pareto_subnets


def main() -> None:
    supernet = load_supernet("ofa_resnet50")
    subnets = paper_pareto_subnets(supernet)

    # 1. Roofline: where does the family sit relative to the ridge point?
    roofline = RooflineModel(ANALYTIC_DEFAULT)
    rows = {
        sn.name: {
            "arithmetic intensity (FLOPs/B)": roofline.subnet_intensity(sn),
            "attainable TFLOPS": roofline.subnet_point(sn).attainable_tflops,
            "compute bound": roofline.subnet_point(sn).is_compute_bound,
        }
        for sn in subnets
    }
    print(format_table(rows, title=f"Roofline (ridge {roofline.ridge_point:.1f} FLOPs/B)"))

    # 2. DSE: how much latency does each PB size buy at each bandwidth?
    explorer = DesignSpaceExplorer(subnets, base_platform=ANALYTIC_DEFAULT)
    points = explorer.sweep(
        pb_kb_values=(512, 1024, 1728, 3456, 6912),
        bandwidth_values_gbps=(9.6, 19.2, 38.4),
        macs_per_cycle_values=(6480,),
    )
    dse_rows = {
        f"PB={p.pb_kb:.0f}KB @ {p.bandwidth_gbps:.1f}GB/s": {
            "latency w/o PB (ms)": p.mean_latency_no_pb_ms,
            "latency w/ PB (ms)": p.mean_latency_with_pb_ms,
            "time save %": p.time_save_percent,
        }
        for p in points
    }
    best = explorer.best_point(points)
    print()
    print(format_table(dse_rows, title="Design-space exploration (Fig. 12 style)"))
    print(
        f"\nBest configuration: PB={best.pb_kb:.0f} KB at {best.bandwidth_gbps:.1f} GB/s "
        f"saves {best.time_save_percent:.1f}% latency."
    )

    # 3. What does the chosen design cost on a real device?
    resource_rows = {
        "SushiAccel w/o PB (ZCU104)": estimate_resources(ZCU104, with_pb=False).as_row(),
        "SushiAccel w/ PB (ZCU104)": estimate_resources(ZCU104, with_pb=True).as_row(),
    }
    print()
    print(format_table(resource_rows, title="Estimated FPGA resources (Table 2 style)"))
    allocation = buffer_allocation_table(ZCU104)
    alloc_rows = {
        buf: {cfg: allocation[cfg][buf] for cfg in allocation}
        for buf in next(iter(allocation.values()))
    }
    print()
    print(format_table(alloc_rows, title="On-chip buffer allocation in KB (Table 3 style)"))


if __name__ == "__main__":
    main()
