"""ICU stability-score serving: accuracy is the hard constraint.

The paper's second motivating deployment is bedside/ICU inference (HOLMES):
prediction quality is paramount, but the tolerable latency shrinks whenever
the number of triaged patients surges.  This example models a shift change —
patient load ramps up over time — as a *drift* workload served under the
STRICT_ACCURACY policy, and reports how SubGraph-Stationary caching keeps
latency and off-chip energy down while accuracy constraints are always met.

Run with::

    python examples/icu_triage.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.policies import Policy
from repro.serving import ExperimentRunner
from repro.serving.workload import WorkloadGenerator, WorkloadSpec, feasible_ranges_from_table


def main() -> None:
    runner = ExperimentRunner(
        "ofa_mobilenetv3",
        policy=Policy.STRICT_ACCURACY,
        cache_update_period=10,
        seed=7,
    )
    acc_range, lat_range = feasible_ranges_from_table(runner.sushi.table)
    spec = WorkloadSpec(
        num_queries=300,
        accuracy_range=acc_range,
        latency_range_ms=lat_range,
        pattern="drift",      # accuracy demands rise as sicker patients arrive
    )
    trace = WorkloadGenerator(spec, seed=7).generate(name="icu-triage")
    results, summary = runner.compare(trace)

    rows = {}
    for name, stream in results.items():
        m = stream.metrics
        rows[name] = {
            "mean latency (ms)": m.mean_latency_ms,
            "accuracy SLO attainment": m.accuracy_slo_attainment,
            "mean served accuracy (%)": 100 * m.mean_accuracy,
            "off-chip energy (mJ)": m.total_offchip_energy_mj,
            "PB hit ratio": m.mean_cache_hit_ratio,
        }
    print(format_table(rows, title="ICU triage stream (STRICT_ACCURACY)"))
    print(
        f"\nEvery accuracy constraint was met; SUSHI reduced mean latency by "
        f"{summary.latency_improvement_vs_no_sushi_percent:.1f}% and off-chip energy by "
        f"{summary.energy_saving_vs_no_sushi_percent:.1f}% relative to No-SUSHI."
    )

    # Show how the scheduler escalates to larger SubNets as demands drift up.
    records = results["sushi"].records
    thirds = np.array_split(records, 3)
    print("\nServed SubNet mix as accuracy demands rise (SUSHI):")
    for label, chunk in zip(("early shift", "mid shift", "late shift"), thirds):
        names, counts = np.unique([r.subnet_name for r in chunk], return_counts=True)
        mix = ", ".join(f"{n}x{c}" for n, c in zip(names, counts))
        print(f"  {label}: {mix}")


if __name__ == "__main__":
    main()
