"""Multi-replica serving: ride out an overload with the declarative API.

Demonstrates the spec-driven serving facade end to end:

1. describe the scenario declaratively — one :class:`ScenarioSpec` with a
   SUSHI replica group (join-shortest-queue routing, earliest-deadline-first
   queues, deadline-expired shedding) and a Poisson arrival process at a
   rate that overloads a single replica,
2. run the same scenario with 1, 2 and 4 replicas via ``run_scenario``
   (one ``--override``-style tweak of the replica count per run, sharing a
   single latency table through the stack cache),
3. print how attainment, drops and tail latency react.

The same scenario serialized to JSON (``spec.to_json()``) runs unchanged
from the command line::

    PYTHONPATH=src python -m repro serve --scenario scenario.json

Run with::

    PYTHONPATH=src python examples/multi_replica_serving.py
"""

from __future__ import annotations

from repro.core.policies import Policy
from repro.experiments.load_sweep import overload_rates
from repro.serving import (
    ArrivalSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
    SushiStack,
    SushiStackConfig,
    WorkloadSpec,
    format_result_summary,
    run_scenario,
)


def main() -> None:
    stack = SushiStack(
        SushiStackConfig(
            supernet_name="ofa_mobilenetv3", policy=Policy.STRICT_LATENCY, seed=0
        )
    )
    # Overload one replica even at the family's fastest service time.
    (rate,) = overload_rates(stack, (1.5,))
    spec = ScenarioSpec(
        name="overload",
        supernet_name="ofa_mobilenetv3",
        policy=Policy.STRICT_LATENCY,
        replica_groups=(ReplicaGroupSpec(count=1, discipline="edf"),),
        router="jsq",
        admission="drop_expired",
        workload=WorkloadSpec(
            num_queries=300, accuracy_range=None, latency_range_ms=None
        ),
        arrivals=ArrivalSpec(kind="poisson", rate_per_ms=rate, seed=0),
        seed=0,
    )
    stack_cache = {stack.config: stack}
    for num_replicas in (1, 2, 4):
        scaled = spec.override("replica_groups.0.count", num_replicas)
        result = run_scenario(scaled, stack_cache=stack_cache)
        print(format_result_summary(scaled, result))
        print()


if __name__ == "__main__":
    main()
