"""Multi-replica serving: ride out an overload with the discrete-event engine.

Demonstrates the serving engine's open-loop view end to end via the
``load_sweep`` experiment driver:

1. build one SUSHI stack (OFA-MobileNetV3, STRICT_LATENCY policy),
2. sweep engines with 1, 2 and 4 replicas — join-shortest-queue routing,
   earliest-deadline-first queues, deadline-expired shedding,
3. push the same Poisson query stream through each at a rate that overloads
   a single replica, and print how attainment, drops and tail latency react.

Run with::

    PYTHONPATH=src python examples/multi_replica_serving.py
"""

from __future__ import annotations

from repro.core.policies import Policy
from repro.experiments import load_sweep
from repro.serving import SushiStack, SushiStackConfig


def main() -> None:
    stack = SushiStack(
        SushiStackConfig(
            supernet_name="ofa_mobilenetv3", policy=Policy.STRICT_LATENCY, seed=0
        )
    )
    # Overload one replica even at the family's fastest service time.
    (rate,) = load_sweep.overload_rates(stack, (1.5,))
    result = load_sweep.run(
        stack=stack,
        num_queries=300,
        arrival_rates_per_ms=(rate,),
        replica_counts=(1, 2, 4),
        seed=0,
    )
    print(load_sweep.report(result))


if __name__ == "__main__":
    main()
