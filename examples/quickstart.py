"""Quickstart: serve a random query stream with SUSHI and compare baselines.

This is the smallest end-to-end use of the library's public API:

1. build the three serving systems (No-SUSHI, SUSHI w/o scheduler, SUSHI)
   over the OFA-MobileNetV3 Pareto family on the paper's analytic platform,
2. generate a random query stream with (accuracy, latency) constraints,
3. serve it through all three systems and print the headline comparison.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_kv, format_table
from repro.core.policies import Policy
from repro.serving import ExperimentRunner


def main() -> None:
    runner = ExperimentRunner(
        "ofa_mobilenetv3",
        policy=Policy.STRICT_ACCURACY,
        cache_update_period=4,
        seed=0,
    )
    trace = runner.default_workload(num_queries=200)
    results, summary = runner.compare(trace)

    rows = {
        name: {
            "mean latency (ms)": stream.metrics.mean_latency_ms,
            "p99 latency (ms)": stream.metrics.p99_latency_ms,
            "mean accuracy (%)": 100 * stream.metrics.mean_accuracy,
            "off-chip energy (mJ)": stream.metrics.total_offchip_energy_mj,
            "cache hit ratio": stream.metrics.mean_cache_hit_ratio,
        }
        for name, stream in results.items()
    }
    print(format_table(rows, title=f"Serving {len(trace)} random queries on OFA-MobileNetV3"))
    print()
    print(format_kv(summary.as_dict(), title="SUSHI vs baselines (headline)"))

    # Show a few individual scheduling decisions.
    print("\nFirst five queries served by SUSHI:")
    for record in results["sushi"].records[:5]:
        print(
            f"  q{record.query_index}: constraint (acc >= {record.accuracy_constraint:.3f}, "
            f"lat <= {record.latency_constraint_ms:.2f} ms) -> SubNet {record.subnet_name}, "
            f"served {record.served_latency_ms:.2f} ms at {100 * record.served_accuracy:.2f}% "
            f"(PB hit ratio {record.cache_hit_ratio:.2f})"
        )


if __name__ == "__main__":
    main()
