"""Packaging for the SUSHI reproduction.

The environment this reproduction targets is fully offline and ships an older
setuptools without the ``wheel`` package, so PEP 660 editable installs are not
available.  Keeping the metadata in a plain ``setup.py`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path and
installs the ``repro`` console entry point (the same CLI as
``python -m repro``).
"""

import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "_version.py")) as fh:
        return re.search(r'__version__ = "([^"]+)"', fh.read()).group(1)


setup(
    name="repro-sushi",
    version=_version(),
    description=(
        "Reproduction of 'Subgraph Stationary Hardware-Software Inference "
        "Co-Design' (SUSHI, MLSys 2023) with a discrete-event serving engine "
        "and a declarative scenario API"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
)
