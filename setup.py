"""Setup shim.

The environment this reproduction targets is fully offline and ships an older
setuptools without the ``wheel`` package, so PEP 660 editable installs are not
available.  Keeping a ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
