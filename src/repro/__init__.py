"""repro — reproduction of "Subgraph Stationary Hardware-Software Inference
Co-Design" (SUSHI, MLSys 2023).

Public API overview
-------------------

* :mod:`repro.supernet` — OFA-style weight-shared SuperNets (ResNet50,
  MobileNetV3), SubNets, shared-weight accounting, accuracy model.
* :mod:`repro.accelerator` — SushiAccel analytic model: DPE array, buffer
  hierarchy with the Persistent Buffer, DRAM model, roofline, DSE, CPU and
  Xilinx-DPU baselines.
* :mod:`repro.core` — the SGS control plane: SubGraph candidates, the
  SushiAbs latency table and the SushiSched scheduler (Algorithm 1).
* :mod:`repro.serving` — the vertically integrated SUSHI stack, query-stream
  generators and the No-SUSHI / state-unaware baselines.
* :mod:`repro.experiments` — one driver per table/figure of the paper.

Quickstart
----------

>>> from repro.serving import ExperimentRunner
>>> runner = ExperimentRunner("ofa_mobilenetv3")
>>> trace = runner.default_workload(num_queries=50)
>>> results, summary = runner.compare(trace)
>>> summary.latency_improvement_vs_no_sushi_percent > 0
True
"""

from repro._version import __version__

__all__ = ["__version__"]
