"""Package version (read by setup.py)."""

__version__ = "0.1.0"
