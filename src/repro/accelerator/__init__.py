"""SushiAccel: structural/analytic model of the SGS-aware accelerator.

The paper implements SushiAccel on two FPGAs and additionally ships an
analytic model used for roofline study and design-space exploration.  This
subpackage reproduces the analytic model in Python: a DPE compute array,
the on-chip buffer hierarchy (Persistent Buffer, ping-pong Dynamic Buffers,
Streaming/Line/Output/ZP-Scale buffers), an off-chip DRAM model, and the
dataflow that composes them into per-layer and per-query latency and energy
estimates — with and without SubGraph-Stationary caching.
"""

from repro.accelerator.platforms import (
    PlatformConfig,
    ANALYTIC_DEFAULT,
    ZCU104,
    ALVEO_U50,
    CPU_I7_10750H,
    XILINX_DPU_ZCU104,
    platform_by_name,
)
from repro.accelerator.dpe import DPEArrayConfig
from repro.accelerator.dram import DRAMModel
from repro.accelerator.buffers import BufferSpec, BufferHierarchy, bandwidth_requirements
from repro.accelerator.tiling import WeightTile, tile_layer
from repro.accelerator.dataflow import LayerLatency, layer_latency
from repro.accelerator.persistent_buffer import PersistentBuffer, CachedSubGraph
from repro.accelerator.analytic_model import (
    SushiAccelModel,
    SubNetLatencyBreakdown,
    LatencyComponents,
)
from repro.accelerator.roofline import RooflineModel, RooflinePoint
from repro.accelerator.dse import DesignPoint, DesignSpaceExplorer
from repro.accelerator.cpu_model import CPUModel
from repro.accelerator.dpu_model import XilinxDPUModel
from repro.accelerator.resources import ResourceEstimate, estimate_resources, buffer_allocation_table
from repro.accelerator.reuse_matrix import REUSE_COMPARISON, reuse_comparison_table

__all__ = [
    "PlatformConfig",
    "ANALYTIC_DEFAULT",
    "ZCU104",
    "ALVEO_U50",
    "CPU_I7_10750H",
    "XILINX_DPU_ZCU104",
    "platform_by_name",
    "DPEArrayConfig",
    "DRAMModel",
    "BufferSpec",
    "BufferHierarchy",
    "bandwidth_requirements",
    "WeightTile",
    "tile_layer",
    "LayerLatency",
    "layer_latency",
    "PersistentBuffer",
    "CachedSubGraph",
    "SushiAccelModel",
    "SubNetLatencyBreakdown",
    "LatencyComponents",
    "RooflineModel",
    "RooflinePoint",
    "DesignPoint",
    "DesignSpaceExplorer",
    "CPUModel",
    "XilinxDPUModel",
    "ResourceEstimate",
    "estimate_resources",
    "buffer_allocation_table",
    "REUSE_COMPARISON",
    "reuse_comparison_table",
]
