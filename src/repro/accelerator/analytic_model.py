"""SushiAccel end-to-end analytic model: SubNet latency and energy.

Composes the DPE array, DRAM model and buffer hierarchy into per-SubNet
latency breakdowns (Fig. 10), off-chip/on-chip energy estimates (Fig. 13b)
and the latency numbers that populate SushiAbs's latency table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.accelerator.buffers import BufferHierarchy, default_hierarchy
from repro.accelerator.dataflow import (
    DEFAULT_WEIGHT_OVERLAP_FRACTION,
    LayerLatency,
    layer_latency,
)
from repro.accelerator.dpe import DPEArrayConfig
from repro.accelerator.dram import DRAMModel
from repro.accelerator.persistent_buffer import CachedSubGraph, PersistentBuffer
from repro.accelerator.platforms import PlatformConfig
from repro.supernet.subnet import SubNet

#: Fixed per-query control/launch overhead in cycles (driver, descriptor setup).
DEFAULT_QUERY_OVERHEAD_CYCLES: float = 2_000.0


@dataclass(frozen=True)
class LatencyComponents:
    """Aggregated critical-path latency components of one SubNet, in ms.

    These are the five stacked categories of Fig. 10.
    """

    compute_ms: float
    offchip_iact_ms: float
    offchip_weight_ms: float
    onchip_weight_ms: float
    offchip_oact_ms: float

    @property
    def total_ms(self) -> float:
        return (
            self.compute_ms
            + self.offchip_iact_ms
            + self.offchip_weight_ms
            + self.onchip_weight_ms
            + self.offchip_oact_ms
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "compute_ms": self.compute_ms,
            "offchip_iact_ms": self.offchip_iact_ms,
            "offchip_weight_ms": self.offchip_weight_ms,
            "onchip_weight_ms": self.onchip_weight_ms,
            "offchip_oact_ms": self.offchip_oact_ms,
            "total_ms": self.total_ms,
        }


@dataclass(frozen=True)
class SubNetLatencyBreakdown:
    """Full latency/energy result for serving one SubNet once."""

    subnet_name: str
    platform_name: str
    per_layer: tuple[LayerLatency, ...]
    components: LatencyComponents
    offchip_bytes: float
    onchip_weight_bytes: float
    cached_weight_bytes: float
    offchip_energy_mj: float
    onchip_energy_mj: float

    @property
    def latency_ms(self) -> float:
        return self.components.total_ms

    @property
    def total_energy_mj(self) -> float:
        return self.offchip_energy_mj + self.onchip_energy_mj

    def memory_bound_layers(self) -> list[str]:
        """Names of layers whose exposed memory time exceeds compute time."""
        return [ll.layer_name for ll in self.per_layer if ll.is_memory_bound]


class SushiAccelModel:
    """Analytic model of SushiAccel on a given platform.

    Parameters
    ----------
    platform:
        The deployment platform (clock, DPE parallelism, bandwidth, buffers).
    with_pb:
        Whether the Persistent Buffer is instantiated.  ``None`` follows the
        platform configuration (``pb_kb > 0``).
    query_overhead_cycles:
        Fixed per-query control overhead added to every served query.
    """

    def __init__(
        self,
        platform: PlatformConfig,
        *,
        with_pb: bool | None = None,
        query_overhead_cycles: float | None = None,
        weight_overlap_fraction: float = DEFAULT_WEIGHT_OVERLAP_FRACTION,
    ) -> None:
        self.platform = platform
        self.with_pb = platform.has_pb if with_pb is None else with_pb
        self.dpe = DPEArrayConfig(
            kp=platform.kp, cp=platform.cp, dpe_size=platform.dpe_size
        )
        self.dram = DRAMModel.from_platform(platform)
        self.buffers: BufferHierarchy = default_hierarchy(
            platform, self.dpe, with_pb=self.with_pb
        )
        self.query_overhead_cycles = (
            platform.query_overhead_cycles
            if query_overhead_cycles is None
            else query_overhead_cycles
        )
        self.weight_overlap_fraction = weight_overlap_fraction

    # ------------------------------------------------------------ factory
    def make_persistent_buffer(self) -> PersistentBuffer:
        """A PersistentBuffer sized to this model's PB allocation."""
        capacity = self.buffers.pb.capacity_bytes if self.with_pb else 0
        return PersistentBuffer(capacity)

    @property
    def pb_capacity_bytes(self) -> int:
        return self.buffers.pb.capacity_bytes if self.with_pb else 0

    # ------------------------------------------------------------ latency
    def subnet_breakdown(
        self,
        subnet: SubNet,
        cached: CachedSubGraph | None = None,
        *,
        layer_filter=None,
    ) -> SubNetLatencyBreakdown:
        """Latency/energy of serving ``subnet`` once with ``cached`` in the PB.

        ``layer_filter`` optionally restricts the evaluation to a subset of
        layers (e.g. only the 3x3 convolutions, as the paper's real-board
        experiments of Section 5.4/5.5 do); it receives each active
        :class:`~repro.supernet.layers.ConvLayerSpec` and returns a bool.
        """
        cached_per_layer: dict[str, int]
        if cached is None or not self.with_pb:
            cached_per_layer = {}
        else:
            cached_per_layer = cached.overlap_bytes_per_layer(subnet)

        onchip_bw = self.platform.on_chip_bandwidth_bytes_per_cycle
        sb_capacity = self.buffers["SB"].capacity_bytes
        ob_capacity = self.buffers["OB"].capacity_bytes
        pairs = list(zip(subnet.ordered_slices, subnet.active_layers()))
        if layer_filter is not None:
            pairs = [(sl, layer) for sl, layer in pairs if layer_filter(layer)]
            if not pairs:
                raise ValueError("layer_filter removed every layer of the SubNet")
        active_layers = [layer for _, layer in pairs]
        per_layer: list[LayerLatency] = []
        for idx, (sl, layer) in enumerate(pairs):
            cached_bytes = cached_per_layer.get(sl.layer.name, 0)
            per_layer.append(
                layer_latency(
                    layer,
                    self.dpe,
                    self.dram,
                    cached_weight_bytes=cached_bytes,
                    onchip_bandwidth_bytes_per_cycle=onchip_bw,
                    sb_capacity_bytes=sb_capacity,
                    ob_capacity_bytes=ob_capacity,
                    is_first_layer=idx == 0,
                    is_last_layer=idx == len(active_layers) - 1,
                    weight_overlap_fraction=self.weight_overlap_fraction,
                )
            )

        to_ms = self.dram.cycles_to_ms
        compute = sum(ll.compute_cycles for ll in per_layer)
        iact = sum(ll.exposed_iact_cycles for ll in per_layer)
        weight = sum(ll.exposed_weight_cycles for ll in per_layer)
        onchip = sum(ll.onchip_weight_cycles for ll in per_layer)
        oact = sum(ll.exposed_oact_cycles for ll in per_layer)
        components = LatencyComponents(
            compute_ms=to_ms(compute + self.query_overhead_cycles),
            offchip_iact_ms=to_ms(iact),
            offchip_weight_ms=to_ms(weight),
            onchip_weight_ms=to_ms(onchip),
            offchip_oact_ms=to_ms(oact),
        )

        offchip_bytes = sum(ll.offchip_bytes for ll in per_layer)
        onchip_weight_bytes = sum(ll.onchip_weight_bytes for ll in per_layer)
        cached_bytes_total = sum(ll.cached_weight_bytes for ll in per_layer)
        return SubNetLatencyBreakdown(
            subnet_name=subnet.name,
            platform_name=self.platform.name,
            per_layer=tuple(per_layer),
            components=components,
            offchip_bytes=offchip_bytes,
            onchip_weight_bytes=onchip_weight_bytes,
            cached_weight_bytes=cached_bytes_total,
            offchip_energy_mj=self.dram.off_chip_energy_mj(offchip_bytes),
            onchip_energy_mj=self.dram.on_chip_energy_mj(
                onchip_weight_bytes + subnet.total_act_bytes
            ),
        )

    def subnet_latency_ms(
        self, subnet: SubNet, cached: CachedSubGraph | None = None
    ) -> float:
        """End-to-end serving latency (ms) of one query on ``subnet``."""
        return self.subnet_breakdown(subnet, cached).latency_ms

    def cache_load_latency_ms(self, nbytes: float) -> float:
        """Latency of loading ``nbytes`` of SubGraph weights into the PB."""
        return self.dram.transfer_ms(nbytes)

    # ------------------------------------------------------------- energy
    def subnet_offchip_energy_mj(
        self, subnet: SubNet, cached: CachedSubGraph | None = None
    ) -> float:
        return self.subnet_breakdown(subnet, cached).offchip_energy_mj

    # ------------------------------------------------------------- tables
    def latency_matrix_ms(
        self,
        subnets: Sequence[SubNet],
        subgraphs: Sequence[CachedSubGraph],
    ) -> list[list[float]]:
        """The raw ``L[i][j]`` latency matrix backing SushiAbs's lookup table."""
        return [
            [self.subnet_latency_ms(sn, sg) for sg in subgraphs] for sn in subnets
        ]
