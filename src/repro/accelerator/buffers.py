"""On-chip buffer hierarchy of SushiAccel.

The accelerator splits its on-chip storage into dedicated buffers, one per
data type (Fig. 7 of the paper):

* **PB** (Persistent Buffer) — holds the cached SubGraph for SubGraph Reuse,
* **DB1/DB2** (Dynamic Buffers) — ping-pong buffers for the distinct (non
  cached) weights of the currently served SubNet,
* **SB** (Streaming Buffer) — whole input activations, enabling multi-kernel
  iAct reuse,
* **LB** (Line Buffer) — serial-to-parallel conversion and sliding-window
  iAct reuse,
* **OB** (Output Buffer) — in-place partial-sum accumulation so only final
  oActs go off-chip,
* **ZSB** (Zero-point/Scale Buffer) — quantization metadata.

The module models capacities, per-cycle bandwidth requirements (Table 1) and
validates that a configuration fits the platform's storage budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.accelerator.dpe import DPEArrayConfig
from repro.accelerator.platforms import PlatformConfig

#: Canonical buffer names, in the order the paper's tables list them.
BUFFER_NAMES: tuple[str, ...] = ("DB-Ping", "DB-Pong", "SB", "LB", "OB", "ZSB", "PB")


@dataclass(frozen=True)
class BufferSpec:
    """One on-chip buffer: capacity and per-cycle width (bandwidth)."""

    name: str
    capacity_bytes: int
    width_bytes_per_cycle: float

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError(f"{self.name}: capacity must be non-negative")
        if self.width_bytes_per_cycle < 0:
            raise ValueError(f"{self.name}: width must be non-negative")

    @property
    def capacity_kb(self) -> float:
        return self.capacity_bytes / 1024.0


def _lcm_bandwidth(a: float, b: float) -> float:
    """The paper sizes buffer widths as LCM(off-chip BW, demanded BW).

    Bandwidths are real-valued here, so we conservatively take the maximum —
    the LCM of the two hardware bus widths is at least as wide as either.
    """
    return max(a, b)


def bandwidth_requirements(
    dpe: DPEArrayConfig,
    platform: PlatformConfig,
    *,
    kernel_size: int = 3,
    act_bits: int = 8,
    weight_bits: int = 8,
) -> dict[str, float]:
    """Minimal per-cycle bandwidth of each buffer (reproduces Table 1).

    Returns bytes/cycle for each buffer name.
    """
    off_chip = platform.off_chip_bytes_per_cycle
    demanded_weights = dpe.demanded_weight_bytes_per_cycle(weight_bits)
    demanded_iacts = dpe.demanded_iact_bytes_per_cycle(kernel_size, act_bits)
    return {
        "DB": _lcm_bandwidth(off_chip, demanded_weights),
        "SB": _lcm_bandwidth(off_chip, demanded_iacts),
        "LB": demanded_weights,
        "OB": dpe.produced_oact_bytes_per_cycle(act_bits),
        "PB": _lcm_bandwidth(off_chip, demanded_weights),
    }


@dataclass(frozen=True)
class BufferHierarchy:
    """A concrete allocation of the on-chip storage budget across buffers."""

    buffers: Mapping[str, BufferSpec]

    def __post_init__(self) -> None:
        missing = set(BUFFER_NAMES) - set(self.buffers)
        if missing:
            raise ValueError(f"buffer hierarchy missing buffers: {sorted(missing)}")

    # ------------------------------------------------------------- access
    def __getitem__(self, name: str) -> BufferSpec:
        return self.buffers[name]

    @property
    def pb(self) -> BufferSpec:
        return self.buffers["PB"]

    @property
    def db_bytes(self) -> int:
        """Total dynamic (ping + pong) weight buffer capacity."""
        return self.buffers["DB-Ping"].capacity_bytes + self.buffers["DB-Pong"].capacity_bytes

    @property
    def total_bytes(self) -> int:
        return sum(spec.capacity_bytes for spec in self.buffers.values())

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0

    def validate_budget(self, platform: PlatformConfig) -> None:
        """Raise if the allocation exceeds the platform's storage budget."""
        budget = platform.total_buffer_kb * 1024
        if self.total_bytes > budget * 1.001:  # tolerate rounding
            raise ValueError(
                f"buffer allocation ({self.total_bytes / 1024:.0f} KB) exceeds "
                f"{platform.name}'s budget ({platform.total_buffer_kb:.0f} KB)"
            )

    def summary(self) -> dict[str, float]:
        """Capacity (KB) per buffer plus the total — mirrors Table 3 rows."""
        out = {name: self.buffers[name].capacity_kb for name in BUFFER_NAMES}
        out["Overall"] = self.total_kb
        return out


def default_hierarchy(
    platform: PlatformConfig,
    dpe: DPEArrayConfig | None = None,
    *,
    with_pb: bool | None = None,
) -> BufferHierarchy:
    """Build the paper's buffer allocation for a platform.

    The split follows Table 3 (ZCU104): fixed-size LB/OB/ZSB plus an SB sized
    for one activation tile, with the remaining budget divided between the
    ping-pong DBs and (when enabled) the PB.  Disabling the PB hands its
    storage back to the DBs and SB so total storage stays constant — exactly
    the w/-PB vs w/o-PB comparison of the paper.
    """
    dpe = dpe or DPEArrayConfig(kp=platform.kp, cp=platform.cp, dpe_size=platform.dpe_size)
    use_pb = platform.has_pb if with_pb is None else with_pb
    budget = int(platform.total_buffer_kb * 1024)
    reqs = bandwidth_requirements(dpe, platform)

    # Fixed-function buffers (sizes follow Table 3, scaled to the array width).
    lb_bytes = 54 * 1024 * max(1, dpe.cp) // 9
    ob_bytes = 327 * 1024 * max(1, dpe.kp) // 16
    zsb_bytes = 8 * 1024
    fixed = lb_bytes + ob_bytes + zsb_bytes
    if fixed >= budget:
        raise ValueError(
            f"{platform.name}: storage budget {budget / 1024:.0f} KB too small for "
            f"the fixed buffers ({fixed / 1024:.0f} KB)"
        )

    remaining = budget - fixed
    # The PB is granted its configured capacity (up to what the budget allows
    # while keeping a minimal SB/DB), mirroring Table 3 where the ZCU104 PB
    # receives its full 1728 KB.  The SB is sized identically with and without
    # the PB so the w/-PB vs w/o-PB comparison isolates the SubGraph-
    # Stationary effect; the storage freed by dropping the PB goes to the
    # ping-pong DBs, which only deepens the weight-prefetch window.
    min_db_bytes = 256 * 1024
    pb_request = min(platform.pb_bytes, max(0, remaining - 2 * min_db_bytes))
    sb_bytes = min(1152 * 1024, max((remaining - pb_request) // 2, 64 * 1024))
    pb_bytes = pb_request if use_pb else 0
    dynamic = max(0, remaining - sb_bytes - pb_bytes)
    db_ping = dynamic // 2
    db_pong = dynamic - db_ping

    buffers = {
        "DB-Ping": BufferSpec("DB-Ping", db_ping, reqs["DB"]),
        "DB-Pong": BufferSpec("DB-Pong", db_pong, reqs["DB"]),
        "SB": BufferSpec("SB", sb_bytes, reqs["SB"]),
        "LB": BufferSpec("LB", lb_bytes, reqs["LB"]),
        "OB": BufferSpec("OB", ob_bytes, reqs["OB"]),
        "ZSB": BufferSpec("ZSB", zsb_bytes, platform.off_chip_bytes_per_cycle),
        "PB": BufferSpec("PB", pb_bytes, reqs["PB"]),
    }
    hierarchy = BufferHierarchy(buffers=buffers)
    hierarchy.validate_budget(platform)
    return hierarchy
