"""CPU baseline latency model (Intel i7-10750H in the paper's Fig. 13a).

A simple roofline-style per-layer model: each layer runs at
``min(effective_cpu_gflops, AI x memory_bandwidth)`` with an efficiency factor
reflecting that general-purpose cores sustain only a fraction of peak on int8
convolutions.  The goal is a baseline whose *relative* position matches the
paper — SushiAccel achieves roughly 1.4-3.2x speedups over it depending on
SubNet size and board.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.platforms import CPU_I7_10750H, PlatformConfig
from repro.supernet.layers import ConvLayerSpec, LayerKind
from repro.supernet.subnet import SubNet


@dataclass(frozen=True)
class CPUModel:
    """Roofline-style CPU latency model.

    Attributes
    ----------
    platform:
        CPU platform configuration (clock, SIMD lanes, memory bandwidth).
    compute_efficiency:
        Fraction of peak GFLOPS sustained on convolution kernels.
    memory_efficiency:
        Fraction of peak DRAM bandwidth sustained.
    framework_overhead_ms:
        Fixed per-query software overhead (framework dispatch, im2col, ...).
    """

    platform: PlatformConfig = CPU_I7_10750H
    compute_efficiency: float = 0.20
    memory_efficiency: float = 0.60
    framework_overhead_ms: float = 1.2

    def __post_init__(self) -> None:
        if not (0 < self.compute_efficiency <= 1):
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not (0 < self.memory_efficiency <= 1):
            raise ValueError("memory_efficiency must be in (0, 1]")

    @property
    def effective_gflops(self) -> float:
        return self.platform.peak_gflops * self.compute_efficiency

    @property
    def effective_bandwidth_gbps(self) -> float:
        return self.platform.off_chip_bandwidth_gbps * self.memory_efficiency

    # ------------------------------------------------------------ latency
    def layer_latency_ms(self, layer: ConvLayerSpec) -> float:
        """Latency of one layer: the slower of its compute and memory times."""
        if layer.kind == LayerKind.POOL or layer.flops == 0:
            return 0.0
        compute_ms = layer.flops / (self.effective_gflops * 1e9) * 1e3
        bytes_moved = layer.total_data_bytes
        memory_ms = bytes_moved / (self.effective_bandwidth_gbps * 1e9) * 1e3
        # Depthwise convolutions vectorize poorly on CPUs as well, but less
        # catastrophically than on a channel-parallel DPE array.
        if layer.kind == LayerKind.DEPTHWISE_CONV:
            compute_ms *= 1.5
        return max(compute_ms, memory_ms)

    def subnet_latency_ms(self, subnet: SubNet) -> float:
        """End-to-end CPU serving latency of one query on ``subnet``."""
        return self.framework_overhead_ms + sum(
            self.layer_latency_ms(layer) for layer in subnet.active_layers()
        )
