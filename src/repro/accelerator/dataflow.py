"""Per-layer dataflow latency model.

Combines the DPE compute model, the DRAM model and the buffer hierarchy into
the per-convolution-layer latency estimate of SushiAccel's analytic model
(Section 5.1 "Architecture Analytic Model").  The model captures the dataflow
properties the paper's results rest on:

* **Activation residency.**  The Streaming Buffer holds entire input
  activations and the Output Buffer accumulates final oActs (Fig. 7), so
  intermediate activations that fit on chip never cross the DRAM interface;
  only the query image, the final output, and activations too large for the
  SB/OB spill off-chip.  Off-chip traffic is therefore dominated by weights,
  which is what makes SubGraph Stationary caching pay off.
* **Partial weight-prefetch hiding** (Fig. 9b).  The ping-pong Dynamic Buffer
  prefetches the next weight tile while the current one computes, but the
  off-chip interface is shared with activation spills and the prefetch window
  is bounded by the DB capacity, so only a fraction
  (``weight_overlap_fraction``) of a layer's compute time is available for
  hiding weight traffic.  The remainder of the weight stream is exposed on
  the critical path — the "Critical Latency in Off-chip Weights Mem Access"
  slice of Fig. 10 — and it is exactly this exposed portion that SGS caching
  removes.
* **SubGraph reuse** (Fig. 9a).  Weight bytes resident in the Persistent
  Buffer are read from on-chip storage at the (much higher) on-chip
  bandwidth instead of being fetched from DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.dpe import DPEArrayConfig
from repro.accelerator.dram import DRAMModel
from repro.accelerator.tiling import first_tile_bytes
from repro.supernet.layers import ConvLayerSpec, LayerKind

#: Fraction of a layer's compute time during which the off-chip interface is
#: free to prefetch weights into the ping-pong Dynamic Buffer.  Calibrated so
#: the exposed-weight share of end-to-end latency matches Fig. 10.
DEFAULT_WEIGHT_OVERLAP_FRACTION: float = 0.1


@dataclass(frozen=True)
class LayerLatency:
    """Latency decomposition of one layer, in accelerator cycles.

    ``total_cycles`` is what the layer contributes to the end-to-end critical
    path; the remaining fields decompose it into the categories plotted in
    Fig. 10 (compute, off-chip iAct / weight / oAct access, on-chip weight
    access).
    """

    layer_name: str
    compute_cycles: float
    exposed_iact_cycles: float
    exposed_weight_cycles: float
    exposed_oact_cycles: float
    onchip_weight_cycles: float
    offchip_bytes: float
    onchip_weight_bytes: float
    cached_weight_bytes: float

    @property
    def total_cycles(self) -> float:
        return (
            self.compute_cycles
            + self.exposed_iact_cycles
            + self.exposed_weight_cycles
            + self.exposed_oact_cycles
            + self.onchip_weight_cycles
        )

    @property
    def exposed_memory_cycles(self) -> float:
        return self.total_cycles - self.compute_cycles

    @property
    def is_memory_bound(self) -> bool:
        """True when exposed off-chip time dominates this layer."""
        return self.exposed_memory_cycles > self.compute_cycles


def layer_latency(
    layer: ConvLayerSpec,
    dpe: DPEArrayConfig,
    dram: DRAMModel,
    *,
    cached_weight_bytes: float = 0.0,
    onchip_bandwidth_bytes_per_cycle: float = 512.0,
    sb_capacity_bytes: int | None = None,
    ob_capacity_bytes: int | None = None,
    is_first_layer: bool = False,
    is_last_layer: bool = False,
    weight_overlap_fraction: float = DEFAULT_WEIGHT_OVERLAP_FRACTION,
) -> LayerLatency:
    """Latency of one layer given how many of its weight bytes are SGS-cached.

    Parameters
    ----------
    layer:
        The layer at its activated channel counts.
    cached_weight_bytes:
        Weight bytes of this layer resident in the Persistent Buffer (clamped
        to the layer's weight footprint).
    onchip_bandwidth_bytes_per_cycle:
        Read bandwidth of the PB; cached weights are streamed at this rate.
    sb_capacity_bytes / ob_capacity_bytes:
        Streaming / Output buffer capacities.  Activations larger than the
        corresponding buffer spill off-chip; ``None`` means "always fits".
    is_first_layer / is_last_layer:
        The first layer always reads the query image from DRAM and the last
        layer always writes the result back.
    weight_overlap_fraction:
        Fraction of compute time usable to hide off-chip weight prefetch.
    """
    if layer.kind == LayerKind.POOL:
        return LayerLatency(
            layer_name=layer.name,
            compute_cycles=0.0,
            exposed_iact_cycles=0.0,
            exposed_weight_cycles=0.0,
            exposed_oact_cycles=0.0,
            onchip_weight_cycles=0.0,
            offchip_bytes=0.0,
            onchip_weight_bytes=0.0,
            cached_weight_bytes=0.0,
        )
    if not (0.0 <= weight_overlap_fraction <= 1.0):
        raise ValueError("weight_overlap_fraction must be in [0, 1]")

    cached = float(min(max(cached_weight_bytes, 0.0), layer.weight_bytes))
    distinct_weight_bytes = layer.weight_bytes - cached

    # Activation spill decisions.
    iact_spills = is_first_layer or (
        sb_capacity_bytes is not None and layer.input_act_bytes > sb_capacity_bytes
    )
    oact_spills = is_last_layer or (
        ob_capacity_bytes is not None and layer.output_act_bytes > ob_capacity_bytes
    )
    iact_bytes = float(layer.input_act_bytes) if iact_spills else 0.0
    oact_bytes = float(layer.output_act_bytes) if oact_spills else 0.0

    compute = float(dpe.compute_cycles(layer))

    # Off-chip streams.
    weight_cycles = dram.transfer_cycles(distinct_weight_bytes)
    iact_cycles = dram.transfer_cycles(iact_bytes)
    oact_cycles = dram.transfer_cycles(oact_bytes)
    offchip_bytes = distinct_weight_bytes + iact_bytes + oact_bytes

    # Weight prefetch: hidden up to a fraction of the compute time, except the
    # first tile which must land before the array starts.
    prologue_weight = dram.transfer_cycles(
        min(first_tile_bytes(layer, dpe), distinct_weight_bytes)
    )
    hideable = weight_overlap_fraction * compute
    exposed_weight = prologue_weight + max(0.0, weight_cycles - prologue_weight - hideable)
    exposed_weight = min(exposed_weight, weight_cycles)

    # Activation spills are streamed; they overlap compute up to the compute
    # time not already consumed by weight prefetch.
    act_hideable = max(0.0, compute - min(weight_cycles, hideable))
    act_cycles = iact_cycles + oact_cycles
    exposed_act = max(0.0, act_cycles - act_hideable)
    if act_cycles > 0:
        exposed_iact = exposed_act * (iact_cycles / act_cycles)
        exposed_oact = exposed_act * (oact_cycles / act_cycles)
    else:
        exposed_iact = exposed_oact = 0.0

    # Cached weights stream from the PB at on-chip bandwidth; only the first
    # tile read is exposed (the rest overlaps compute).
    if cached > 0 and onchip_bandwidth_bytes_per_cycle > 0:
        onchip_cycles_raw = cached / onchip_bandwidth_bytes_per_cycle
        onchip_exposed = min(
            onchip_cycles_raw,
            first_tile_bytes(layer, dpe) / onchip_bandwidth_bytes_per_cycle,
        ) + max(0.0, onchip_cycles_raw - compute)
    else:
        onchip_exposed = 0.0

    return LayerLatency(
        layer_name=layer.name,
        compute_cycles=compute,
        exposed_iact_cycles=exposed_iact,
        exposed_weight_cycles=exposed_weight,
        exposed_oact_cycles=exposed_oact,
        onchip_weight_cycles=onchip_exposed,
        offchip_bytes=offchip_bytes,
        onchip_weight_bytes=cached,
        cached_weight_bytes=cached,
    )
