"""Dot-Product-Engine (DPE) array compute model.

SushiAccel's compute fabric is a 2D array of fixed-size (9-multiplier) DPEs:
``KP`` rows process different kernels in parallel, ``CP`` columns process
different input-activation channels in parallel (Fig. 7/8 of the paper).
Larger kernels are decomposed into serial 3x3 tiles; 1x1 kernels flatten the
channel dimension across the 9 multipliers.  This module turns a layer's
shape into compute cycles and achieved utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.supernet.layers import ConvLayerSpec, LayerKind


@dataclass(frozen=True)
class DPEArrayConfig:
    """Geometry of the DPE array.

    Attributes
    ----------
    kp:
        Kernel-level parallelism (rows): kernels processed concurrently.
    cp:
        Channel-level parallelism (columns): input channels processed
        concurrently.
    dpe_size:
        Multipliers per DPE; the paper fixes this at 9 (one 3x3 kernel tile).
    """

    kp: int
    cp: int
    dpe_size: int = 9

    def __post_init__(self) -> None:
        if self.kp <= 0 or self.cp <= 0 or self.dpe_size <= 0:
            raise ValueError("DPE array dimensions must be positive")

    @property
    def macs_per_cycle(self) -> int:
        """Peak MACs per cycle when the array is fully utilized."""
        return self.kp * self.cp * self.dpe_size

    # ------------------------------------------------------------- cycles
    def compute_cycles(self, layer: ConvLayerSpec) -> int:
        """Cycles to compute one layer on the DPE array.

        The mapping follows Section 4.2.1 of the paper:

        * ``k >= 3`` convolutions: each DPE reduces one 3x3 kernel tile;
          kernels map across rows (KP) and input channels across columns (CP).
          Larger kernels are decomposed into ``ceil(k^2 / 9)`` serial 3x3
          tiles.
        * ``1x1`` convolutions (and linear layers): the input-channel
          dimension is flattened across the 9 multipliers, so each DPE covers
          9 channels per cycle.
        * layers with fewer input channels than CP (e.g. the stem): the idle
          channel columns are repurposed for output-pixel parallelism, the
          standard fallback mapping of flexible DPE arrays.
        * depthwise convolutions: there is no cross-channel reduction, so the
          channel columns cannot combine partial sums for one kernel; half of
          them can still be repurposed spatially, but utilization stays low —
          which is why depthwise-heavy MobileNetV3 benefits less (Fig. 12b).
        """
        if layer.kind == LayerKind.POOL or layer.macs == 0:
            return 0
        out_pixels = layer.output_hw * layer.output_hw

        if layer.kind == LayerKind.DEPTHWISE_CONV:
            kernel_tiles = max(1, math.ceil(layer.kernel_size**2 / self.dpe_size))
            channel_passes = math.ceil(layer.out_channels / self.kp)
            # Only half of the CP columns can be repurposed for spatial
            # parallelism (the adder tree reduces across columns, so spatially
            # flattened pixels must bypass it).
            spatial_par = max(1, self.cp // 2)
            pixel_passes = math.ceil(out_pixels / spatial_par)
            return channel_passes * kernel_tiles * pixel_passes

        if layer.kind == LayerKind.LINEAR or layer.kernel_size == 1:
            # Channel dimension flattened across the 9 multipliers.
            channels_per_dpe = self.dpe_size
            kernel_passes = math.ceil(layer.out_channels / self.kp)
            channel_cover = self.cp * channels_per_dpe
            channel_passes = math.ceil(layer.in_channels / channel_cover)
            spatial_par = max(1, channel_cover // max(1, layer.in_channels)) if layer.in_channels < channel_cover else 1
            pixel_passes = math.ceil(out_pixels / spatial_par)
            return kernel_passes * channel_passes * pixel_passes

        # Regular (grouped) convolution with k >= 3.
        per_group_in = layer.in_channels // layer.groups
        kernel_tiles = max(1, math.ceil(layer.kernel_size**2 / self.dpe_size))
        kernel_passes = math.ceil(layer.out_channels / self.kp)
        channel_passes = math.ceil(per_group_in / self.cp)
        spatial_par = max(1, self.cp // max(1, per_group_in)) if per_group_in < self.cp else 1
        pixel_passes = math.ceil(out_pixels / spatial_par)
        return kernel_passes * channel_passes * kernel_tiles * pixel_passes

    def utilization(self, layer: ConvLayerSpec) -> float:
        """Achieved fraction of peak MACs for a layer (0 for zero-work layers)."""
        cycles = self.compute_cycles(layer)
        if cycles == 0:
            return 0.0
        return min(1.0, layer.macs / (cycles * self.macs_per_cycle))

    def effective_macs_per_cycle(self, layer: ConvLayerSpec) -> float:
        """MACs per cycle actually achieved on this layer."""
        return self.utilization(layer) * self.macs_per_cycle

    # -------------------------------------------------------- requirements
    def demanded_weight_bytes_per_cycle(self, weight_bits: int = 8) -> float:
        """On-chip weight bandwidth the array can consume per cycle.

        During the store-and-forward weight load each row receives one kernel
        tile per cycle; steady-state demand is one weight per multiplier per
        tile switch.  Used for the buffer bandwidth requirements of Table 1.
        """
        return self.kp * self.cp * self.dpe_size * weight_bits / 8.0

    def demanded_iact_bytes_per_cycle(
        self, kernel_size: int = 3, act_bits: int = 8
    ) -> float:
        """On-chip iAct bandwidth demanded per cycle (CP x R x S elements)."""
        return self.cp * kernel_size * kernel_size * act_bits / 8.0

    def produced_oact_bytes_per_cycle(self, act_bits: int = 8) -> float:
        """oAct bytes produced per cycle (one partial sum per row)."""
        return self.kp * act_bits / 8.0
