"""Xilinx DPU (DPUCZDX8G) baseline latency model (Fig. 14 / Tab. 2).

The DPU is a weight/output-stationary accelerator with 2304 ops/cycle on
ZCU104.  Compared with SushiAccel it spreads more of its parallelism across
the spatial (X/Y) dimensions and less across kernels/channels, and it has no
Persistent Buffer.  The paper reports SushiAccel w/o PB is on average ~25 %
faster (geometric mean) on ResNet50's 3x3 convolutions, with the DPU winning
on a few layers whose large spatial extents favour its X/Y parallelism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accelerator.dram import DRAMModel
from repro.accelerator.platforms import XILINX_DPU_ZCU104, PlatformConfig
from repro.supernet.layers import ConvLayerSpec, LayerKind
from repro.supernet.subnet import SubNet


@dataclass(frozen=True)
class XilinxDPUModel:
    """Analytic per-layer latency model of the Xilinx DPU.

    Attributes
    ----------
    platform:
        DPU platform configuration.
    pixel_parallelism:
        Output pixels processed in parallel (the DPU's X/Y-dimension
        parallelism; DPUCZDX8G-B4096 processes 8 pixels per cycle).
    kernel_parallelism / channel_parallelism:
        Kernels and input channels processed in parallel.
    scheduling_overhead_cycles:
        Per-layer instruction-fetch / scheduling overhead.
    """

    platform: PlatformConfig = XILINX_DPU_ZCU104
    pixel_parallelism: int = 8
    kernel_parallelism: int = 12
    channel_parallelism: int = 12
    scheduling_overhead_cycles: float = 2_500.0

    @property
    def macs_per_cycle(self) -> int:
        return self.pixel_parallelism * self.kernel_parallelism * self.channel_parallelism

    def _dram(self) -> DRAMModel:
        return DRAMModel.from_platform(self.platform)

    # ------------------------------------------------------------ latency
    def layer_compute_cycles(self, layer: ConvLayerSpec) -> float:
        """Compute cycles of one layer on the DPU's X/Y/K/C-parallel array."""
        if layer.kind == LayerKind.POOL or layer.macs == 0:
            return 0.0
        out_pixels = layer.output_hw * layer.output_hw
        pixel_passes = math.ceil(out_pixels / self.pixel_parallelism)
        kernel_passes = math.ceil(layer.out_channels / self.kernel_parallelism)
        if layer.kind == LayerKind.DEPTHWISE_CONV:
            # No cross-channel reduction: channel parallelism is unusable.
            channel_passes = 1
            kernel_work = layer.kernel_size**2
        else:
            per_group_in = layer.in_channels // layer.groups
            channel_passes = math.ceil(per_group_in / self.channel_parallelism)
            kernel_work = layer.kernel_size**2
        return pixel_passes * kernel_passes * channel_passes * kernel_work

    def layer_latency_ms(self, layer: ConvLayerSpec) -> float:
        """Per-layer latency: compute overlapped with off-chip traffic."""
        dram = self._dram()
        compute = self.layer_compute_cycles(layer) + self.scheduling_overhead_cycles
        mem = dram.transfer_cycles(layer.total_data_bytes)
        return dram.cycles_to_ms(max(compute, mem))

    def subnet_latency_ms(self, subnet: SubNet) -> float:
        """End-to-end DPU latency of one query on ``subnet``."""
        return sum(self.layer_latency_ms(layer) for layer in subnet.active_layers())
