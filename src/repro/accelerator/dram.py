"""Off-chip DRAM model: transfer latency and access energy.

Data movement between DRAM and the on-chip buffers dominates both latency (for
memory-bound layers) and energy (Section 5.4.3 of the paper estimates energy
purely from off-chip access counts).  This model converts byte counts into
cycles at a configured bandwidth and into energy with per-byte coefficients.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accelerator.platforms import (
    DEFAULT_DRAM_PJ_PER_BYTE,
    DEFAULT_SRAM_PJ_PER_BYTE,
    PlatformConfig,
)


@dataclass(frozen=True)
class DRAMModel:
    """Bandwidth/energy model of the off-chip memory system.

    Attributes
    ----------
    bandwidth_gbps:
        Sustained off-chip bandwidth in GB/s.
    clock_mhz:
        Accelerator clock used to express transfers in cycles.
    burst_bytes:
        Minimum transfer granularity; small transfers are rounded up to it
        (models DRAM burst/row effects coarsely).
    dram_pj_per_byte / sram_pj_per_byte:
        Access energy coefficients for off-chip and on-chip transfers.
    """

    bandwidth_gbps: float
    clock_mhz: float
    burst_bytes: int = 64
    dram_pj_per_byte: float = DEFAULT_DRAM_PJ_PER_BYTE
    sram_pj_per_byte: float = DEFAULT_SRAM_PJ_PER_BYTE

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.clock_mhz <= 0:
            raise ValueError("clock must be positive")
        if self.burst_bytes <= 0:
            raise ValueError("burst_bytes must be positive")

    @classmethod
    def from_platform(cls, platform: PlatformConfig) -> "DRAMModel":
        """Build the DRAM model implied by a platform configuration.

        Uses the platform's *effective* bandwidth (nominal divided by the
        DRAM contention factor) so shared-host boards like the Alveo U50 see
        their degraded bandwidth.
        """
        return cls(
            bandwidth_gbps=platform.effective_bandwidth_gbps,
            clock_mhz=platform.clock_mhz,
            dram_pj_per_byte=platform.dram_pj_per_byte,
            sram_pj_per_byte=platform.sram_pj_per_byte,
        )

    # ------------------------------------------------------------ latency
    @property
    def bytes_per_cycle(self) -> float:
        """Off-chip bytes deliverable per accelerator clock cycle."""
        return self.bandwidth_gbps * 1e9 / (self.clock_mhz * 1e6)

    def transfer_cycles(self, nbytes: float) -> float:
        """Cycles to move ``nbytes`` over the off-chip interface."""
        if nbytes <= 0:
            return 0.0
        effective = math.ceil(nbytes / self.burst_bytes) * self.burst_bytes
        return effective / self.bytes_per_cycle

    def transfer_ms(self, nbytes: float) -> float:
        """Milliseconds to move ``nbytes`` off-chip."""
        return self.cycles_to_ms(self.transfer_cycles(nbytes))

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert accelerator cycles to milliseconds."""
        return cycles / (self.clock_mhz * 1e3)

    # ------------------------------------------------------------- energy
    def off_chip_energy_mj(self, nbytes: float) -> float:
        """Energy (mJ) of moving ``nbytes`` across the off-chip interface."""
        return max(nbytes, 0.0) * self.dram_pj_per_byte * 1e-9

    def on_chip_energy_mj(self, nbytes: float) -> float:
        """Energy (mJ) of reading ``nbytes`` from on-chip SRAM buffers."""
        return max(nbytes, 0.0) * self.sram_pj_per_byte * 1e-9
