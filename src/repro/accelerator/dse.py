"""Design-space exploration of SushiAccel configurations (Fig. 12).

Sweeps the three main hardware knobs — Persistent Buffer size, off-chip
bandwidth and compute throughput (DPE-array parallelism) — and reports the
latency reduction ("Time Save %") that SGS caching yields for a Pareto SubNet
family, reproducing the trends of Fig. 12: larger PB, more compute and *less*
off-chip bandwidth all increase the relative benefit of SubGraph Stationary,
and the benefit is smaller for MobileNetV3 than ResNet50.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.persistent_buffer import CachedSubGraph, PersistentBuffer
from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.supernet.subnet import SubNet


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated hardware configuration and its SGS benefit."""

    pb_kb: float
    bandwidth_gbps: float
    macs_per_cycle: int
    mean_latency_no_pb_ms: float
    mean_latency_with_pb_ms: float

    @property
    def time_save_percent(self) -> float:
        """Latency reduction of w/-PB relative to w/o-PB, in percent."""
        if self.mean_latency_no_pb_ms <= 0:
            return 0.0
        return (
            100.0
            * (self.mean_latency_no_pb_ms - self.mean_latency_with_pb_ms)
            / self.mean_latency_no_pb_ms
        )


def _scaled_parallelism(base: PlatformConfig, macs_per_cycle: int) -> tuple[int, int]:
    """Pick (kp, cp) whose product x dpe_size approximates a MACs/cycle target."""
    dpes_needed = max(1, round(macs_per_cycle / base.dpe_size))
    kp = max(1, int(round(math.sqrt(dpes_needed))))
    cp = max(1, dpes_needed // kp)
    return kp, cp


class DesignSpaceExplorer:
    """Exhaustive sweep over (PB size, bandwidth, throughput) configurations."""

    def __init__(
        self,
        subnets: Sequence[SubNet],
        *,
        base_platform: PlatformConfig = ANALYTIC_DEFAULT,
    ) -> None:
        if not subnets:
            raise ValueError("DSE needs at least one SubNet")
        self.subnets = list(subnets)
        self.base_platform = base_platform
        # Best-case SGS locality, as in Fig. 10/12: each SubNet is served with
        # (a truncation of) its own SubGraph resident in the PB — the state a
        # stream of queries hitting the same Pareto region converges to.
        self._self_subgraphs = [CachedSubGraph.from_subnet(sn) for sn in self.subnets]

    # ------------------------------------------------------------ evaluate
    def evaluate(
        self,
        *,
        pb_kb: float,
        bandwidth_gbps: float | None = None,
        macs_per_cycle: int | None = None,
    ) -> DesignPoint:
        """Evaluate one configuration: mean Pareto-family latency w/ and w/o PB."""
        platform = self.base_platform
        if bandwidth_gbps is not None or macs_per_cycle is not None:
            kp, cp = (
                _scaled_parallelism(platform, macs_per_cycle)
                if macs_per_cycle is not None
                else (platform.kp, platform.cp)
            )
            platform = platform.scaled(
                bandwidth_gbps=bandwidth_gbps or platform.off_chip_bandwidth_gbps,
                kp=kp,
                cp=cp,
            )
        # The DSE explores hypothetical hardware: when the requested PB exceeds
        # what the base budget can host, grow the total on-chip budget so the
        # PB axis of the sweep is not silently clipped.
        min_other_kb = 1024.0
        if pb_kb + min_other_kb > platform.total_buffer_kb:
            platform = dataclasses.replace(
                platform, total_buffer_kb=pb_kb + 2 * min_other_kb, pb_kb=pb_kb
            )
        else:
            platform = platform.with_pb(pb_kb)

        model_no_pb = SushiAccelModel(platform, with_pb=False)
        no_pb = float(
            np.mean([model_no_pb.subnet_latency_ms(sn) for sn in self.subnets])
        )

        if pb_kb <= 0:
            with_pb = no_pb
        else:
            model_pb = SushiAccelModel(platform, with_pb=True)
            pb = model_pb.make_persistent_buffer()
            with_pb = float(
                np.mean(
                    [
                        model_pb.subnet_latency_ms(sn, pb.fit_subgraph(sg))
                        for sn, sg in zip(self.subnets, self._self_subgraphs)
                    ]
                )
            )

        return DesignPoint(
            pb_kb=pb_kb,
            bandwidth_gbps=platform.off_chip_bandwidth_gbps,
            macs_per_cycle=platform.macs_per_cycle,
            mean_latency_no_pb_ms=no_pb,
            mean_latency_with_pb_ms=with_pb,
        )

    # --------------------------------------------------------------- sweeps
    def sweep(
        self,
        *,
        pb_kb_values: Iterable[float] = (256, 512, 1024, 1728, 2560, 4096),
        bandwidth_values_gbps: Iterable[float] = (9.6, 14.4, 19.2, 25.6),
        macs_per_cycle_values: Iterable[int] | None = None,
    ) -> list[DesignPoint]:
        """Full cartesian sweep (the Fig. 12 exploration)."""
        macs_values = (
            list(macs_per_cycle_values)
            if macs_per_cycle_values is not None
            else [self.base_platform.macs_per_cycle]
        )
        points = []
        for pb_kb in pb_kb_values:
            for bw in bandwidth_values_gbps:
                for macs in macs_values:
                    points.append(
                        self.evaluate(
                            pb_kb=pb_kb, bandwidth_gbps=bw, macs_per_cycle=macs
                        )
                    )
        return points

    def best_point(self, points: Sequence[DesignPoint] | None = None) -> DesignPoint:
        """The configuration with the highest SGS latency saving."""
        pts = list(points) if points is not None else self.sweep()
        return max(pts, key=lambda p: p.time_save_percent)
