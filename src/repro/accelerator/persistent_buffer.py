"""Persistent Buffer (PB): the on-chip SubGraph cache enabling SGS.

The PB holds the weights of one *SubGraph* — an arbitrary per-layer slice of
the SuperNet — across queries.  When the scheduler serves a SubNet, any weight
bytes that fall inside the cached SubGraph are read from the PB instead of
DRAM.  This module models the cache contents, capacity enforcement, hit
accounting, and the off-chip cost of swapping the cached SubGraph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.supernet.layers import LayerSlice
from repro.supernet.subnet import SubNet


@dataclass(frozen=True)
class CachedSubGraph:
    """An immutable SubGraph: per-layer slices plus a label.

    A SubGraph is any subset of SuperNet weights connected into a graph (the
    paper's definition); structurally we represent it the same way as a
    SubNet's activation — a mapping from layer name to :class:`LayerSlice` —
    but a SubGraph need not be servable (it usually is *not* a full SubNet).
    """

    name: str
    slices: Mapping[str, LayerSlice]

    @property
    def weight_bytes(self) -> int:
        return sum(sl.weight_bytes for sl in self.slices.values())

    @property
    def num_layers(self) -> int:
        return len(self.slices)

    def layer_bytes(self, layer_name: str) -> int:
        sl = self.slices.get(layer_name)
        return 0 if sl is None else sl.weight_bytes

    def overlap_bytes(self, subnet: SubNet) -> int:
        """Weight bytes of ``subnet`` that this SubGraph covers."""
        total = 0
        for name, sub_slice in subnet.layer_slices.items():
            cached_slice = self.slices.get(name)
            if cached_slice is not None:
                total += cached_slice.intersect(sub_slice).weight_bytes
        return total

    def overlap_bytes_per_layer(self, subnet: SubNet) -> dict[str, int]:
        """Per-layer covered bytes for ``subnet`` (used by the latency model)."""
        out: dict[str, int] = {}
        for name, sub_slice in subnet.layer_slices.items():
            cached_slice = self.slices.get(name)
            out[name] = (
                cached_slice.intersect(sub_slice).weight_bytes
                if cached_slice is not None
                else 0
            )
        return out

    def encode(self, supernet) -> np.ndarray:
        """Vector encoding ``[K1, C1, ..., KN, CN]`` over the SuperNet layers."""
        vec = np.zeros(2 * supernet.num_layers, dtype=np.float64)
        for name, sl in self.slices.items():
            idx = supernet.layer_index(name)
            vec[2 * idx] = sl.kernels
            vec[2 * idx + 1] = sl.channels
        return vec

    @classmethod
    def from_subnet(cls, subnet: SubNet, name: str | None = None) -> "CachedSubGraph":
        """The SubGraph consisting of an entire SubNet's weights."""
        return cls(name=name or f"sg({subnet.name})", slices=dict(subnet.layer_slices))

    @classmethod
    def empty(cls, name: str = "empty") -> "CachedSubGraph":
        return cls(name=name, slices={})


@dataclass
class PBStats:
    """Running statistics of Persistent Buffer behaviour across queries."""

    queries_served: int = 0
    hit_bytes_total: int = 0
    served_weight_bytes_total: int = 0
    cache_loads: int = 0
    cache_load_bytes_total: int = 0

    @property
    def byte_hit_ratio(self) -> float:
        """Fraction of served weight bytes that were PB hits."""
        if self.served_weight_bytes_total == 0:
            return 0.0
        return self.hit_bytes_total / self.served_weight_bytes_total


class PersistentBuffer:
    """Capacity-limited cache holding one SubGraph at a time.

    Parameters
    ----------
    capacity_bytes:
        PB capacity.  A SubGraph larger than the capacity is truncated layer
        by layer (earlier layers first) when loaded — matching the hardware,
        which simply stops filling the PB when it is full.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("PB capacity must be non-negative")
        self.capacity_bytes = int(capacity_bytes)
        self._cached = CachedSubGraph.empty()
        self.stats = PBStats()
        self.generation = 0
        """Bumped whenever the cached contents may have changed.  Between two
        generations the PB is immutable, so per-(generation, SubNet) results
        — latency breakdowns, hit ratios, hit bytes — can be memoized."""

    # ------------------------------------------------------------- state
    @property
    def cached(self) -> CachedSubGraph:
        return self._cached

    @property
    def occupancy_bytes(self) -> int:
        return self._cached.weight_bytes

    @property
    def occupancy_fraction(self) -> float:
        if self.capacity_bytes == 0:
            return 0.0
        return self.occupancy_bytes / self.capacity_bytes

    # ------------------------------------------------------------ loading
    def fit_subgraph(self, subgraph: CachedSubGraph) -> CachedSubGraph:
        """Truncate a SubGraph so it fits the PB capacity.

        Layer slices are admitted greedily in descending byte-size order: the
        heaviest layers are the ones whose off-chip weight fetch is least
        hideable behind compute, so caching them first maximizes the latency
        benefit per PB byte.  The hardware stores whole layer slices to keep
        PB addressing simple, so a slice that does not fit is skipped.
        """
        if subgraph.weight_bytes <= self.capacity_bytes:
            return subgraph
        kept: dict[str, LayerSlice] = {}
        used = 0
        by_size = sorted(
            subgraph.slices.items(), key=lambda item: item[1].weight_bytes, reverse=True
        )
        for name, sl in by_size:
            nbytes = sl.weight_bytes
            if used + nbytes <= self.capacity_bytes:
                kept[name] = sl
                used += nbytes
        return CachedSubGraph(name=f"{subgraph.name}|fit", slices=kept)

    def load(self, subgraph: CachedSubGraph) -> int:
        """Replace the cached SubGraph; returns off-chip bytes fetched.

        Only bytes not already present (per-layer slice intersection with the
        previous contents) need to cross the off-chip interface.
        """
        fitted = self.fit_subgraph(subgraph)
        fetched = 0
        for name, new_slice in fitted.slices.items():
            old_slice = self._cached.slices.get(name)
            already = (
                old_slice.intersect(new_slice).weight_bytes if old_slice is not None else 0
            )
            fetched += max(0, new_slice.weight_bytes - already)
        self._cached = fitted
        self.generation += 1
        self.stats.cache_loads += 1
        self.stats.cache_load_bytes_total += fetched
        return fetched

    def clear(self) -> None:
        self._cached = CachedSubGraph.empty()
        self.generation += 1

    # ------------------------------------------------------------ serving
    def hit_bytes(self, subnet: SubNet) -> int:
        """Weight bytes of ``subnet`` currently resident in the PB."""
        return self._cached.overlap_bytes(subnet)

    def hit_bytes_per_layer(self, subnet: SubNet) -> dict[str, int]:
        return self._cached.overlap_bytes_per_layer(subnet)

    def record_serve(self, subnet: SubNet, *, hit_bytes: int | None = None) -> None:
        """Update hit statistics after serving ``subnet``.

        ``hit_bytes`` may be passed when the caller already computed the
        overlap for this (generation, SubNet) pair — it must equal
        ``self.hit_bytes(subnet)``.
        """
        self.stats.queries_served += 1
        self.stats.hit_bytes_total += (
            self.hit_bytes(subnet) if hit_bytes is None else hit_bytes
        )
        self.stats.served_weight_bytes_total += subnet.weight_bytes

    def vector_hit_ratio(self, subnet: SubNet) -> float:
        """The paper's cache-hit metric: ||SN ∩ G||2 / ||SN||2 (Appendix A.4)."""
        supernet = subnet.supernet
        sn_vec = subnet.encode()
        cached_vec = self._cached.encode(supernet)
        inter = np.minimum(sn_vec, cached_vec)
        sn_norm = np.linalg.norm(sn_vec)
        if sn_norm == 0:
            return 0.0
        return float(np.linalg.norm(inter) / sn_norm)
