"""Deployment platform configurations.

The paper evaluates SushiAccel on a Xilinx ZCU104 (embedded, 5 W), an Alveo
U50 (data-center, 75 W), against an Intel i7-10750H CPU and the Xilinx DPU,
plus an "analytic model" configuration (19.2 GB/s, 1.296 TFLOPS @ 100 MHz)
used for the roofline and DSE studies.  Each configuration pins down the
compute-array parallelism, clock, off-chip bandwidth, on-chip buffer budget
and energy coefficients the analytic model needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Typical off-chip DRAM access energy per byte (pJ).  Absolute values only
#: scale the energy axis; all paper comparisons are relative (w/ PB vs w/o).
DEFAULT_DRAM_PJ_PER_BYTE: float = 160.0

#: Typical on-chip SRAM (BRAM/URAM) access energy per byte (pJ).
DEFAULT_SRAM_PJ_PER_BYTE: float = 1.5


@dataclass(frozen=True)
class PlatformConfig:
    """Everything the analytic model needs to know about a deployment target.

    Attributes
    ----------
    name:
        Human-readable platform name.
    clock_mhz:
        Accelerator clock.
    kp, cp:
        Kernel-level and channel-level parallelism of the DPE array
        (``KP x CP`` DPEs of 9 multipliers each).
    dpe_size:
        Multipliers per DPE (the paper uses fixed-size 9).
    off_chip_bandwidth_gbps:
        Off-chip DRAM bandwidth in GB/s.
    on_chip_bandwidth_bytes_per_cycle:
        Aggregate read bandwidth of the on-chip buffers feeding the array.
    total_buffer_kb:
        Total on-chip storage budget (BRAM + URAM) in KB.
    pb_kb:
        Persistent Buffer capacity in KB (0 disables SGS caching).
    dram_pj_per_byte, sram_pj_per_byte:
        Energy coefficients for off-chip / on-chip accesses.
    board_power_w:
        Nominal board power (reporting only).
    """

    name: str
    clock_mhz: float
    kp: int
    cp: int
    dpe_size: int = 9
    off_chip_bandwidth_gbps: float = 19.2
    on_chip_bandwidth_bytes_per_cycle: float = 512.0
    total_buffer_kb: float = 3853.0
    pb_kb: float = 0.0
    dram_pj_per_byte: float = DEFAULT_DRAM_PJ_PER_BYTE
    sram_pj_per_byte: float = DEFAULT_SRAM_PJ_PER_BYTE
    board_power_w: float = 0.0
    dram_contention_factor: float = 1.0
    query_overhead_cycles: float = 2_000.0

    def __post_init__(self) -> None:
        if self.dram_contention_factor < 1.0:
            raise ValueError(f"{self.name}: dram_contention_factor must be >= 1")
        if self.query_overhead_cycles < 0:
            raise ValueError(f"{self.name}: query_overhead_cycles must be >= 0")
        if self.clock_mhz <= 0:
            raise ValueError(f"{self.name}: clock must be positive")
        if self.kp <= 0 or self.cp <= 0 or self.dpe_size <= 0:
            raise ValueError(f"{self.name}: DPE array dimensions must be positive")
        if self.off_chip_bandwidth_gbps <= 0:
            raise ValueError(f"{self.name}: off-chip bandwidth must be positive")
        if self.pb_kb < 0 or self.total_buffer_kb <= 0:
            raise ValueError(f"{self.name}: buffer sizes must be non-negative")
        if self.pb_kb > self.total_buffer_kb:
            raise ValueError(
                f"{self.name}: PB ({self.pb_kb} KB) cannot exceed the total "
                f"on-chip budget ({self.total_buffer_kb} KB)"
            )

    # ------------------------------------------------------------ derived
    @property
    def macs_per_cycle(self) -> int:
        """Peak multiply-accumulates per cycle of the DPE array."""
        return self.kp * self.cp * self.dpe_size

    @property
    def peak_gflops(self) -> float:
        """Peak throughput in GFLOPS (2 ops per MAC)."""
        return 2.0 * self.macs_per_cycle * self.clock_mhz / 1e3

    @property
    def peak_tflops(self) -> float:
        return self.peak_gflops / 1e3

    @property
    def cycles_per_second(self) -> float:
        return self.clock_mhz * 1e6

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Nominal bandwidth divided by the DRAM contention factor.

        The Alveo U50 sits in a data-center host whose DRAM is shared with
        other tenants; the paper attributes its poor small-SubNet latency to
        this competition (Section 5.4.2).
        """
        return self.off_chip_bandwidth_gbps / self.dram_contention_factor

    @property
    def off_chip_bytes_per_cycle(self) -> float:
        """Off-chip bandwidth expressed per accelerator clock cycle."""
        return self.effective_bandwidth_gbps * 1e9 / self.cycles_per_second

    @property
    def pb_bytes(self) -> int:
        return int(self.pb_kb * 1024)

    @property
    def has_pb(self) -> bool:
        return self.pb_kb > 0

    # ------------------------------------------------------------ variants
    def without_pb(self) -> "PlatformConfig":
        """The same platform with the Persistent Buffer disabled.

        The freed storage is *not* handed to the other buffers: the paper's
        w/-vs-w/o-PB comparison keeps total on-chip storage equal (Tab. 3),
        so only the SGS capability changes.
        """
        return replace(self, name=f"{self.name}-noPB", pb_kb=0.0)

    def with_pb(self, pb_kb: float) -> "PlatformConfig":
        """The same platform with a differently sized Persistent Buffer."""
        return replace(self, pb_kb=pb_kb)

    def scaled(
        self,
        *,
        bandwidth_gbps: float | None = None,
        kp: int | None = None,
        cp: int | None = None,
        name: str | None = None,
    ) -> "PlatformConfig":
        """Variant with different bandwidth / parallelism (used by the DSE)."""
        return replace(
            self,
            name=name or self.name,
            off_chip_bandwidth_gbps=bandwidth_gbps or self.off_chip_bandwidth_gbps,
            kp=kp or self.kp,
            cp=cp or self.cp,
        )


#: The analytic-model configuration of Section 5.2: 19.2 GB/s off-chip
#: bandwidth and 1.296 TFLOPS at 100 MHz (KP x CP x 9 = 6480 MACs/cycle).
ANALYTIC_DEFAULT = PlatformConfig(
    name="analytic-default",
    clock_mhz=100.0,
    kp=24,
    cp=30,
    off_chip_bandwidth_gbps=19.2,
    total_buffer_kb=3853.0,
    pb_kb=1728.0,
)

#: ZCU104 embedded board (Tab. 2/3): 259.2 GFLOPS (2592 ops/cycle) at 100 MHz,
#: 397 KB BRAM + 3456 KB URAM on-chip storage, 1728 KB of URAM as PB.
ZCU104 = PlatformConfig(
    name="zcu104",
    clock_mhz=100.0,
    kp=16,
    cp=9,
    off_chip_bandwidth_gbps=19.2,
    total_buffer_kb=397.0 + 3456.0,
    pb_kb=1728.0,
    board_power_w=5.0,
)

#: Alveo U50 (Section 5.4): 921.6 GFLOPS (9216 ops/cycle), 14.4 GB/s nominal
#: off-chip bandwidth, 1.69 MB PB.  The board lives in a data-center host
#: whose DRAM is shared, so the effective bandwidth it sees is much lower
#: (``dram_contention_factor``) and every query pays a PCIe round-trip —
#: which is why it loses to the ZCU104 on small SubNets (Fig. 13a).
ALVEO_U50 = PlatformConfig(
    name="alveo-u50",
    clock_mhz=100.0,
    kp=32,
    cp=16,
    off_chip_bandwidth_gbps=14.4,
    total_buffer_kb=8192.0,
    pb_kb=1730.0,
    board_power_w=75.0,
    dram_contention_factor=8.0,
    query_overhead_cycles=200_000.0,
)

#: Intel i7-10750H laptop CPU baseline (45 W).  Parameters are consumed by
#: :class:`repro.accelerator.cpu_model.CPUModel`, which interprets kp/cp as
#: SIMD lanes x cores; they are chosen so the CPU lands 1.4-3.2x slower than
#: SushiAccel, matching the paper's Fig. 13a speedup range.
CPU_I7_10750H = PlatformConfig(
    name="cpu-i7-10750h",
    clock_mhz=2600.0,
    kp=6,
    cp=4,
    dpe_size=4,
    off_chip_bandwidth_gbps=41.8,
    total_buffer_kb=12288.0,
    pb_kb=0.0,
    board_power_w=45.0,
)

#: Xilinx DPU (DPUCZDX8G on ZCU104, Tab. 2): 2304 ops/cycle (1152 MACs/cycle),
#: no PB.  Consumed by :class:`repro.accelerator.dpu_model.XilinxDPUModel`.
XILINX_DPU_ZCU104 = PlatformConfig(
    name="xilinx-dpu-zcu104",
    clock_mhz=100.0,
    kp=12,
    cp=8,
    dpe_size=12,
    off_chip_bandwidth_gbps=19.2,
    total_buffer_kb=2048.0,
    pb_kb=0.0,
    board_power_w=5.0,
)

_ALL_PLATFORMS: dict[str, PlatformConfig] = {
    p.name: p
    for p in (ANALYTIC_DEFAULT, ZCU104, ALVEO_U50, CPU_I7_10750H, XILINX_DPU_ZCU104)
}


def platform_by_name(name: str) -> PlatformConfig:
    """Look up a predefined platform configuration by name."""
    try:
        return _ALL_PLATFORMS[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown platform {name!r}; available: {sorted(_ALL_PLATFORMS)}"
        ) from exc
