"""FPGA resource estimation (Tables 2 and 3 of the paper).

The paper reports post-implementation LUT / register / BRAM / URAM / DSP
utilization of SushiAccel with and without the Persistent Buffer on ZCU104
and Alveo U50.  This module provides a parametric estimator driven by the
architectural knobs (DPE array size, buffer capacities) with per-unit cost
constants calibrated so the paper's configurations reproduce Table 2's
numbers to within a few percent.  It exists purely to regenerate the tables;
no serving result depends on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accelerator.buffers import BufferHierarchy, default_hierarchy
from repro.accelerator.dpe import DPEArrayConfig
from repro.accelerator.platforms import ALVEO_U50, ZCU104, PlatformConfig

#: Device resource totals used for utilization percentages.
DEVICE_TOTALS: dict[str, dict[str, float]] = {
    "zcu104": {"LUT": 230400, "Register": 460800, "BRAM": 312, "URAM": 96, "DSP": 1728},
    "alveo-u50": {"LUT": 870000, "Register": 1743000, "BRAM": 1344, "URAM": 640, "DSP": 5952},
}

# Per-unit cost constants (calibrated against Table 2).
_LUT_PER_MAC = 22.0
_LUT_PER_BUFFER_KB = 2.1
_LUT_BASE = 26000.0
_REG_PER_MAC = 40.0
_REG_PER_BUFFER_KB = 3.0
_REG_BASE = 44000.0
_DSP_PER_MAC = 1.0
_DSP_BASE = 60.0
_BRAM_KB = 4.5       # one 36Kb BRAM holds 4.5 KB
_URAM_KB = 36.0      # one URAM holds 36 KB
_PB_LUT_OVERHEAD = 3100.0   # PB addressing / crossbar logic
_PB_REG_OVERHEAD = 10500.0


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated FPGA resource usage of one accelerator configuration."""

    platform_name: str
    lut: int
    register: int
    bram: float
    uram: int
    dsp: int
    peak_ops_per_cycle: int
    gflops_100mhz: float

    def utilization(self) -> dict[str, float]:
        """Fractional device utilization per resource type."""
        totals = DEVICE_TOTALS.get(self.platform_name)
        if totals is None:
            raise ValueError(f"no device totals known for {self.platform_name!r}")
        return {
            "LUT": self.lut / totals["LUT"],
            "Register": self.register / totals["Register"],
            "BRAM": self.bram / totals["BRAM"],
            "URAM": self.uram / totals["URAM"],
            "DSP": self.dsp / totals["DSP"],
        }

    def as_row(self) -> dict[str, float]:
        return {
            "LUT": self.lut,
            "Register": self.register,
            "BRAM": self.bram,
            "URAM": self.uram,
            "DSP": self.dsp,
            "PeakOps/cycle": self.peak_ops_per_cycle,
            "GFlops(100MHz)": self.gflops_100mhz,
        }


def _buffer_to_bram_uram(hierarchy: BufferHierarchy, *, with_pb: bool) -> tuple[float, int]:
    """Map buffer capacities onto BRAM (small buffers) and URAM (large buffers).

    Following Table 3: LB/OB/ZSB plus a slice of SB live in BRAM; the
    ping-pong DBs, the bulk of SB and the PB live in URAM.
    """
    bram_kb = (
        hierarchy["LB"].capacity_kb
        + hierarchy["OB"].capacity_kb
        + hierarchy["ZSB"].capacity_kb
        + 8.0  # SB staging slice
    )
    uram_kb = (
        hierarchy["DB-Ping"].capacity_kb
        + hierarchy["DB-Pong"].capacity_kb
        + max(0.0, hierarchy["SB"].capacity_kb - 8.0)
        + (hierarchy["PB"].capacity_kb if with_pb else 0.0)
    )
    bram = bram_kb / _BRAM_KB
    uram = math.ceil(uram_kb / _URAM_KB)
    return bram, uram


def estimate_resources(
    platform: PlatformConfig,
    *,
    with_pb: bool | None = None,
) -> ResourceEstimate:
    """Estimate FPGA resources for SushiAccel on ``platform``."""
    use_pb = platform.has_pb if with_pb is None else with_pb
    dpe = DPEArrayConfig(kp=platform.kp, cp=platform.cp, dpe_size=platform.dpe_size)
    hierarchy = default_hierarchy(platform, dpe, with_pb=use_pb)
    macs = dpe.macs_per_cycle
    total_buffer_kb = hierarchy.total_kb

    lut = _LUT_BASE + _LUT_PER_MAC * macs + _LUT_PER_BUFFER_KB * total_buffer_kb
    reg = _REG_BASE + _REG_PER_MAC * macs + _REG_PER_BUFFER_KB * total_buffer_kb
    if use_pb:
        lut += _PB_LUT_OVERHEAD
        reg += _PB_REG_OVERHEAD
    dsp = _DSP_BASE + _DSP_PER_MAC * macs
    bram, uram = _buffer_to_bram_uram(hierarchy, with_pb=use_pb)

    peak_ops = 2 * macs
    return ResourceEstimate(
        platform_name=platform.name,
        lut=int(round(lut)),
        register=int(round(reg)),
        bram=round(bram, 1),
        uram=int(uram),
        dsp=int(round(dsp)),
        peak_ops_per_cycle=peak_ops,
        gflops_100mhz=peak_ops * 100.0 / 1e3,
    )


def buffer_allocation_table(platform: PlatformConfig = ZCU104) -> dict[str, dict[str, float]]:
    """Reproduce Table 3: per-buffer KB allocation with and without the PB."""
    dpe = DPEArrayConfig(kp=platform.kp, cp=platform.cp, dpe_size=platform.dpe_size)
    with_pb = default_hierarchy(platform, dpe, with_pb=True).summary()
    without_pb = default_hierarchy(platform, dpe, with_pb=False).summary()
    return {"with_pb_kb": with_pb, "without_pb_kb": without_pb}


def resource_comparison_table() -> dict[str, dict[str, float]]:
    """Reproduce Table 2: resources of SushiAccel w/ and w/o PB on both boards."""
    rows: dict[str, dict[str, float]] = {}
    for platform in (ZCU104, ALVEO_U50):
        for with_pb in (False, True):
            suffix = "w/ PB" if with_pb else "w/o PB"
            est = estimate_resources(platform, with_pb=with_pb)
            rows[f"SushiAccel {suffix} ({platform.name})"] = est.as_row()
    return rows
