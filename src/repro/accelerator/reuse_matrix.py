"""Data-reuse comparison against prior accelerators (Table 4).

A qualitative matrix recording which reuse opportunities each accelerator
exploits: iAct reuse (sliding-window + multi-kernel), oAct (partial-sum)
reuse, weight reuse across iAct tiles, and — unique to SUSHI — cross-query
SubGraph reuse (spatial and temporal).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReuseSupport:
    """Reuse capabilities of one accelerator design."""

    name: str
    iact_reuse: bool
    oact_reuse: bool
    weight_reuse: bool
    subgraph_reuse_spatial: bool
    subgraph_reuse_temporal: bool

    def as_row(self) -> dict[str, str]:
        def mark(flag: bool) -> str:
            return "yes" if flag else "no"

        return {
            "iActs Reuse": mark(self.iact_reuse),
            "oAct Reuse (Partial Sum)": mark(self.oact_reuse),
            "Weights Reuse (iAct Tiling)": mark(self.weight_reuse),
            "SubGraph Reuse (spatial)": mark(self.subgraph_reuse_spatial),
            "SubGraph Reuse (temporal)": mark(self.subgraph_reuse_temporal),
        }


#: Table 4 of the paper, row by row.
REUSE_COMPARISON: tuple[ReuseSupport, ...] = (
    ReuseSupport("MAERI", iact_reuse=True, oact_reuse=False, weight_reuse=True,
                 subgraph_reuse_spatial=False, subgraph_reuse_temporal=False),
    ReuseSupport("NVDLA", iact_reuse=False, oact_reuse=True, weight_reuse=True,
                 subgraph_reuse_spatial=False, subgraph_reuse_temporal=False),
    ReuseSupport("Eyeriss", iact_reuse=True, oact_reuse=False, weight_reuse=True,
                 subgraph_reuse_spatial=False, subgraph_reuse_temporal=False),
    ReuseSupport("Xilinx DPU", iact_reuse=True, oact_reuse=True, weight_reuse=True,
                 subgraph_reuse_spatial=False, subgraph_reuse_temporal=False),
    ReuseSupport("SUSHI", iact_reuse=True, oact_reuse=True, weight_reuse=True,
                 subgraph_reuse_spatial=True, subgraph_reuse_temporal=True),
)


def reuse_comparison_table() -> dict[str, dict[str, str]]:
    """Table 4 as a nested dict keyed by accelerator name."""
    return {entry.name: entry.as_row() for entry in REUSE_COMPARISON}
