"""Roofline analysis, including the SGS-improved roofline (Fig. 11).

The classic roofline bounds attainable throughput by
``min(peak_flops, arithmetic_intensity x off_chip_bandwidth)``.  SubGraph
Stationary caching removes cached weight bytes from off-chip traffic, which
*raises the arithmetic intensity* of served SubNets; equivalently (the view
the paper plots) it virtually improves the off-chip bandwidth, lifting the
sloped part of the roofline.  This module computes both rooflines and the
per-SubNet operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.accelerator.platforms import PlatformConfig
from repro.supernet.subnet import SubNet


@dataclass(frozen=True)
class RooflinePoint:
    """One SubNet's operating point on the roofline plot."""

    label: str
    arithmetic_intensity: float
    attainable_tflops: float
    is_compute_bound: bool


class RooflineModel:
    """Roofline calculator for a platform, with optional SGS bandwidth boost."""

    def __init__(self, platform: PlatformConfig) -> None:
        self.platform = platform

    # ------------------------------------------------------------- curves
    @property
    def peak_tflops(self) -> float:
        return self.platform.peak_tflops

    @property
    def bandwidth_gbps(self) -> float:
        return self.platform.off_chip_bandwidth_gbps

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (FLOPs/byte) where the roofline flattens."""
        return self.peak_tflops * 1e12 / (self.bandwidth_gbps * 1e9)

    def attainable_tflops(self, arithmetic_intensity: float, *, bandwidth_gbps: float | None = None) -> float:
        """Attainable TFLOPS at a given arithmetic intensity."""
        bw = self.bandwidth_gbps if bandwidth_gbps is None else bandwidth_gbps
        if arithmetic_intensity <= 0:
            return 0.0
        memory_bound = arithmetic_intensity * bw * 1e9 / 1e12
        return min(self.peak_tflops, memory_bound)

    def curve(
        self, intensities: Sequence[float], *, bandwidth_gbps: float | None = None
    ) -> np.ndarray:
        """Attainable TFLOPS over a grid of arithmetic intensities."""
        return np.array(
            [self.attainable_tflops(ai, bandwidth_gbps=bandwidth_gbps) for ai in intensities]
        )

    # ------------------------------------------------------------- points
    @staticmethod
    def subnet_intensity(subnet: SubNet, cached: CachedSubGraph | None = None) -> float:
        """End-to-end FLOPs/byte of a SubNet, with optional SGS caching.

        Off-chip bytes = (weights - cached) + iActs + oActs across all layers.
        """
        cached_per_layer = (
            cached.overlap_bytes_per_layer(subnet) if cached is not None else {}
        )
        flops = 0.0
        bytes_moved = 0.0
        for sl, layer in zip(subnet.ordered_slices, subnet.active_layers()):
            flops += layer.flops
            cached_bytes = min(cached_per_layer.get(sl.layer.name, 0), layer.weight_bytes)
            bytes_moved += (
                layer.weight_bytes - cached_bytes + layer.input_act_bytes + layer.output_act_bytes
            )
        if bytes_moved <= 0:
            return float("inf")
        return flops / bytes_moved

    def effective_bandwidth_gbps(
        self, subnet: SubNet, cached: CachedSubGraph | None
    ) -> float:
        """SGS roofline view: the bandwidth the workload *appears* to enjoy.

        Saving ``s`` of the off-chip bytes at fixed work is equivalent to a
        ``1 / (1 - s)`` bandwidth improvement.
        """
        if cached is None:
            return self.bandwidth_gbps
        base_ai = self.subnet_intensity(subnet, None)
        sgs_ai = self.subnet_intensity(subnet, cached)
        if base_ai <= 0 or not np.isfinite(sgs_ai):
            return self.bandwidth_gbps
        return self.bandwidth_gbps * (sgs_ai / base_ai)

    def subnet_point(
        self,
        subnet: SubNet,
        cached: CachedSubGraph | None = None,
        *,
        label: str | None = None,
    ) -> RooflinePoint:
        """Operating point of a SubNet (optionally with a cached SubGraph)."""
        ai = self.subnet_intensity(subnet, cached)
        tflops = self.attainable_tflops(ai)
        return RooflinePoint(
            label=label or subnet.name,
            arithmetic_intensity=ai,
            attainable_tflops=tflops,
            is_compute_bound=ai >= self.ridge_point,
        )

    def family_points(
        self,
        subnets: Sequence[SubNet],
        cached: CachedSubGraph | None = None,
    ) -> list[RooflinePoint]:
        """Roofline points for a family of SubNets (Fig. 11 blue/red dots)."""
        return [self.subnet_point(sn, cached) for sn in subnets]
