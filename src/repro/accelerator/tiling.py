"""Weight-tile decomposition.

SushiAccel processes each convolution at the granularity of *weight tiles*: a
tile holds ``KP`` kernels x ``CP`` input channels x one 3x3 kernel window —
exactly what the DPE array consumes while a tile's distinct weights for the
*next* tile are pre-fetched into the other half of the ping-pong Dynamic
Buffer (Fig. 9b).  Tile geometry therefore determines how much off-chip weight
latency can be hidden and what the non-hideable prologue (the first tile) is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.accelerator.dpe import DPEArrayConfig
from repro.supernet.layers import ConvLayerSpec, LayerKind


@dataclass(frozen=True)
class WeightTile:
    """Geometry of the weight tiles a layer is decomposed into.

    Attributes
    ----------
    kernels, channels:
        Kernels / input channels covered by one tile.
    tile_bytes:
        Weight bytes per (full) tile.
    num_tiles:
        Number of tiles needed to cover the whole layer.
    """

    kernels: int
    channels: int
    tile_bytes: int
    num_tiles: int

    @property
    def total_bytes(self) -> int:
        """Upper bound of bytes across all tiles (last tiles may be partial)."""
        return self.tile_bytes * self.num_tiles


def tile_layer(
    layer: ConvLayerSpec, dpe: DPEArrayConfig, *, db_capacity_bytes: int | None = None
) -> WeightTile:
    """Decompose a layer's weights into DPE-array-sized tiles.

    Parameters
    ----------
    layer:
        The layer (at its activated channel counts).
    dpe:
        The DPE array geometry.
    db_capacity_bytes:
        Capacity of one Dynamic Buffer half; when provided, tiles are shrunk
        (by covering fewer kernels) until a tile fits, mirroring how the real
        controller splits oversized tiles.
    """
    if layer.kind == LayerKind.POOL:
        return WeightTile(kernels=0, channels=0, tile_bytes=0, num_tiles=0)

    kernels = min(dpe.kp, layer.out_channels)
    if layer.kind == LayerKind.DEPTHWISE_CONV:
        channels = 1
        weights_per_kernel = layer.kernel_size**2
    elif layer.kind == LayerKind.LINEAR or layer.kernel_size == 1:
        channels = min(dpe.cp * dpe.dpe_size, layer.in_channels)
        weights_per_kernel = channels
    else:
        channels = min(dpe.cp, layer.in_channels // layer.groups)
        weights_per_kernel = channels * layer.kernel_size**2

    tile_bytes = math.ceil(kernels * weights_per_kernel * layer.weight_bits / 8)

    if db_capacity_bytes is not None and db_capacity_bytes > 0:
        while tile_bytes > db_capacity_bytes and kernels > 1:
            kernels = max(1, kernels // 2)
            tile_bytes = math.ceil(kernels * weights_per_kernel * layer.weight_bits / 8)

    if layer.kind == LayerKind.DEPTHWISE_CONV:
        kernel_passes = math.ceil(layer.out_channels / max(1, kernels))
        channel_passes = 1
    else:
        per_group_in = (
            layer.in_channels
            if layer.kind == LayerKind.LINEAR
            else layer.in_channels // layer.groups
        )
        kernel_passes = math.ceil(layer.out_channels / max(1, kernels))
        channel_passes = math.ceil(per_group_in / max(1, channels))
    num_tiles = max(1, kernel_passes * channel_passes)

    return WeightTile(
        kernels=kernels,
        channels=channels,
        tile_bytes=tile_bytes,
        num_tiles=num_tiles,
    )


def first_tile_bytes(layer: ConvLayerSpec, dpe: DPEArrayConfig) -> int:
    """Bytes of the first weight tile — the non-hideable fetch prologue."""
    tile = tile_layer(layer, dpe)
    if tile.num_tiles == 0:
        return 0
    return min(tile.tile_bytes, layer.weight_bytes)
