"""Analysis utilities: arithmetic intensity, comparisons and report formatting."""

from repro.analysis.arithmetic_intensity import (
    layer_arithmetic_intensities,
    subnet_arithmetic_intensity_series,
)
from repro.analysis.comparison import geometric_mean_speedup, speedup_series
from repro.analysis.reporting import format_table, format_series, format_kv

__all__ = [
    "layer_arithmetic_intensities",
    "subnet_arithmetic_intensity_series",
    "geometric_mean_speedup",
    "speedup_series",
    "format_table",
    "format_series",
    "format_kv",
]
