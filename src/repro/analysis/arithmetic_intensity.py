"""Per-layer arithmetic intensity (Fig. 2 of the paper).

Arithmetic intensity (FLOPs per byte of off-chip traffic) determines whether
a layer is compute- or memory-bound on a given platform; the paper's Fig. 2
shows that many of MobileNetV3's and ResNet50's later layers have low
intensity, motivating SubGraph Stationary caching.
"""

from __future__ import annotations

from typing import Sequence

from repro.supernet.layers import ConvLayerSpec
from repro.supernet.subnet import SubNet


def layer_arithmetic_intensities(
    layers: Sequence[ConvLayerSpec], *, cached_weight_bytes: int = 0
) -> list[float]:
    """Arithmetic intensity of each layer, in order.

    ``cached_weight_bytes`` (per layer, clamped) models the SGS effect of
    removing cached weights from the off-chip byte count.
    """
    return [
        layer.arithmetic_intensity(cached_weight_bytes=cached_weight_bytes)
        for layer in layers
    ]


def subnet_arithmetic_intensity_series(
    subnet: SubNet, *, conv_only: bool = True
) -> tuple[list[int], list[float]]:
    """(layer ids, arithmetic intensities) for a SubNet — the Fig. 2 series.

    ``conv_only`` restricts the series to convolution layers (the figure plots
    convolutions; the classifier's intensity is trivially low).
    """
    ids: list[int] = []
    values: list[float] = []
    for i, layer in enumerate(subnet.active_layers()):
        if conv_only and not layer.kind.is_conv():
            continue
        ids.append(i)
        values.append(layer.arithmetic_intensity())
    return ids, values
