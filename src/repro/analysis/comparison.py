"""Speedup comparisons (geometric means, per-layer series) used by Fig. 13/14."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def speedup_series(
    baseline_latencies: Sequence[float], candidate_latencies: Sequence[float]
) -> list[float]:
    """Per-item speedup of ``candidate`` over ``baseline`` (>1 means faster)."""
    if len(baseline_latencies) != len(candidate_latencies):
        raise ValueError("latency series must have equal length")
    speedups = []
    for base, cand in zip(baseline_latencies, candidate_latencies):
        if base <= 0 or cand <= 0:
            raise ValueError("latencies must be positive")
        speedups.append(base / cand)
    return speedups


def geometric_mean_speedup(
    baseline_latencies: Sequence[float], candidate_latencies: Sequence[float]
) -> float:
    """Geometric-mean speedup (the paper's 25.1 % number is geomean - 1)."""
    speedups = speedup_series(baseline_latencies, candidate_latencies)
    return float(np.exp(np.mean(np.log(speedups))))
