"""Plain-text report formatting for experiment outputs.

Every experiment driver prints its reproduced table/figure data through these
helpers so the benchmark harness output is easy to diff against the paper.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Mapping[str, Mapping[str, object]],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render a nested dict ``{row: {column: value}}`` as an aligned text table."""
    if not rows:
        return title or ""
    columns: list[str] = []
    for row in rows.values():
        for col in row:
            if col not in columns:
                columns.append(col)
    header = ["", *columns]
    body = [
        [name, *(_format_value(row.get(col, ""), precision) for col in columns)]
        for name, row in rows.items()
    ]
    widths = [
        max(len(line[i]) for line in [header, *body]) for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence[object],
    y: Sequence[object],
    *,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render paired series as two aligned columns (figure data dumps)."""
    if len(x) != len(y):
        raise ValueError("series must have equal length")
    rows = {
        f"{x_label}={_format_value(xi, precision)}": {y_label: yi}
        for xi, yi in zip(x, y)
    }
    return format_table(rows, title=title, precision=precision)


def format_kv(values: Mapping[str, object], *, title: str | None = None, precision: int = 3) -> str:
    """Render a flat key/value mapping, one pair per line."""
    width = max((len(k) for k in values), default=0)
    lines = [title] if title else []
    for key, value in values.items():
        lines.append(f"{key.ljust(width)}  {_format_value(value, precision)}")
    return "\n".join(lines)
