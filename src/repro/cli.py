"""``repro`` command line: list/run experiments, serve declarative scenarios.

Five subcommands make every artifact in the experiment registry and every
serving scenario reproducible from one command line::

    python -m repro list
    python -m repro run fig15
    python -m repro run frontier_autoscale --json frontier.json
    python -m repro serve --scenario examples/scenarios/hetero_pool.json \
        --override arrivals.seed=7 --override replica_groups.0.count=4
    python -m repro schema
    python -m repro lint --format json src

``serve`` loads a :class:`~repro.serving.spec.ScenarioSpec` from JSON,
applies any ``--override key=value`` pairs (dotted paths into the serialized
spec; values are parsed as JSON, falling back to strings) and prints the
result summary.  ``--dump-spec`` echoes the effective spec after overrides,
so a tweaked scenario can be piped back into a file.  ``run --json FILE``
additionally dumps the experiment result as JSON (drivers may provide a
curated ``to_jsonable``; anything else is converted field by field) — CI
uploads these as workflow artifacts.  ``run --profile FILE`` wraps the run
in cProfile, dumps the pstats data to ``FILE`` and prints the top 10
functions by cumulative time.  ``schema`` prints the scenario JSON
reference — every field's default and every closed enum — straight from the
dataclasses (:func:`repro.serving.spec.scenario_schema`), so it can never
drift from the code; the prose companion is ``docs/scenario-schema.md``.
``lint`` runs the AST-based invariant linter (codes RPR001–RPR005; see
``docs/invariants.md``) over ``src/`` by default and exits nonzero on any
violation — CI runs it in the ``static-analysis`` job.  ``sweep`` expands a
declarative grid spec (base scenario × override axes; see
:mod:`repro.sweep`) and runs every cell — ``--workers N`` fans cells out
over forked processes — merging the results into JSON/CSV artifacts that
are byte-identical regardless of the worker count.  ``trace fit`` estimates
a piecewise-Poisson + burst model from a recorded request log
(CSV/JSONL; see :mod:`repro.serving.trace_io`) and emits a shareable
synthetic ``ArrivalSpec`` recipe.

Observability (see ``docs/observability.md``): ``serve --trace FILE``
attaches the flight recorder and writes a Chrome trace-event JSON
(Perfetto-loadable); ``--metrics FILE`` writes a metrics timeseries (CSV
or JSON by extension).  ``run --trace/--metrics`` does the same for
experiments that expose a ``trace_scenario()`` hook.  ``trace summarize
FILE`` prints a text summary of an exported trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro._version import __version__


def _parse_override(text: str) -> tuple[str, object]:
    """Split ``key.path=value``; parse the value as JSON when possible."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"override {text!r} must look like key.path=value"
        )
    try:
        value: object = json.loads(raw)
    except json.JSONDecodeError:
        value = raw  # bare strings (e.g. pattern=bursty) need no quotes
    return key, value


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS

    width = max(len(eid) for eid in EXPERIMENTS)
    print(f"{len(EXPERIMENTS)} experiments:")
    for eid in sorted(EXPERIMENTS):
        print(f"  {eid.ljust(width)}  {EXPERIMENTS[eid].description}")
    return 0


def _jsonable(value: object) -> object:
    """Best-effort conversion of an experiment result to JSON-safe types."""
    import dataclasses
    import enum

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _observed_spec(spec, *, want_trace: bool, want_metrics: bool):  # type: ignore[no-untyped-def]
    """The spec with observability forced on for the requested exports."""
    import dataclasses

    from repro.serving.spec import ObservabilitySpec

    if not (want_trace or want_metrics):
        return spec
    current = spec.observability
    # Metrics export needs the recorder too: without an autoscaler there is
    # no snapshot history, so the timeseries is derived from the trace.
    observability = ObservabilitySpec(
        trace=True,
        keep_metrics=want_metrics
        or (current.keep_metrics if current is not None else False),
        metrics_interval_ms=(
            current.metrics_interval_ms if current is not None else None
        ),
    )
    return dataclasses.replace(spec, observability=observability)


def _write_observability(result, spec, *, trace_path, metrics_path) -> int:  # type: ignore[no-untyped-def]
    """Export the run's recorded trace / metrics timeseries to files."""
    from repro.serving.obs import (
        metrics_rows,
        snapshot_rows,
        write_chrome_trace,
        write_metrics,
    )

    interval = None
    if spec.observability is not None:
        interval = spec.observability.metrics_interval_ms
    try:
        if trace_path:
            write_chrome_trace(trace_path, result.trace)
            print(f"wrote {trace_path}")
        if metrics_path:
            # Prefer the autoscaler's own snapshot history (the policy's
            # actual inputs); static pools fall back to trace-derived rows.
            rows = (
                snapshot_rows(result.metrics)
                if result.metrics
                else metrics_rows(result.trace, interval_ms=interval)
            )
            write_metrics(metrics_path, rows)
            print(f"wrote {metrics_path}")
    except OSError as exc:
        path = trace_path or metrics_path
        print(f"cannot write {path}: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.registry import get_experiment

    try:
        experiment = get_experiment(args.experiment_id)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = experiment.run()
        finally:
            profiler.disable()
        try:
            profiler.dump_stats(args.profile)
        except OSError as exc:
            print(f"cannot write {args.profile}: {exc}", file=sys.stderr)
            return 2
        print(experiment.report(result))
        print(f"\nprofile written to {args.profile}; top 10 by cumulative time:")
        pstats.Stats(profiler, stream=sys.stdout).sort_stats(
            "cumulative"
        ).print_stats(10)
    else:
        result = experiment.run()
        print(experiment.report(result))
    if args.json:
        # Drivers may provide a curated dump; anything else is converted
        # field by field (CI uploads these files as workflow artifacts).
        to_jsonable = getattr(experiment.module, "to_jsonable", _jsonable)
        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(to_jsonable(result), fh, indent=2)
        except OSError as exc:
            print(f"cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.json}")
    if args.trace or args.metrics:
        # Experiments opt into tracing by exposing a trace_scenario() hook
        # returning the representative ScenarioSpec to record.
        trace_scenario = getattr(experiment.module, "trace_scenario", None)
        if trace_scenario is None:
            print(
                f"experiment {args.experiment_id!r} has no trace_scenario() "
                "hook; --trace/--metrics are unavailable for it",
                file=sys.stderr,
            )
            return 2
        from repro.serving.api import run_scenario

        spec = _observed_spec(
            trace_scenario(),
            want_trace=bool(args.trace),
            want_metrics=bool(args.metrics),
        )
        traced = run_scenario(spec)
        return _write_observability(
            traced, spec, trace_path=args.trace, metrics_path=args.metrics
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving.api import format_result_summary, run_scenario
    from repro.serving.spec import ScenarioSpec

    try:
        with open(args.scenario, "r", encoding="utf-8") as fh:
            spec = ScenarioSpec.from_dict(json.load(fh))
        # All overrides apply atomically (one re-validation at the end), so
        # interdependent fields — e.g. autoscaler.policy=scheduled plus its
        # autoscaler.schedule — can be overridden together.
        spec = spec.override_many(args.override or ())
    except (OSError, IndexError, KeyError, TypeError, ValueError) as exc:
        print(f"invalid scenario: {exc}", file=sys.stderr)
        return 2
    if args.dump_spec:
        print(spec.to_json())
        return 0
    spec = _observed_spec(
        spec, want_trace=bool(args.trace), want_metrics=bool(args.metrics)
    )
    result = run_scenario(spec)
    print(format_result_summary(spec, result))
    if args.trace or args.metrics:
        return _write_observability(
            result, spec, trace_path=args.trace, metrics_path=args.metrics
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepSpec, format_sweep_summary, run_sweep

    try:
        with open(args.spec, "r", encoding="utf-8") as fh:
            spec = SweepSpec.from_dict(json.load(fh))
        if args.override:
            # Overrides tweak the *base* scenario; every grid cell starts
            # from the tweaked base.
            spec = SweepSpec(
                base=spec.base.override_many(args.override),
                axes=spec.axes,
                name=spec.name,
            )
    except (OSError, IndexError, KeyError, TypeError, ValueError) as exc:
        print(f"invalid sweep spec: {exc}", file=sys.stderr)
        return 2
    result = run_sweep(spec, workers=args.workers)
    print(format_sweep_summary(result))
    try:
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(result.to_json() + "\n")
            print(f"wrote {args.json}")
        if args.csv:
            with open(args.csv, "w", encoding="utf-8", newline="") as fh:
                fh.write(result.to_csv())
            print(f"wrote {args.csv}")
    except OSError as exc:
        print(f"cannot write sweep artifact: {exc}", file=sys.stderr)
        return 2
    # Failed cells are reported per cell above; the exit code makes them
    # visible to CI without hiding the healthy cells' results.
    return 1 if result.num_failed else 0


def _cmd_trace_fit(args: argparse.Namespace) -> int:
    from repro.serving.trace_io import fit_piecewise_poisson, load_trace_log

    try:
        log = load_trace_log(args.log, limit=args.limit)
        fit = fit_piecewise_poisson(
            log.timestamps_ms, max_segments=args.max_segments
        )
    except (OSError, ValueError) as exc:
        print(f"cannot fit {args.log}: {exc}", file=sys.stderr)
        return 2
    spec = fit.arrival_spec(seed=args.seed)
    print(f"fitted {fit.num_events} arrivals over {fit.span_ms:.3f} ms:")
    print(f"  nominal rate    {fit.nominal_rate_per_ms:.6f} /ms")
    print(f"  interarrival CV {fit.cv_interarrival:.3f} (1.0 = Poisson)")
    print(f"  peak/mean rate  {fit.peak_to_mean:.3f}")
    print(f"  burst windows   {fit.num_burst_windows}")
    print(f"  segments        {len(fit.segments)}")
    recipe = {"arrivals": spec.to_dict(), "fit": fit.to_dict()}
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(recipe, fh, indent=2)
                fh.write("\n")
        except OSError as exc:
            print(f"cannot write {args.out}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.out}")
    else:
        print(json.dumps(recipe, indent=2))
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.serving.obs import summarize_chrome_trace

    try:
        with open(args.file, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 2
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        print(f"invalid trace: {args.file} has no traceEvents", file=sys.stderr)
        return 2
    print(summarize_chrome_trace(payload))
    return 0


def _cmd_schema(args: argparse.Namespace) -> int:
    from repro.serving.spec import scenario_schema

    print(json.dumps(scenario_schema(), indent=2))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import format_json, format_text, run_lint

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    try:
        result = run_lint(args.paths, select=select)
    except (OSError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    print(format_json(result) if args.format == "json" else format_text(result))
    return 0 if result.ok else 1


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help=(
            "record per-query lifecycle spans and write a Chrome "
            "trace-event JSON (loadable in Perfetto) to FILE"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help=(
            "write a metrics timeseries (queue depth, utilization, drop "
            "rate, batch occupancy) to FILE — CSV if it ends in .csv, "
            "JSON otherwise"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of SUSHI (MLSys 2023): experiment registry and "
            "declarative serving scenarios."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list", help="list registered experiment ids")
    list_p.set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run one experiment and print its report")
    run_p.add_argument("experiment_id", help="registry id, e.g. fig15 or load_sweep")
    run_p.add_argument(
        "--json",
        metavar="FILE",
        help="additionally dump the experiment result as JSON to FILE",
    )
    run_p.add_argument(
        "--profile",
        metavar="FILE",
        help=(
            "profile the run with cProfile: dump pstats data to FILE and "
            "print the top 10 functions by cumulative time"
        ),
    )
    _add_observability_args(run_p)
    run_p.set_defaults(func=_cmd_run)

    serve_p = sub.add_parser(
        "serve", help="run a declarative serving scenario from a JSON spec"
    )
    serve_p.add_argument(
        "--scenario", required=True, help="path to a ScenarioSpec JSON file"
    )
    serve_p.add_argument(
        "--override",
        action="append",
        type=_parse_override,
        metavar="KEY.PATH=VALUE",
        help=(
            "override one spec field (repeatable); dotted paths address the "
            "serialized form, e.g. arrivals.rate_per_ms=0.5 or "
            "replica_groups.0.count=4"
        ),
    )
    serve_p.add_argument(
        "--dump-spec",
        action="store_true",
        help="print the effective spec JSON (after overrides) and exit",
    )
    _add_observability_args(serve_p)
    serve_p.set_defaults(func=_cmd_serve)

    sweep_p = sub.add_parser(
        "sweep",
        help=(
            "expand a declarative grid (base scenario x override axes), "
            "run every cell, and merge the results into one artifact"
        ),
    )
    sweep_p.add_argument(
        "--spec", required=True, help="path to a SweepSpec JSON file"
    )
    sweep_p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes to fan grid cells out over (default 1: "
            "sequential; the merged artifact is byte-identical either way)"
        ),
    )
    sweep_p.add_argument(
        "--json",
        metavar="FILE",
        help="write the merged sweep result as JSON to FILE",
    )
    sweep_p.add_argument(
        "--csv",
        metavar="FILE",
        help="write the merged sweep result as CSV to FILE",
    )
    sweep_p.add_argument(
        "--override",
        action="append",
        type=_parse_override,
        metavar="KEY.PATH=VALUE",
        help=(
            "override one field of the base scenario before the grid "
            "expands (repeatable; same dotted paths as serve --override)"
        ),
    )
    sweep_p.set_defaults(func=_cmd_sweep)

    trace_p = sub.add_parser(
        "trace",
        help=(
            "inspect exported Chrome trace JSON files and fit synthetic "
            "arrival recipes from request logs"
        ),
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    summarize_p = trace_sub.add_parser(
        "summarize", help="print a text summary of an exported trace"
    )
    summarize_p.add_argument(
        "file", help="Chrome trace-event JSON written by --trace"
    )
    summarize_p.set_defaults(func=_cmd_trace_summarize)
    fit_p = trace_sub.add_parser(
        "fit",
        help=(
            "estimate piecewise-Poisson + burst parameters from a request "
            "log and emit a shareable synthetic ArrivalSpec recipe"
        ),
    )
    fit_p.add_argument(
        "log", help="request log to fit (.csv or .jsonl; see docs)"
    )
    fit_p.add_argument(
        "--max-segments",
        type=int,
        default=8,
        metavar="N",
        help="segment budget of the piecewise fit (default 8)",
    )
    fit_p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="fit only the first N arrivals of the log",
    )
    fit_p.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="N",
        help="seed to stamp into the emitted ArrivalSpec recipe",
    )
    fit_p.add_argument(
        "--out",
        metavar="FILE",
        help=(
            "write the recipe JSON ({arrivals, fit}) to FILE instead of "
            "stdout"
        ),
    )
    fit_p.set_defaults(func=_cmd_trace_fit)

    schema_p = sub.add_parser(
        "schema",
        help="print the scenario JSON schema (field defaults and enums)",
    )
    schema_p.set_defaults(func=_cmd_schema)

    lint_p = sub.add_parser(
        "lint",
        help=(
            "run the AST-based invariant linter (RPR001-RPR005; "
            "see docs/invariants.md)"
        ),
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint_p.add_argument(
        "--select",
        metavar="CODE,...",
        help="comma-separated lint codes to run, e.g. RPR001,RPR005",
    )
    lint_p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
