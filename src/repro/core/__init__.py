"""SUSHI core: the paper's primary contribution.

This subpackage holds the SubGraph-Stationary control plane:

* vector encodings and distances over SubNets/SubGraphs (``encoding``),
* construction of the bounded candidate SubGraph set ``S`` (``candidates``),
* the hardware-agnostic latency lookup table SushiAbs (``latency_table``),
* the SushiSched scheduling policies and Algorithm 1 (``policies``,
  ``running_average``, ``scheduler``),
* serving metrics (``metrics``).
"""

from repro.core.encoding import (
    encode_subnet,
    encode_subgraph,
    euclidean_distance,
    normalized_overlap,
)
from repro.core.candidates import CandidateSet, build_candidate_set
from repro.core.latency_table import LatencyTable, LookupTimer
from repro.core.policies import Policy, select_subnet
from repro.core.running_average import RunningAverageNet
from repro.core.scheduler import SushiSched, SchedulerDecision
from repro.core.metrics import QueryRecord, ServingMetrics, summarize_records

__all__ = [
    "encode_subnet",
    "encode_subgraph",
    "euclidean_distance",
    "normalized_overlap",
    "CandidateSet",
    "build_candidate_set",
    "LatencyTable",
    "LookupTimer",
    "Policy",
    "select_subnet",
    "RunningAverageNet",
    "SushiSched",
    "SchedulerDecision",
    "QueryRecord",
    "ServingMetrics",
    "summarize_records",
]
