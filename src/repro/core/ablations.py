"""Caching-policy ablations.

SushiSched's caching decision (cache the candidate SubGraph nearest to the
running average of recently served SubNets) is one point in a space of
policies.  This module implements the alternatives an ablation study would
compare against, all operating on the same candidate set and latency table so
they slot directly into :class:`repro.serving.stack.SushiStack`-style loops:

* ``NeverCachePolicy``        — lower bound: leave the PB empty.
* ``StaticSharedPolicy``      — cache the family-wide shared SubGraph once and
                                never change it (no temporal adaptation).
* ``MostRecentPolicy``        — cache (a truncation of) the last served SubNet
                                (the paper's "state-unaware" strawman).
* ``FrequencyPolicy``         — cache the candidate nearest to the *most
                                frequently* served SubNet in the window (mode
                                rather than mean).
* ``RunningAveragePolicy``    — the paper's policy (delegates to the same
                                nearest-candidate rule as SushiSched).

The ablation benchmark (``benchmarks/test_bench_ablation_caching.py``)
compares their byte hit ratios and mean serving latencies on a common stream.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

import numpy as np

from repro.core.candidates import CandidateSet
from repro.core.encoding import nearest_index
from repro.supernet.subnet import SubNet
from repro.supernet.supernet import SuperNet


class CachingPolicy:
    """Interface: observe served SubNets, propose a candidate index to cache."""

    name: str = "base"

    def observe(self, subnet_idx: int) -> None:  # pragma: no cover - trivial default
        """Record that ``subnet_idx`` (row of the latency table) was served."""

    def propose(self, current_idx: int) -> int:
        """Return the candidate-set index that should be cached next."""
        raise NotImplementedError


class NeverCachePolicy(CachingPolicy):
    """Keep whatever was initially cached (an empty PB when so initialized)."""

    name = "never"

    def propose(self, current_idx: int) -> int:
        return current_idx


class StaticSharedPolicy(CachingPolicy):
    """Always cache one fixed candidate (e.g. the family-shared SubGraph)."""

    name = "static-shared"

    def __init__(self, fixed_idx: int) -> None:
        if fixed_idx < 0:
            raise ValueError("fixed_idx must be non-negative")
        self.fixed_idx = fixed_idx

    def propose(self, current_idx: int) -> int:
        return self.fixed_idx


class MostRecentPolicy(CachingPolicy):
    """Cache the candidate nearest to the most recently served SubNet."""

    name = "most-recent"

    def __init__(self, subnets: list[SubNet], candidates: CandidateSet, supernet: SuperNet) -> None:
        self._subnet_encodings = [sn.encode() for sn in subnets]
        self._candidate_encodings = candidates.encodings(supernet)
        self._last: int | None = None

    def observe(self, subnet_idx: int) -> None:
        self._last = subnet_idx

    def propose(self, current_idx: int) -> int:
        if self._last is None:
            return current_idx
        return nearest_index(self._subnet_encodings[self._last], self._candidate_encodings)


class FrequencyPolicy(CachingPolicy):
    """Cache the candidate nearest to the modal served SubNet in a window."""

    name = "frequency"

    def __init__(
        self,
        subnets: list[SubNet],
        candidates: CandidateSet,
        supernet: SuperNet,
        *,
        window: int = 16,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._subnet_encodings = [sn.encode() for sn in subnets]
        self._candidate_encodings = candidates.encodings(supernet)
        self._history: deque[int] = deque(maxlen=window)

    def observe(self, subnet_idx: int) -> None:
        self._history.append(subnet_idx)

    def propose(self, current_idx: int) -> int:
        if not self._history:
            return current_idx
        counts = Counter(self._history)
        # Deterministic tie-break: highest count, then lowest SubNet index.
        modal_idx = min(counts, key=lambda idx: (-counts[idx], idx))
        return nearest_index(self._subnet_encodings[modal_idx], self._candidate_encodings)


class RunningAveragePolicy(CachingPolicy):
    """The paper's policy: nearest candidate to the mean served encoding."""

    name = "running-average"

    def __init__(
        self,
        subnets: list[SubNet],
        candidates: CandidateSet,
        supernet: SuperNet,
        *,
        window: int = 4,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._subnet_encodings = [sn.encode() for sn in subnets]
        self._candidate_encodings = candidates.encodings(supernet)
        self._history: deque[np.ndarray] = deque(maxlen=window)

    def observe(self, subnet_idx: int) -> None:
        self._history.append(self._subnet_encodings[subnet_idx])

    def propose(self, current_idx: int) -> int:
        if not self._history:
            return current_idx
        target = np.mean(np.stack(self._history), axis=0)
        return nearest_index(target, self._candidate_encodings)


@dataclass(frozen=True)
class AblationOutcome:
    """Result of running one caching policy over a query stream."""

    policy_name: str
    mean_latency_ms: float
    mean_byte_hit_ratio: float
    cache_reload_bytes: int
