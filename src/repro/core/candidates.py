"""Construction of the candidate SubGraph set ``S`` (SushiAbs requirement R1).

The space of all possible SubGraphs of an OFA SuperNet is astronomically
large (> 10^19), so SushiAbs restricts caching decisions to a small curated
set ``S`` whose members are sized close to the Persistent Buffer capacity.
This module builds ``S`` from a Pareto SubNet family:

* the PB-sized truncation of each Pareto SubNet (later layers first — those
  carry the bulk of the weights and are the most likely to be memory bound),
* pairwise intersections of Pareto SubNets (the structures that cross-query
  temporal locality actually produces), and
* optionally, interpolated variants to grow ``S`` for the Table 5 sweep of
  latency-table sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.supernet.layers import LayerSlice
from repro.supernet.subnet import SubNet
from repro.supernet.supernet import SuperNet


def truncate_to_capacity(
    subgraph: CachedSubGraph,
    capacity_bytes: int,
    *,
    supernet: SuperNet,
    prefer_later_layers: bool = True,
) -> CachedSubGraph:
    """Largest sub-SubGraph of ``subgraph`` fitting within ``capacity_bytes``.

    Whole layer slices are admitted greedily, ordered from the back of the
    network when ``prefer_later_layers`` (the deep layers hold most weights
    and are re-fetched most expensively), otherwise from the front.
    """
    if capacity_bytes <= 0:
        return CachedSubGraph(name=f"{subgraph.name}|empty", slices={})
    names = sorted(subgraph.slices, key=supernet.layer_index, reverse=prefer_later_layers)
    kept: dict[str, LayerSlice] = {}
    used = 0
    for name in names:
        sl = subgraph.slices[name]
        if used + sl.weight_bytes <= capacity_bytes:
            kept[name] = sl
            used += sl.weight_bytes
    return CachedSubGraph(name=f"{subgraph.name}|{capacity_bytes // 1024}KB", slices=kept)


def intersect_subnets(a: SubNet, b: SubNet, *, name: str | None = None) -> CachedSubGraph:
    """The SubGraph shared by two SubNets (per-layer slice intersection)."""
    if a.supernet.name != b.supernet.name:
        raise ValueError("cannot intersect SubNets of different SuperNets")
    slices: dict[str, LayerSlice] = {}
    b_slices = b.layer_slices
    for layer_name, sl in a.layer_slices.items():
        other = b_slices.get(layer_name)
        if other is None:
            continue
        inter = sl.intersect(other)
        if not inter.is_empty:
            slices[layer_name] = inter
    return CachedSubGraph(name=name or f"{a.name}&{b.name}", slices=slices)


def _scale_subgraph(
    base: CachedSubGraph, fraction: float, *, supernet: SuperNet, name: str
) -> CachedSubGraph:
    """A SubGraph with every slice's kernels/channels scaled by ``fraction``."""
    fraction = min(max(fraction, 0.0), 1.0)
    slices: dict[str, LayerSlice] = {}
    for layer_name, sl in base.slices.items():
        kernels = max(1, int(round(sl.kernels * fraction)))
        channels = max(1, int(round(sl.channels * fraction)))
        slices[layer_name] = LayerSlice(layer=sl.layer, kernels=kernels, channels=channels)
    return CachedSubGraph(name=name, slices=slices)


@dataclass(frozen=True)
class CandidateSet:
    """The bounded candidate SubGraph set ``S`` plus its provenance."""

    supernet_name: str
    subgraphs: tuple[CachedSubGraph, ...]
    capacity_bytes: int

    def __post_init__(self) -> None:
        if not self.subgraphs:
            raise ValueError("a candidate set needs at least one SubGraph")

    def __len__(self) -> int:
        return len(self.subgraphs)

    def __iter__(self) -> Iterator[CachedSubGraph]:
        return iter(self.subgraphs)

    def __getitem__(self, idx: int) -> CachedSubGraph:
        return self.subgraphs[idx]

    def encodings(self, supernet: SuperNet) -> list[np.ndarray]:
        """Vector encodings of every candidate, in order."""
        return [sg.encode(supernet) for sg in self.subgraphs]

    def sizes_bytes(self) -> list[int]:
        return [sg.weight_bytes for sg in self.subgraphs]


def build_candidate_set(
    subnets: Sequence[SubNet],
    *,
    capacity_bytes: int,
    max_size: int | None = None,
    include_intersections: bool = True,
    seed: int = 0,
) -> CandidateSet:
    """Build the candidate SubGraph set ``S`` for a Pareto SubNet family.

    Parameters
    ----------
    subnets:
        The servable SubNet family (SushiAbs's set ``X``).
    capacity_bytes:
        Persistent Buffer capacity; candidates are truncated to fit it.
    max_size:
        Upper bound on ``|S|``.  When larger than the number of structural
        candidates, additional interpolated variants are generated (used by
        the Table 5 latency-table-size sweep); when smaller, the structural
        candidates are subsampled deterministically.
    include_intersections:
        Whether to add pairwise SubNet intersections.
    seed:
        Seed for the deterministic generation of interpolated variants.
    """
    if not subnets:
        raise ValueError("build_candidate_set needs at least one SubNet")
    supernet = subnets[0].supernet
    if any(sn.supernet.name != supernet.name for sn in subnets):
        raise ValueError("all SubNets must come from the same SuperNet")
    if capacity_bytes <= 0:
        raise ValueError("capacity_bytes must be positive")

    candidates: list[CachedSubGraph] = []
    seen: set[tuple] = set()

    def _add(sg: CachedSubGraph) -> None:
        if not sg.slices:
            return
        key = tuple(
            sorted((name, sl.kernels, sl.channels) for name, sl in sg.slices.items())
        )
        if key in seen:
            return
        seen.add(key)
        candidates.append(sg)

    # 1. PB-sized truncation of each Pareto SubNet.
    for sn in subnets:
        full = CachedSubGraph.from_subnet(sn, name=f"trunc({sn.name})")
        _add(truncate_to_capacity(full, capacity_bytes, supernet=supernet))

    # 2. Pairwise intersections (also truncated to capacity).
    if include_intersections:
        for i, a in enumerate(subnets):
            for b in subnets[i + 1 :]:
                inter = intersect_subnets(a, b)
                _add(truncate_to_capacity(inter, capacity_bytes, supernet=supernet))

    # 3. Pad or trim to the requested |S|.
    if max_size is not None:
        if len(candidates) > max_size:
            # Deterministic subsample keeping the per-SubNet truncations first.
            candidates = candidates[:max_size]
        else:
            rng = np.random.default_rng(seed)
            base_pool = list(candidates)
            counter = 0
            while len(candidates) < max_size and base_pool:
                base = base_pool[counter % len(base_pool)]
                fraction = float(rng.uniform(0.55, 0.98))
                variant = _scale_subgraph(
                    base,
                    fraction,
                    supernet=supernet,
                    name=f"{base.name}~{counter}",
                )
                _add(truncate_to_capacity(variant, capacity_bytes, supernet=supernet))
                counter += 1
                if counter > 20 * max_size:  # safety: avoid an infinite loop
                    break

    return CandidateSet(
        supernet_name=supernet.name,
        subgraphs=tuple(candidates),
        capacity_bytes=capacity_bytes,
    )
