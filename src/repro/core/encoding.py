"""Vector encodings of SubNets and SubGraphs, and distances between them.

SushiSched represents every SubNet and SubGraph as a ``2N``-dimensional
vector ``[K1, C1, K2, C2, ..., KN, CN]`` over the SuperNet's ``N`` maximal
layers, where ``Ki`` / ``Ci`` are the number of active kernels / channels of
layer ``i`` (zero when elastic depth drops the layer).  All scheduling
decisions — the running average of served SubNets and the nearest-candidate
SubGraph selection — operate on these vectors (paper Fig. 6).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.supernet.subnet import SubNet
from repro.supernet.supernet import SuperNet


def encode_subnet(subnet: SubNet) -> np.ndarray:
    """The ``[K1, C1, ..., KN, CN]`` encoding of a SubNet."""
    return subnet.encode()


def encode_subgraph(subgraph: CachedSubGraph, supernet: SuperNet) -> np.ndarray:
    """The ``[K1, C1, ..., KN, CN]`` encoding of a SubGraph."""
    return subgraph.encode(supernet)


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two encodings (the paper's ``Dist``)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"encoding shapes differ: {a.shape} vs {b.shape}")
    return float(np.linalg.norm(a - b))


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine distance (1 - cosine similarity); an alternative ``Dist``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"encoding shapes differ: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 1.0
    return float(1.0 - np.dot(a, b) / (na * nb))


def normalized_overlap(subnet_vec: np.ndarray, subgraph_vec: np.ndarray) -> float:
    """The paper's cache-hit proxy ``||SN ∩ G||_2 / ||SN||_2`` (Appendix A.4).

    The element-wise minimum of the two encodings approximates the
    intersection of the structures they describe.
    """
    subnet_vec = np.asarray(subnet_vec, dtype=np.float64)
    subgraph_vec = np.asarray(subgraph_vec, dtype=np.float64)
    if subnet_vec.shape != subgraph_vec.shape:
        raise ValueError(
            f"encoding shapes differ: {subnet_vec.shape} vs {subgraph_vec.shape}"
        )
    denom = np.linalg.norm(subnet_vec)
    if denom == 0.0:
        return 0.0
    inter = np.minimum(subnet_vec, subgraph_vec)
    return float(np.linalg.norm(inter) / denom)


def nearest_index(
    target: np.ndarray, candidates: Sequence[np.ndarray], *, metric: str = "euclidean"
) -> int:
    """Index of the candidate encoding closest to ``target``.

    ``metric`` is ``"euclidean"`` (the paper's choice) or ``"cosine"``.
    Ties resolve to the lowest index, which keeps the scheduler deterministic.
    """
    if len(candidates) == 0:
        raise ValueError("candidates must be non-empty")
    target = np.asarray(target, dtype=np.float64)
    matrix = np.asarray(candidates, dtype=np.float64)
    if matrix.shape[1:] != target.shape:
        raise ValueError(
            f"encoding shapes differ: {target.shape} vs {matrix.shape[1:]}"
        )
    if metric == "euclidean":
        distances = np.linalg.norm(matrix - target[None, :], axis=1)
    elif metric == "cosine":
        norms = np.linalg.norm(matrix, axis=1)
        target_norm = np.linalg.norm(target)
        with np.errstate(invalid="ignore", divide="ignore"):
            sims = matrix @ target / (norms * target_norm)
        distances = 1.0 - np.where(
            (norms == 0.0) | (target_norm == 0.0), 0.0, sims
        )
    else:
        raise ValueError(f"unknown metric {metric!r}; use 'euclidean' or 'cosine'")
    return int(np.argmin(distances))
