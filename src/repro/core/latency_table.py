"""SushiAbs: the hardware-agnostic latency lookup table.

The abstraction between SushiSched and any SGS-capable accelerator is a
lookup table ``L[i][j]`` giving the latency of serving SubNet ``i`` while
SubGraph ``j`` is cached (paper Section 3.2).  Rows are the servable SubNets
(set ``X``), columns the candidate SubGraphs (set ``S``).  The table is small
— ``O(|S| x |X|)`` with ``|X| = O(1)`` — and lookups are O(1), keeping the
scheduler off the query critical path (Table 6 measures lookup time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.core.candidates import CandidateSet
from repro.supernet.subnet import SubNet


@dataclass
class LookupTimer:
    """Accumulates wall-clock time spent in table lookups (Table 6)."""

    lookups: int = 0
    total_seconds: float = 0.0

    @property
    def mean_microseconds(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.total_seconds / self.lookups * 1e6


class LatencyTable:
    """The ``L[SubNet i][SubGraph j]`` latency lookup table.

    Parameters
    ----------
    subnets:
        Servable SubNets (rows), with their fixed accuracies.
    candidates:
        Candidate SubGraph set ``S`` (columns).
    latencies_ms:
        ``len(subnets) x len(candidates)`` matrix of serving latencies.
    accuracies:
        Per-SubNet top-1 accuracy (fractions), aligned with ``subnets``.
    """

    def __init__(
        self,
        subnets: Sequence[SubNet],
        candidates: CandidateSet,
        latencies_ms: np.ndarray | Sequence[Sequence[float]],
        accuracies: Sequence[float],
    ) -> None:
        self.subnets = list(subnets)
        self.candidates = candidates
        self.latencies_ms = np.asarray(latencies_ms, dtype=np.float64)
        self.accuracies = np.asarray(accuracies, dtype=np.float64)
        if self.latencies_ms.shape != (len(self.subnets), len(candidates)):
            raise ValueError(
                f"latency matrix shape {self.latencies_ms.shape} does not match "
                f"({len(self.subnets)}, {len(candidates)})"
            )
        if self.accuracies.shape != (len(self.subnets),):
            raise ValueError(
                f"accuracies shape {self.accuracies.shape} does not match "
                f"number of SubNets ({len(self.subnets)})"
            )
        if np.any(self.latencies_ms <= 0):
            raise ValueError("all latencies must be positive")
        if np.any((self.accuracies <= 0) | (self.accuracies >= 1)):
            raise ValueError("accuracies must be fractions in (0, 1)")
        self.timer = LookupTimer()

    # ------------------------------------------------------------ factory
    @classmethod
    def build(
        cls,
        subnets: Sequence[SubNet],
        candidates: CandidateSet,
        latency_fn: Callable[[SubNet, CachedSubGraph], float],
        accuracy_fn: Callable[[SubNet], float],
    ) -> "LatencyTable":
        """Populate the table by evaluating a latency model on every (i, j)."""
        matrix = np.array(
            [[latency_fn(sn, sg) for sg in candidates] for sn in subnets],
            dtype=np.float64,
        )
        accuracies = [accuracy_fn(sn) for sn in subnets]
        return cls(subnets, candidates, matrix, accuracies)

    # ------------------------------------------------------------ lookups
    @property
    def num_subnets(self) -> int:
        return len(self.subnets)

    @property
    def num_subgraphs(self) -> int:
        return len(self.candidates)

    def latency(self, subnet_idx: int, subgraph_idx: int) -> float:
        """O(1) lookup of ``L[i][j]`` (timed for Table 6)."""
        start = time.perf_counter()
        value = float(self.latencies_ms[subnet_idx, subgraph_idx])
        self.timer.total_seconds += time.perf_counter() - start
        self.timer.lookups += 1
        return value

    def latency_batch(self, subnet_idxs, subgraph_idx: int) -> np.ndarray:
        """Vectorized ``L[i][j]`` lookup for many SubNets under one cache state."""
        idxs = np.asarray(subnet_idxs, dtype=np.intp)
        start = time.perf_counter()
        values = self.latencies_ms[idxs, subgraph_idx]
        self.timer.total_seconds += time.perf_counter() - start
        self.timer.lookups += int(idxs.size)
        return values

    def column(self, subgraph_idx: int) -> np.ndarray:
        """Latencies of every SubNet under cached SubGraph ``j``."""
        return self.latencies_ms[:, subgraph_idx]

    def accuracy(self, subnet_idx: int) -> float:
        return float(self.accuracies[subnet_idx])

    def subnet_index(self, subnet: SubNet) -> int:
        for i, sn in enumerate(self.subnets):
            if sn == subnet:
                return i
        raise KeyError(f"SubNet {subnet.name} not in latency table")

    # ------------------------------------------------------- policy queries
    def best_under_accuracy(self, min_accuracy: float, subgraph_idx: int) -> int | None:
        """STRICT_ACCURACY selection: fastest SubNet with accuracy >= bound.

        Returns ``None`` when no SubNet satisfies the accuracy constraint
        (the caller then falls back to the most accurate SubNet).
        """
        feasible = np.flatnonzero(self.accuracies >= min_accuracy)
        if feasible.size == 0:
            return None
        start = time.perf_counter()
        col = self.latencies_ms[feasible, subgraph_idx]
        best = int(feasible[int(np.argmin(col))])
        self.timer.total_seconds += time.perf_counter() - start
        self.timer.lookups += 1
        return best

    def best_under_latency(self, max_latency_ms: float, subgraph_idx: int) -> int | None:
        """STRICT_LATENCY selection: most accurate SubNet with latency <= bound."""
        start = time.perf_counter()
        col = self.latencies_ms[:, subgraph_idx]
        feasible = np.flatnonzero(col <= max_latency_ms)
        if feasible.size == 0:
            self.timer.total_seconds += time.perf_counter() - start
            self.timer.lookups += 1
            return None
        best = int(feasible[int(np.argmax(self.accuracies[feasible]))])
        self.timer.total_seconds += time.perf_counter() - start
        self.timer.lookups += 1
        return best

    # ------------------------------------------------------ batched queries
    def best_under_accuracy_batch(
        self, min_accuracies, subgraph_idx: int
    ) -> np.ndarray:
        """Vectorized :meth:`best_under_accuracy`: one feasibility mask per query.

        Returns an integer array aligned with ``min_accuracies`` whose entries
        are the selected SubNet index, or ``-1`` where no SubNet satisfies the
        accuracy constraint (the caller applies the fallback).  Tie-breaking
        matches the scalar path exactly (first minimum wins).
        """
        bounds = np.asarray(min_accuracies, dtype=np.float64)
        start = time.perf_counter()
        mask = self.accuracies[None, :] >= bounds[:, None]
        col = self.latencies_ms[:, subgraph_idx]
        masked = np.where(mask, col[None, :], np.inf)
        best = np.argmin(masked, axis=1)
        result = np.where(mask.any(axis=1), best, -1).astype(np.intp)
        self.timer.total_seconds += time.perf_counter() - start
        self.timer.lookups += int(bounds.size)
        return result

    def best_under_latency_batch(
        self, max_latencies_ms, subgraph_idx: int
    ) -> np.ndarray:
        """Vectorized :meth:`best_under_latency`; ``-1`` where infeasible."""
        bounds = np.asarray(max_latencies_ms, dtype=np.float64)
        start = time.perf_counter()
        col = self.latencies_ms[:, subgraph_idx]
        mask = col[None, :] <= bounds[:, None]
        masked = np.where(mask, self.accuracies[None, :], -np.inf)
        best = np.argmax(masked, axis=1)
        result = np.where(mask.any(axis=1), best, -1).astype(np.intp)
        self.timer.total_seconds += time.perf_counter() - start
        self.timer.lookups += int(bounds.size)
        return result

    # ------------------------------------------------------------- reports
    def summary(self) -> dict[str, float]:
        return {
            "num_subnets": float(self.num_subnets),
            "num_subgraphs": float(self.num_subgraphs),
            "min_latency_ms": float(self.latencies_ms.min()),
            "max_latency_ms": float(self.latencies_ms.max()),
            "min_accuracy": float(self.accuracies.min()),
            "max_accuracy": float(self.accuracies.max()),
        }
