"""Serving metrics: per-query records and stream-level summaries.

These are the quantities the paper's end-to-end evaluation reports: served
latency vs the query's latency constraint, served accuracy vs the accuracy
constraint (Fig. 15), mean latency/accuracy improvements (Section 5.7),
latency SLO attainment, off-chip energy, and the cache hit ratio of
Appendix A.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class QueryRecord:
    """Everything recorded about one served query."""

    query_index: int
    accuracy_constraint: float
    latency_constraint_ms: float
    subnet_name: str
    served_accuracy: float
    served_latency_ms: float
    cache_hit_ratio: float = 0.0
    offchip_energy_mj: float = 0.0
    cache_load_ms: float = 0.0
    replica_index: int = 0
    """Which replica served the query (0 in single-server setups)."""

    @property
    def meets_latency(self) -> bool:
        return self.served_latency_ms <= self.latency_constraint_ms

    @property
    def meets_accuracy(self) -> bool:
        return self.served_accuracy >= self.accuracy_constraint


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate metrics over a stream of served queries."""

    num_queries: int
    mean_latency_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    mean_accuracy: float
    latency_slo_attainment: float
    accuracy_slo_attainment: float
    mean_cache_hit_ratio: float
    total_offchip_energy_mj: float
    total_cache_load_ms: float

    def as_dict(self) -> dict[str, float]:
        return {
            "num_queries": float(self.num_queries),
            "mean_latency_ms": self.mean_latency_ms,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "mean_accuracy": self.mean_accuracy,
            "latency_slo_attainment": self.latency_slo_attainment,
            "accuracy_slo_attainment": self.accuracy_slo_attainment,
            "mean_cache_hit_ratio": self.mean_cache_hit_ratio,
            "total_offchip_energy_mj": self.total_offchip_energy_mj,
            "total_cache_load_ms": self.total_cache_load_ms,
        }


def summarize_records(records: Sequence[QueryRecord]) -> ServingMetrics:
    """Aggregate per-query records into stream-level metrics."""
    if not records:
        raise ValueError("cannot summarize an empty record list")
    latencies = np.array([r.served_latency_ms for r in records])
    accuracies = np.array([r.served_accuracy for r in records])
    return ServingMetrics(
        num_queries=len(records),
        mean_latency_ms=float(latencies.mean()),
        p50_latency_ms=float(np.percentile(latencies, 50)),
        p99_latency_ms=float(np.percentile(latencies, 99)),
        mean_accuracy=float(accuracies.mean()),
        latency_slo_attainment=float(np.mean([r.meets_latency for r in records])),
        accuracy_slo_attainment=float(np.mean([r.meets_accuracy for r in records])),
        mean_cache_hit_ratio=float(np.mean([r.cache_hit_ratio for r in records])),
        total_offchip_energy_mj=float(sum(r.offchip_energy_mj for r in records)),
        total_cache_load_ms=float(sum(r.cache_load_ms for r in records)),
    )


def latency_improvement_percent(
    baseline: ServingMetrics, improved: ServingMetrics
) -> float:
    """Mean-latency reduction of ``improved`` relative to ``baseline`` (%)."""
    if baseline.mean_latency_ms <= 0:
        return 0.0
    return (
        100.0
        * (baseline.mean_latency_ms - improved.mean_latency_ms)
        / baseline.mean_latency_ms
    )


def accuracy_improvement_points(
    baseline: ServingMetrics, improved: ServingMetrics
) -> float:
    """Served-accuracy gain in percentage points (the paper's "0.98 %")."""
    return 100.0 * (improved.mean_accuracy - baseline.mean_accuracy)


def energy_saving_percent(baseline: ServingMetrics, improved: ServingMetrics) -> float:
    """Off-chip energy reduction of ``improved`` relative to ``baseline`` (%)."""
    if baseline.total_offchip_energy_mj <= 0:
        return 0.0
    return (
        100.0
        * (baseline.total_offchip_energy_mj - improved.total_offchip_energy_mj)
        / baseline.total_offchip_energy_mj
    )
