"""SubNet selection policies (the per-query half of Algorithm 1).

Two policies are supported, matching the paper:

* ``STRICT_ACCURACY`` — among SubNets whose accuracy meets the query's
  accuracy constraint, serve the one with the lowest latency given the
  current cache state (the served latency may then exceed the query's
  latency constraint).
* ``STRICT_LATENCY`` — among SubNets whose latency (given the current cache
  state) meets the query's latency constraint, serve the most accurate one
  (the served accuracy may then fall short of the accuracy constraint).

Both fall back gracefully when the feasibility set is empty: STRICT_ACCURACY
falls back to the most accurate SubNet, STRICT_LATENCY to the fastest one.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.latency_table import LatencyTable


class Policy(str, enum.Enum):
    """Which constraint the scheduler treats as hard."""

    STRICT_ACCURACY = "strict_accuracy"
    STRICT_LATENCY = "strict_latency"


def select_subnet(
    table: LatencyTable,
    policy: Policy,
    *,
    accuracy_constraint: float,
    latency_constraint_ms: float,
    cache_state_idx: int,
) -> int:
    """Pick the SubNet index to serve the current query (Algorithm 1, inner if).

    Parameters
    ----------
    table:
        The SushiAbs latency table.
    policy:
        Hard-constraint policy.
    accuracy_constraint:
        The query's accuracy requirement ``A_t`` (fraction).
    latency_constraint_ms:
        The query's latency requirement ``L_t``.
    cache_state_idx:
        Index (into the candidate set) of the currently cached SubGraph.
    """
    if not (0 <= cache_state_idx < table.num_subgraphs):
        raise IndexError(
            f"cache_state_idx {cache_state_idx} outside [0, {table.num_subgraphs})"
        )
    if policy == Policy.STRICT_ACCURACY:
        idx = table.best_under_accuracy(accuracy_constraint, cache_state_idx)
        if idx is None:
            # No SubNet reaches the requested accuracy: serve the best we have.
            idx = int(np.argmax(table.accuracies))
        return idx
    if policy == Policy.STRICT_LATENCY:
        idx = table.best_under_latency(latency_constraint_ms, cache_state_idx)
        if idx is None:
            # No SubNet is fast enough: serve the fastest one.
            idx = int(np.argmin(table.column(cache_state_idx)))
        return idx
    raise ValueError(f"unknown policy {policy!r}")


def select_subnet_batch(
    table: LatencyTable,
    policy: Policy,
    *,
    accuracy_constraints,
    latency_constraints_ms,
    cache_state_idx: int,
) -> np.ndarray:
    """Vectorized :func:`select_subnet` over many queries at one cache state.

    Between caching decisions the cache state is fixed and per-query
    selections are independent, so a whole window of queries can be decided
    with one feasibility mask instead of a Python loop.  The result is
    bit-identical to calling :func:`select_subnet` per query (same
    first-minimum tie-breaking, same fallbacks).
    """
    if not (0 <= cache_state_idx < table.num_subgraphs):
        raise IndexError(
            f"cache_state_idx {cache_state_idx} outside [0, {table.num_subgraphs})"
        )
    acc = np.asarray(accuracy_constraints, dtype=np.float64)
    lat = np.asarray(latency_constraints_ms, dtype=np.float64)
    if acc.shape != lat.shape or acc.ndim != 1:
        raise ValueError(
            f"constraint arrays must be 1-D and equal length, got shapes "
            f"{acc.shape} and {lat.shape}"
        )
    if policy == Policy.STRICT_ACCURACY:
        idxs = table.best_under_accuracy_batch(acc, cache_state_idx)
        fallback = int(np.argmax(table.accuracies))
    elif policy == Policy.STRICT_LATENCY:
        idxs = table.best_under_latency_batch(lat, cache_state_idx)
        fallback = int(np.argmin(table.column(cache_state_idx)))
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return np.where(idxs < 0, fallback, idxs).astype(np.intp)
