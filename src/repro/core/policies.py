"""SubNet selection policies (the per-query half of Algorithm 1).

Two policies are supported, matching the paper:

* ``STRICT_ACCURACY`` — among SubNets whose accuracy meets the query's
  accuracy constraint, serve the one with the lowest latency given the
  current cache state (the served latency may then exceed the query's
  latency constraint).
* ``STRICT_LATENCY`` — among SubNets whose latency (given the current cache
  state) meets the query's latency constraint, serve the most accurate one
  (the served accuracy may then fall short of the accuracy constraint).

Both fall back gracefully when the feasibility set is empty: STRICT_ACCURACY
falls back to the most accurate SubNet, STRICT_LATENCY to the fastest one.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.latency_table import LatencyTable


class Policy(str, enum.Enum):
    """Which constraint the scheduler treats as hard."""

    STRICT_ACCURACY = "strict_accuracy"
    STRICT_LATENCY = "strict_latency"


def select_subnet(
    table: LatencyTable,
    policy: Policy,
    *,
    accuracy_constraint: float,
    latency_constraint_ms: float,
    cache_state_idx: int,
) -> int:
    """Pick the SubNet index to serve the current query (Algorithm 1, inner if).

    Parameters
    ----------
    table:
        The SushiAbs latency table.
    policy:
        Hard-constraint policy.
    accuracy_constraint:
        The query's accuracy requirement ``A_t`` (fraction).
    latency_constraint_ms:
        The query's latency requirement ``L_t``.
    cache_state_idx:
        Index (into the candidate set) of the currently cached SubGraph.
    """
    if not (0 <= cache_state_idx < table.num_subgraphs):
        raise IndexError(
            f"cache_state_idx {cache_state_idx} outside [0, {table.num_subgraphs})"
        )
    if policy == Policy.STRICT_ACCURACY:
        idx = table.best_under_accuracy(accuracy_constraint, cache_state_idx)
        if idx is None:
            # No SubNet reaches the requested accuracy: serve the best we have.
            idx = int(np.argmax(table.accuracies))
        return idx
    if policy == Policy.STRICT_LATENCY:
        idx = table.best_under_latency(latency_constraint_ms, cache_state_idx)
        if idx is None:
            # No SubNet is fast enough: serve the fastest one.
            idx = int(np.argmin(table.column(cache_state_idx)))
        return idx
    raise ValueError(f"unknown policy {policy!r}")
