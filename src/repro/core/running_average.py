"""Running average of served SubNet encodings ("AvgNet" in Algorithm 1).

The scheduler amortizes its caching decision over the last ``Q`` queries by
keeping a running average of the vector encodings of the SubNets it served.
Averaging — rather than intersecting — keeps information about kernels and
channels that were frequent but not universal across the window (paper
Section 3.3, "Amortizing Caching Choices").
"""

from __future__ import annotations

from collections import deque

import numpy as np


class RunningAverageNet:
    """Windowed running average of SubNet encodings.

    Parameters
    ----------
    dimension:
        Encoding dimensionality (``2 x num_layers`` of the SuperNet).
    window:
        Number of recent queries to average over (``Q``).  ``window=1``
        degenerates to "cache for the last served SubNet".
    """

    def __init__(self, dimension: int, window: int) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        self.dimension = dimension
        self.window = window
        self._history: deque[np.ndarray] = deque(maxlen=window)

    # ------------------------------------------------------------- updates
    def update(self, encoding: np.ndarray) -> None:
        """Record the encoding of the SubNet served for the latest query."""
        encoding = np.asarray(encoding, dtype=np.float64)
        if encoding.shape != (self.dimension,):
            raise ValueError(
                f"encoding shape {encoding.shape} does not match dimension "
                f"({self.dimension},)"
            )
        self._history.append(encoding.copy())

    def update_many(self, encodings: np.ndarray) -> None:
        """Record a window of served encodings at once (rows = queries).

        Equivalent to calling :meth:`update` per row — the deque's window
        keeps only the last ``window`` rows — but validates and copies once,
        which matters on batched scheduling hot paths.
        """
        block = np.asarray(encodings, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != self.dimension:
            raise ValueError(
                f"encodings shape {block.shape} does not match "
                f"(n, {self.dimension})"
            )
        self._history.extend(block.copy())

    def reset(self) -> None:
        self._history.clear()

    # -------------------------------------------------------------- values
    @property
    def count(self) -> int:
        """Number of encodings currently in the window."""
        return len(self._history)

    @property
    def is_empty(self) -> bool:
        return not self._history

    def value(self) -> np.ndarray:
        """The current average encoding (zeros when nothing was served yet)."""
        if not self._history:
            return np.zeros(self.dimension, dtype=np.float64)
        return np.mean(np.stack(self._history), axis=0)

    def history(self) -> list[np.ndarray]:
        """Copies of the encodings currently in the window (oldest first)."""
        return [vec.copy() for vec in self._history]
