"""SushiSched: the SGS-aware query scheduler (Algorithm 1).

For every query the scheduler makes a two-part control decision:

1. **Per-query SubNet selection** — pick the SubNet to serve under the
   query's (accuracy, latency) constraints, using the SushiAbs latency table
   evaluated at the *current* cache state.
2. **Across-query SubGraph caching** — every ``Q`` queries, pick the next
   SubGraph to cache: the candidate closest (Euclidean distance over the
   vector encodings) to the running average of the last ``Q`` served SubNets.

The scheduler is deliberately hardware-agnostic: its only view of the
accelerator is the latency table and the index of the cached SubGraph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoding import nearest_index
from repro.core.latency_table import LatencyTable
from repro.core.policies import Policy, select_subnet
from repro.core.running_average import RunningAverageNet
from repro.supernet.supernet import SuperNet


@dataclass(frozen=True)
class SchedulerDecision:
    """The outcome of scheduling one query."""

    query_index: int
    subnet_idx: int
    cache_state_idx: int
    next_cache_state_idx: int
    cache_updated: bool
    predicted_latency_ms: float
    subnet_accuracy: float


class SushiSched:
    """SGS-aware scheduler implementing Algorithm 1 of the paper.

    Parameters
    ----------
    table:
        SushiAbs latency table over (SubNets x candidate SubGraphs).
    supernet:
        The SuperNet the SubNets/SubGraphs belong to (needed for encodings).
    policy:
        ``STRICT_ACCURACY`` or ``STRICT_LATENCY``.
    cache_update_period:
        ``Q`` — how many queries to amortize each caching decision over.
    initial_cache_idx:
        Index of the SubGraph assumed cached before the first update; the
        paper initializes the cache state to a random SubGraph, so ``None``
        picks one with ``rng``.
    rng:
        Source of randomness for the initial cache state.
    """

    def __init__(
        self,
        table: LatencyTable,
        supernet: SuperNet,
        *,
        policy: Policy = Policy.STRICT_ACCURACY,
        cache_update_period: int = 4,
        initial_cache_idx: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if cache_update_period <= 0:
            raise ValueError("cache_update_period (Q) must be positive")
        self.table = table
        self.supernet = supernet
        self.policy = policy
        self.cache_update_period = cache_update_period
        rng = rng or np.random.default_rng(0)
        if initial_cache_idx is None:
            initial_cache_idx = int(rng.integers(0, table.num_subgraphs))
        if not (0 <= initial_cache_idx < table.num_subgraphs):
            raise IndexError(
                f"initial_cache_idx {initial_cache_idx} outside "
                f"[0, {table.num_subgraphs})"
            )
        self.cache_state_idx = initial_cache_idx
        self.avg_net = RunningAverageNet(
            dimension=2 * supernet.num_layers, window=cache_update_period
        )
        self._subnet_encodings = [sn.encode() for sn in table.subnets]
        self._candidate_encodings = table.candidates.encodings(supernet)
        self._queries_seen = 0
        self.decisions: list[SchedulerDecision] = []

    # ------------------------------------------------------------ schedule
    def schedule(
        self, *, accuracy_constraint: float, latency_constraint_ms: float
    ) -> SchedulerDecision:
        """Make the control decision for the next query in the stream."""
        current_cache = self.cache_state_idx
        subnet_idx = select_subnet(
            self.table,
            self.policy,
            accuracy_constraint=accuracy_constraint,
            latency_constraint_ms=latency_constraint_ms,
            cache_state_idx=current_cache,
        )
        self.avg_net.update(self._subnet_encodings[subnet_idx])
        self._queries_seen += 1

        cache_updated = False
        next_cache = current_cache
        if self._queries_seen % self.cache_update_period == 0:
            next_cache = self._predict_next_subgraph()
            cache_updated = next_cache != current_cache
            self.cache_state_idx = next_cache

        decision = SchedulerDecision(
            query_index=self._queries_seen - 1,
            subnet_idx=subnet_idx,
            cache_state_idx=current_cache,
            next_cache_state_idx=next_cache,
            cache_updated=cache_updated,
            predicted_latency_ms=self.table.latency(subnet_idx, current_cache),
            subnet_accuracy=self.table.accuracy(subnet_idx),
        )
        self.decisions.append(decision)
        return decision

    def _predict_next_subgraph(self) -> int:
        """The candidate SubGraph closest to the running-average SubNet."""
        target = self.avg_net.value()
        return nearest_index(target, self._candidate_encodings)

    # ------------------------------------------------------------- helpers
    @property
    def queries_seen(self) -> int:
        return self._queries_seen

    def reset(self, *, initial_cache_idx: int | None = None) -> None:
        """Forget all history (used between experiment repetitions)."""
        self.avg_net.reset()
        self._queries_seen = 0
        self.decisions.clear()
        if initial_cache_idx is not None:
            if not (0 <= initial_cache_idx < self.table.num_subgraphs):
                raise IndexError(
                    f"initial_cache_idx {initial_cache_idx} outside "
                    f"[0, {self.table.num_subgraphs})"
                )
            self.cache_state_idx = initial_cache_idx

    def cache_update_count(self) -> int:
        """How many times the cached SubGraph actually changed."""
        return sum(1 for d in self.decisions if d.cache_updated)
