"""SushiSched: the SGS-aware query scheduler (Algorithm 1).

For every query the scheduler makes a two-part control decision:

1. **Per-query SubNet selection** — pick the SubNet to serve under the
   query's (accuracy, latency) constraints, using the SushiAbs latency table
   evaluated at the *current* cache state.
2. **Across-query SubGraph caching** — every ``Q`` queries, pick the next
   SubGraph to cache: the candidate closest (Euclidean distance over the
   vector encodings) to the running average of the last ``Q`` served SubNets.

The scheduler is deliberately hardware-agnostic: its only view of the
accelerator is the latency table and the index of the cached SubGraph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoding import nearest_index
from repro.core.latency_table import LatencyTable
from repro.core.policies import Policy, select_subnet, select_subnet_batch
from repro.core.running_average import RunningAverageNet
from repro.supernet.supernet import SuperNet


@dataclass(frozen=True)
class SchedulerDecision:
    """The outcome of scheduling one query."""

    query_index: int
    subnet_idx: int
    cache_state_idx: int
    next_cache_state_idx: int
    cache_updated: bool
    predicted_latency_ms: float
    subnet_accuracy: float


class SushiSched:
    """SGS-aware scheduler implementing Algorithm 1 of the paper.

    Parameters
    ----------
    table:
        SushiAbs latency table over (SubNets x candidate SubGraphs).
    supernet:
        The SuperNet the SubNets/SubGraphs belong to (needed for encodings).
    policy:
        ``STRICT_ACCURACY`` or ``STRICT_LATENCY``.
    cache_update_period:
        ``Q`` — how many queries to amortize each caching decision over.
    initial_cache_idx:
        Index of the SubGraph assumed cached before the first update; the
        paper initializes the cache state to a random SubGraph, so ``None``
        picks one with ``rng``.
    rng:
        Source of randomness for the initial cache state.
    """

    def __init__(
        self,
        table: LatencyTable,
        supernet: SuperNet,
        *,
        policy: Policy = Policy.STRICT_ACCURACY,
        cache_update_period: int = 4,
        initial_cache_idx: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if cache_update_period <= 0:
            raise ValueError("cache_update_period (Q) must be positive")
        self.table = table
        self.supernet = supernet
        self.policy = policy
        self.cache_update_period = cache_update_period
        rng = rng or np.random.default_rng(0)
        if initial_cache_idx is None:
            initial_cache_idx = int(rng.integers(0, table.num_subgraphs))
        if not (0 <= initial_cache_idx < table.num_subgraphs):
            raise IndexError(
                f"initial_cache_idx {initial_cache_idx} outside "
                f"[0, {table.num_subgraphs})"
            )
        self.initial_cache_idx = initial_cache_idx
        self.cache_state_idx = initial_cache_idx
        self.avg_net = RunningAverageNet(
            dimension=2 * supernet.num_layers, window=cache_update_period
        )
        self._subnet_encodings = [sn.encode() for sn in table.subnets]
        self._subnet_encoding_matrix = np.stack(self._subnet_encodings)
        self._candidate_encodings = table.candidates.encodings(supernet)
        self._queries_seen = 0
        self.decisions: list[SchedulerDecision] = []

    # ------------------------------------------------------------ schedule
    def schedule(
        self, *, accuracy_constraint: float, latency_constraint_ms: float
    ) -> SchedulerDecision:
        """Make the control decision for the next query in the stream."""
        return self.schedule_shared(
            accuracy_constraint=accuracy_constraint,
            latency_constraint_ms=latency_constraint_ms,
            batch_size=1,
        )

    def schedule_shared(
        self,
        *,
        accuracy_constraint: float,
        latency_constraint_ms: float,
        batch_size: int = 1,
    ) -> SchedulerDecision:
        """One SubNet decision shared by a weight-sharing batch of queries.

        The caller passes the batch's *strictest* constraints (highest
        accuracy requirement, tightest remaining latency budget); all
        ``batch_size`` queries are served on the selected SubNet, so every
        member enters the running average on that SubNet's encoding and the
        caching window advances by the whole batch.  If the batch crosses a
        ``cache_update_period`` boundary, exactly **one** caching decision is
        made — after all the batch's encodings are in the window — so a batch
        costs at most one cache load.  ``batch_size=1`` is identical to
        :meth:`schedule`.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        current_cache = self.cache_state_idx
        subnet_idx = select_subnet(
            self.table,
            self.policy,
            accuracy_constraint=accuracy_constraint,
            latency_constraint_ms=latency_constraint_ms,
            cache_state_idx=current_cache,
        )
        encoding = self._subnet_encodings[subnet_idx]
        if batch_size == 1:
            self.avg_net.update(encoding)
        else:
            self.avg_net.update_many(
                np.broadcast_to(encoding, (batch_size, encoding.shape[0]))
            )
        seen_before = self._queries_seen
        self._queries_seen += batch_size

        cache_updated = False
        next_cache = current_cache
        period = self.cache_update_period
        if self._queries_seen // period > seen_before // period:
            next_cache = self._predict_next_subgraph()
            cache_updated = next_cache != current_cache
            self.cache_state_idx = next_cache

        decision = SchedulerDecision(
            query_index=seen_before,
            subnet_idx=subnet_idx,
            cache_state_idx=current_cache,
            next_cache_state_idx=next_cache,
            cache_updated=cache_updated,
            predicted_latency_ms=self.table.latency(subnet_idx, current_cache),
            subnet_accuracy=self.table.accuracy(subnet_idx),
        )
        self.decisions.append(decision)
        return decision

    def schedule_batch(
        self, accuracy_constraints, latency_constraints_ms
    ) -> list[SchedulerDecision]:
        """Schedule many queries with vectorized SubNet selection.

        Between caching decisions the cache state is fixed, so queries are
        decided one *caching window* at a time: a single numpy feasibility
        mask selects the SubNets for up to ``Q`` queries, then the running
        average and caching decision are advanced exactly as :meth:`schedule`
        would.  The decision sequence (and all scheduler state) is identical
        to calling :meth:`schedule` per query — this is purely a hot-path
        optimization for long streams.
        """
        acc = np.asarray(accuracy_constraints, dtype=np.float64)
        lat = np.asarray(latency_constraints_ms, dtype=np.float64)
        if acc.shape != lat.shape or acc.ndim != 1:
            raise ValueError(
                f"constraint arrays must be 1-D and equal length, got shapes "
                f"{acc.shape} and {lat.shape}"
            )
        decisions: list[SchedulerDecision] = []
        pos = 0
        n = int(acc.size)
        while pos < n:
            in_period = self._queries_seen % self.cache_update_period
            chunk = min(self.cache_update_period - in_period, n - pos)
            current_cache = self.cache_state_idx
            idxs = select_subnet_batch(
                self.table,
                self.policy,
                accuracy_constraints=acc[pos : pos + chunk],
                latency_constraints_ms=lat[pos : pos + chunk],
                cache_state_idx=current_cache,
            )
            predicted = self.table.latency_batch(idxs, current_cache)
            accuracies = self.table.accuracies[idxs]
            # The caching decision (if any) falls on the chunk's *last* query,
            # so the whole chunk's served encodings enter the window first —
            # exactly the state the sequential path would have at that point.
            self.avg_net.update_many(self._subnet_encoding_matrix[idxs])
            next_cache = current_cache
            cache_updated = False
            boundary = (self._queries_seen + chunk) % self.cache_update_period == 0
            if boundary:
                next_cache = self._predict_next_subgraph()
                cache_updated = next_cache != current_cache
                self.cache_state_idx = next_cache
            for k in range(chunk):
                last = k == chunk - 1
                decision = SchedulerDecision(
                    query_index=self._queries_seen + k,
                    subnet_idx=int(idxs[k]),
                    cache_state_idx=current_cache,
                    next_cache_state_idx=next_cache if (last and boundary) else current_cache,
                    cache_updated=cache_updated if last else False,
                    predicted_latency_ms=float(predicted[k]),
                    subnet_accuracy=float(accuracies[k]),
                )
                self.decisions.append(decision)
                decisions.append(decision)
            self._queries_seen += chunk
            pos += chunk
        return decisions

    def _predict_next_subgraph(self) -> int:
        """The candidate SubGraph closest to the running-average SubNet."""
        target = self.avg_net.value()
        return nearest_index(target, self._candidate_encodings)

    # ------------------------------------------------------------- helpers
    @property
    def queries_seen(self) -> int:
        return self._queries_seen

    def reset(self, *, initial_cache_idx: int | None = None) -> None:
        """Forget all history (used between experiment repetitions).

        With no argument the cache state returns to the *initial* index from
        construction, so repetitions are independent; pass
        ``initial_cache_idx`` to restart from a different state instead.
        """
        self.avg_net.reset()
        self._queries_seen = 0
        self.decisions.clear()
        if initial_cache_idx is None:
            self.cache_state_idx = self.initial_cache_idx
        else:
            if not (0 <= initial_cache_idx < self.table.num_subgraphs):
                raise IndexError(
                    f"initial_cache_idx {initial_cache_idx} outside "
                    f"[0, {self.table.num_subgraphs})"
                )
            self.cache_state_idx = initial_cache_idx

    def cache_update_count(self) -> int:
        """How many times the cached SubGraph actually changed."""
        return sum(1 for d in self.decisions if d.cache_updated)
