"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every module exposes

* ``run(...)`` — compute the experiment's data (deterministic, seeded), and
* ``report(result)`` — render the data as the plain-text analogue of the
  paper's table or figure.

The benchmark harness (``benchmarks/``) and the examples call these drivers;
``repro.experiments.registry`` maps experiment ids (e.g. ``"fig10"``) to them.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = ["EXPERIMENTS", "get_experiment", "list_experiments"]
