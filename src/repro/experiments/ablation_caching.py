"""Ablation (extension): comparing SubGraph caching policies.

Not a figure from the paper — this is the ablation DESIGN.md calls out: hold
the serving stack fixed and swap only the *caching* decision rule, to isolate
how much of SUSHI's benefit comes from the running-average policy versus
simply having a warm Persistent Buffer.  Policies compared:

* never cache anything,
* statically cache the family-shared SubGraph,
* cache the most recently served SubNet (state-unaware strawman),
* cache for the modal SubNet of a window (frequency),
* the paper's running-average policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_table
from repro.core.ablations import (
    AblationOutcome,
    CachingPolicy,
    FrequencyPolicy,
    MostRecentPolicy,
    NeverCachePolicy,
    RunningAveragePolicy,
    StaticSharedPolicy,
)
from repro.core.candidates import build_candidate_set
from repro.core.latency_table import LatencyTable
from repro.core.policies import Policy, select_subnet
from repro.serving.query import QueryTrace
from repro.serving.workload import WorkloadGenerator, WorkloadSpec, feasible_ranges_from_table
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.zoo import load_supernet, paper_pareto_subnets


@dataclass(frozen=True)
class AblationResult:
    supernet_name: str
    outcomes: tuple[AblationOutcome, ...]

    def by_name(self) -> dict[str, AblationOutcome]:
        return {o.policy_name: o for o in self.outcomes}


def _serve_with_policy(
    policy: CachingPolicy,
    *,
    subnets,
    table: LatencyTable,
    accel: SushiAccelModel,
    accuracy: AccuracyModel,
    trace: QueryTrace,
    cache_update_period: int,
) -> AblationOutcome:
    pb = accel.make_persistent_buffer()
    cache_idx = 0
    reload_bytes = 0
    latencies, hits = [], []
    for i, query in enumerate(trace):
        subnet_idx = select_subnet(
            table,
            Policy.STRICT_ACCURACY,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            cache_state_idx=cache_idx,
        )
        subnet = subnets[subnet_idx]
        latencies.append(accel.subnet_latency_ms(subnet, pb.cached))
        hits.append(pb.hit_bytes(subnet) / subnet.weight_bytes)
        policy.observe(subnet_idx)
        if (i + 1) % cache_update_period == 0:
            proposal = policy.propose(cache_idx)
            if proposal != cache_idx or pb.occupancy_bytes == 0:
                cache_idx = proposal
                if not isinstance(policy, NeverCachePolicy):
                    reload_bytes += pb.load(table.candidates[cache_idx])
    return AblationOutcome(
        policy_name=policy.name,
        mean_latency_ms=float(np.mean(latencies)),
        mean_byte_hit_ratio=float(np.mean(hits)),
        cache_reload_bytes=reload_bytes,
    )


def run(
    supernet_name: str = "ofa_mobilenetv3",
    *,
    platform: PlatformConfig = ANALYTIC_DEFAULT,
    num_queries: int = 150,
    cache_update_period: int = 4,
    seed: int = 0,
) -> AblationResult:
    supernet = load_supernet(supernet_name)
    subnets = paper_pareto_subnets(supernet)
    accel = SushiAccelModel(platform, with_pb=True)
    accuracy = AccuracyModel(supernet)
    candidates = build_candidate_set(subnets, capacity_bytes=max(accel.pb_capacity_bytes, 1))
    table = LatencyTable.build(subnets, candidates, accel.subnet_latency_ms, accuracy.accuracy)

    acc_range, lat_range = feasible_ranges_from_table(table)
    trace = WorkloadGenerator(
        WorkloadSpec(
            num_queries=num_queries, accuracy_range=acc_range, latency_range_ms=lat_range
        ),
        seed=seed,
    ).generate()

    # The shared SubGraph is well approximated by the smallest SubNet's
    # truncation, which build_candidate_set places first.
    policies: list[CachingPolicy] = [
        NeverCachePolicy(),
        StaticSharedPolicy(fixed_idx=0),
        MostRecentPolicy(subnets, candidates, supernet),
        FrequencyPolicy(subnets, candidates, supernet, window=4 * cache_update_period),
        RunningAveragePolicy(subnets, candidates, supernet, window=cache_update_period),
    ]
    outcomes = [
        _serve_with_policy(
            policy,
            subnets=subnets,
            table=table,
            accel=accel,
            accuracy=accuracy,
            trace=trace,
            cache_update_period=cache_update_period,
        )
        for policy in policies
    ]
    return AblationResult(supernet_name=supernet.name, outcomes=tuple(outcomes))


def report(result: AblationResult) -> str:
    rows = {
        o.policy_name: {
            "mean latency (ms)": o.mean_latency_ms,
            "mean byte hit ratio": o.mean_byte_hit_ratio,
            "cache reload (MB)": o.cache_reload_bytes / 1e6,
        }
        for o in result.outcomes
    }
    return format_table(
        rows, title=f"Ablation — SubGraph caching policies, {result.supernet_name}", precision=3
    )


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
