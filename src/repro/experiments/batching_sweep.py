"""Batching sweep (extension) — throughput/goodput frontier vs batch size.

The paper's core claim is that SGS weight sharing makes many SubNets
servable off one cached SuperNet slice — which is exactly what makes
*batching* cheap: queries co-scheduled on a shared SubNet amortize the
SubNet's weight traffic and the cache load across the batch, at the price
of each member experiencing the whole batch's evaluation time.  This
experiment traces that tradeoff: one diurnal + flash-crowd arrival trace
(the same shape as the autoscaling frontier) served by the same pool at
every ``max_batch`` in the sweep, under both batching policies:

* ``shared_subnet`` — one shared SubNet decision and one accelerator
  evaluation per pickup (weight traffic amortized, at most one cache load);
* ``per_query`` — members keep their own decisions and run back to back in
  one pickup (amortizes only the dispatch overhead — the fair non-sharing
  comparison point).

Every cell is one declarative :class:`ScenarioSpec` (same workload, same
arrival seed, shared latency table via the stack cache) run through
``run_scenario`` — the same path as ``python -m repro serve``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.analysis.reporting import format_table
from repro.core.policies import Policy
from repro.experiments.frontier_autoscale import diurnal_flash_segments
from repro.serving.api import run_scenario
from repro.serving.spec import (
    ArrivalSpec,
    BatchingSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
)
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.workload import WorkloadSpec, feasible_ranges_from_table


@dataclass(frozen=True)
class BatchingPoint:
    """One (batch size, policy) cell of the sweep."""

    label: str
    max_batch: int
    policy: str
    """Batching policy (``shared_subnet`` / ``per_query``)."""
    goodput_per_ms: float
    throughput_per_ms: float
    slo_attainment: float
    drop_rate: float
    mean_batch_occupancy: float
    cache_loads: int
    """Enacted Persistent Buffer loads across the run (from the records)."""
    mean_response_ms: float
    mean_accuracy: float


@dataclass(frozen=True)
class BatchingResult:
    supernet_name: str
    policy: Policy
    num_queries: int
    num_replicas: int
    points: tuple[BatchingPoint, ...]

    def point(self, label: str) -> BatchingPoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(f"no batching point labelled {label!r}")

    def shared_points(self) -> tuple[BatchingPoint, ...]:
        return tuple(p for p in self.points if p.policy == "shared_subnet")


def run(
    supernet_name: str = "ofa_mobilenetv3",
    *,
    policy: Policy = Policy.STRICT_LATENCY,
    num_queries: int = 400,
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8),
    num_replicas: int = 2,
    cache_update_period: int = 16,
    rate_scale: float = 5.0,
    seed: int = 0,
    stack: SushiStack | None = None,
) -> BatchingResult:
    """Sweep ``max_batch`` (both policies) over one bursty overload trace.

    ``rate_scale`` scales the diurnal + flash-crowd trace so the working-day
    plateau already overloads the unbatched pool — the regime where batching
    headroom shows up as goodput instead of idle batch slots.  Latency
    constraints span several multiples of the table's range so batched
    evaluations can still meet SLOs (a constraint tighter than one batch
    evaluation makes batching pointless by construction).
    """
    if stack is None:
        stack = SushiStack(
            SushiStackConfig(
                supernet_name=supernet_name,
                policy=policy,
                cache_update_period=cache_update_period,
                seed=seed,
            )
        )
    else:
        supernet_name = stack.supernet.name
        policy = stack.config.policy
        cache_update_period = stack.config.cache_update_period
    stack_cache = {stack.config: stack}
    unit_ms = float(stack.table.latencies_ms.min())
    segments = tuple(
        (duration, rate * rate_scale)
        for duration, rate in diurnal_flash_segments(unit_ms)
    )
    arrivals = ArrivalSpec(kind="time_varying", segments=segments, seed=seed)
    acc_range, lat_range = feasible_ranges_from_table(stack.table)
    workload = WorkloadSpec(
        num_queries=num_queries,
        accuracy_range=acc_range,
        latency_range_ms=(4.0 * lat_range[0], 8.0 * lat_range[1]),
        pattern="bursty",
    )

    points = []
    for batch_policy in ("shared_subnet", "per_query"):
        for max_batch in batch_sizes:
            if batch_policy == "per_query" and max_batch == 1:
                continue  # identical to shared_subnet B=1 (no batching)
            label = (
                f"B={max_batch}"
                if batch_policy == "shared_subnet"
                else f"B={max_batch}-per-query"
            )
            spec = ScenarioSpec(
                name=f"batching-{label}",
                supernet_name=supernet_name,
                policy=policy,
                cache_update_period=cache_update_period,
                replica_groups=(
                    ReplicaGroupSpec(
                        count=num_replicas,
                        platform=stack.config.platform,
                        candidate_set_size=stack.config.candidate_set_size,
                        seed=stack.config.seed,
                        discipline="edf",
                        batching=BatchingSpec(
                            max_batch=max_batch, policy=batch_policy
                        ),
                    ),
                ),
                router="jsq",
                admission="drop_expired",
                workload=workload,
                arrivals=arrivals,
                seed=seed,
            )
            result = run_scenario(spec, stack_cache=stack_cache)
            points.append(
                BatchingPoint(
                    label=label,
                    max_batch=max_batch,
                    policy=batch_policy,
                    goodput_per_ms=result.goodput_per_ms,
                    throughput_per_ms=result.achieved_throughput_per_ms,
                    slo_attainment=result.slo_attainment,
                    drop_rate=result.drop_rate,
                    mean_batch_occupancy=result.mean_batch_occupancy,
                    cache_loads=sum(
                        1 for r in result.records if r.cache_load_ms > 0
                    ),
                    mean_response_ms=result.mean_response_ms,
                    mean_accuracy=result.mean_accuracy,
                )
            )
    return BatchingResult(
        supernet_name=supernet_name,
        policy=policy,
        num_queries=num_queries,
        num_replicas=num_replicas,
        points=tuple(points),
    )


def report(result: BatchingResult) -> str:
    rows = {}
    for p in result.points:
        rows[p.label] = {
            "policy": p.policy,
            "goodput (/ms)": p.goodput_per_ms,
            "throughput (/ms)": p.throughput_per_ms,
            "SLO attainment": p.slo_attainment,
            "drop rate": p.drop_rate,
            "mean occupancy": p.mean_batch_occupancy,
            "cache loads": p.cache_loads,
            "mean response (ms)": p.mean_response_ms,
            "mean accuracy (%)": 100.0 * p.mean_accuracy,
        }
    return format_table(
        rows,
        title=(
            f"Batched dispatch sweep — {result.supernet_name} "
            f"({result.policy.value}), {result.num_replicas} replicas, "
            f"{result.num_queries} queries, diurnal + flash-crowd overload"
        ),
        precision=3,
    )


def to_jsonable(result: BatchingResult) -> dict:
    """A JSON-safe dump of the sweep (CI gates regressions against this)."""
    return {
        "supernet_name": result.supernet_name,
        "policy": result.policy.value,
        "num_queries": result.num_queries,
        "num_replicas": result.num_replicas,
        "points": [asdict(p) for p in result.points],
    }


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
