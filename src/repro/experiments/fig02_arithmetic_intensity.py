"""Fig. 2 — Arithmetic intensity per convolution layer (ResNet50 & MobV3).

The paper's motivating figure: later layers of both networks have markedly
lower FLOPs/byte, so on bandwidth-constrained platforms they become memory
bound.  We reproduce the per-layer intensity series for the largest SubNet of
each family and report how many layers fall below the analytic platform's
ridge point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.accelerator.roofline import RooflineModel
from repro.analysis.arithmetic_intensity import subnet_arithmetic_intensity_series
from repro.analysis.reporting import format_kv
from repro.supernet.subnet import max_subnet
from repro.supernet.zoo import load_supernet


@dataclass(frozen=True)
class Fig02Result:
    """Per-layer arithmetic intensities for both SuperNet families."""

    series: dict[str, tuple[list[int], list[float]]]
    ridge_point: float
    memory_bound_fraction: dict[str, float]


def run(platform: PlatformConfig = ANALYTIC_DEFAULT) -> Fig02Result:
    ridge = RooflineModel(platform).ridge_point
    series: dict[str, tuple[list[int], list[float]]] = {}
    memory_bound_fraction: dict[str, float] = {}
    for name in ("ofa_resnet50", "ofa_mobilenetv3"):
        supernet = load_supernet(name)
        subnet = max_subnet(supernet)
        ids, values = subnet_arithmetic_intensity_series(subnet)
        series[name] = (ids, values)
        below = sum(1 for v in values if v < ridge)
        memory_bound_fraction[name] = below / len(values) if values else 0.0
    return Fig02Result(
        series=series, ridge_point=ridge, memory_bound_fraction=memory_bound_fraction
    )


def report(result: Fig02Result) -> str:
    lines = [
        "Fig. 2 — arithmetic intensity per conv layer (max SubNet)",
        f"ridge point (FLOPs/byte): {result.ridge_point:.1f}",
    ]
    for name, (ids, values) in result.series.items():
        head = ", ".join(f"{v:.0f}" for v in values[:6])
        tail = ", ".join(f"{v:.0f}" for v in values[-6:])
        lines.append(
            f"{name}: {len(ids)} conv layers, intensity first [{head}] ... last [{tail}]"
        )
    lines.append(
        format_kv(
            {f"{k} fraction memory-bound": v for k, v in result.memory_bound_fraction.items()}
        )
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
