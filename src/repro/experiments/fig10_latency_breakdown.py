"""Fig. 10 — Potential latency reduction with SGS (latency breakdown per SubNet).

For each Pareto SubNet the paper shows two stacked bars — without and with
the Persistent Buffer — decomposed into compute, off-chip iAct/weight/oAct
access and on-chip weight access, at the analytic configuration (19.2 GB/s,
1.296 TFLOPS @ 100 MHz).  The "with PB" bar caches the served SubNet's own
SubGraph (the *potential* of SGS), which removes most of the off-chip weight
component from the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.analytic_model import LatencyComponents, SushiAccelModel
from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_table
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.zoo import load_supernet, paper_pareto_subnets


@dataclass(frozen=True)
class SubNetBars:
    """One SubNet's pair of stacked bars plus its accuracy."""

    label: str
    accuracy_percent: float
    without_pb: LatencyComponents
    with_pb: LatencyComponents

    @property
    def latency_reduction_percent(self) -> float:
        base = self.without_pb.total_ms
        if base <= 0:
            return 0.0
        return 100.0 * (base - self.with_pb.total_ms) / base


@dataclass(frozen=True)
class Fig10Result:
    supernet_name: str
    bars: tuple[SubNetBars, ...]

    @property
    def reduction_range_percent(self) -> tuple[float, float]:
        reductions = [b.latency_reduction_percent for b in self.bars]
        return min(reductions), max(reductions)


def run(
    supernet_name: str = "ofa_resnet50",
    platform: PlatformConfig = ANALYTIC_DEFAULT,
) -> Fig10Result:
    supernet = load_supernet(supernet_name)
    subnets = paper_pareto_subnets(supernet)
    accuracy = AccuracyModel(supernet)
    model = SushiAccelModel(platform, with_pb=True)
    bars = []
    for subnet in subnets:
        without = model.subnet_breakdown(subnet, cached=None).components
        cached = CachedSubGraph.from_subnet(subnet)
        with_pb = model.subnet_breakdown(subnet, cached=cached).components
        bars.append(
            SubNetBars(
                label=subnet.name,
                accuracy_percent=accuracy.accuracy_percent(subnet),
                without_pb=without,
                with_pb=with_pb,
            )
        )
    return Fig10Result(supernet_name=supernet.name, bars=tuple(bars))


def report(result: Fig10Result) -> str:
    rows = {}
    for bar in result.bars:
        for tag, comp in (("w/o PB", bar.without_pb), ("w/ PB", bar.with_pb)):
            rows[f"{bar.label} {tag}"] = {
                "compute_ms": comp.compute_ms,
                "offchip_iact_ms": comp.offchip_iact_ms,
                "offchip_weight_ms": comp.offchip_weight_ms,
                "onchip_weight_ms": comp.onchip_weight_ms,
                "offchip_oact_ms": comp.offchip_oact_ms,
                "total_ms": comp.total_ms,
                "accuracy_%": bar.accuracy_percent,
            }
    lo, hi = result.reduction_range_percent
    title = (
        f"Fig. 10 — latency breakdown, {result.supernet_name} "
        f"(SGS potential reduction {lo:.1f}%..{hi:.1f}%)"
    )
    return format_table(rows, title=title, precision=3)


def main() -> None:  # pragma: no cover
    for name in ("ofa_resnet50", "ofa_mobilenetv3"):
        print(report(run(name)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
