"""Fig. 11 — SGS pushes memory-bound SubNets toward the compute-bound region.

Roofline analysis at the analytic configuration: for each Pareto SubNet we
compute its arithmetic intensity and attainable TFLOPS without caching and
with its own SubGraph cached (the SGS roofline view, equivalent to a virtual
bandwidth improvement).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.accelerator.roofline import RooflineModel, RooflinePoint
from repro.analysis.reporting import format_table
from repro.supernet.zoo import load_supernet, paper_pareto_subnets


@dataclass(frozen=True)
class Fig11Result:
    supernet_name: str
    ridge_point: float
    peak_tflops: float
    baseline_points: tuple[RooflinePoint, ...]
    sgs_points: tuple[RooflinePoint, ...]

    @property
    def intensity_gain(self) -> list[float]:
        """Multiplicative arithmetic-intensity improvement per SubNet."""
        return [
            sgs.arithmetic_intensity / base.arithmetic_intensity
            for base, sgs in zip(self.baseline_points, self.sgs_points)
        ]


def run(
    supernet_name: str = "ofa_resnet50",
    platform: PlatformConfig = ANALYTIC_DEFAULT,
) -> Fig11Result:
    supernet = load_supernet(supernet_name)
    subnets = paper_pareto_subnets(supernet)
    roofline = RooflineModel(platform)
    baseline = [roofline.subnet_point(sn) for sn in subnets]
    sgs = [
        roofline.subnet_point(sn, CachedSubGraph.from_subnet(sn), label=f"{sn.name}+SGS")
        for sn in subnets
    ]
    return Fig11Result(
        supernet_name=supernet.name,
        ridge_point=roofline.ridge_point,
        peak_tflops=roofline.peak_tflops,
        baseline_points=tuple(baseline),
        sgs_points=tuple(sgs),
    )


def report(result: Fig11Result) -> str:
    rows = {}
    for base, sgs in zip(result.baseline_points, result.sgs_points):
        rows[base.label] = {
            "AI (FLOPs/B)": base.arithmetic_intensity,
            "AI w/ SGS": sgs.arithmetic_intensity,
            "TFLOPS": base.attainable_tflops,
            "TFLOPS w/ SGS": sgs.attainable_tflops,
            "compute-bound": base.is_compute_bound,
            "compute-bound w/ SGS": sgs.is_compute_bound,
        }
    title = (
        f"Fig. 11 — roofline, {result.supernet_name} "
        f"(ridge {result.ridge_point:.1f} FLOPs/B, peak {result.peak_tflops:.2f} TFLOPS)"
    )
    return format_table(rows, title=title, precision=2)


def main() -> None:  # pragma: no cover
    for name in ("ofa_resnet50", "ofa_mobilenetv3"):
        print(report(run(name)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
