"""Fig. 12 — Design-space exploration: SGS latency saving vs hardware knobs.

Sweeps Persistent Buffer size, off-chip bandwidth and compute throughput and
reports the time-save percentage of SushiAccel w/ PB over w/o PB for each
configuration.  The expected trends (paper Fig. 12): larger PB, higher
throughput and *lower* bandwidth all increase the saving, and MobileNetV3
benefits less than ResNet50 because of its depthwise layers and smaller reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.accelerator.dse import DesignPoint, DesignSpaceExplorer
from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_table
from repro.supernet.zoo import load_supernet, paper_pareto_subnets

#: Default sweep grids (KB, GB/s, MACs/cycle).
DEFAULT_PB_KB: tuple[float, ...] = (256, 512, 1024, 1728, 3456, 6912)
DEFAULT_BANDWIDTH_GBPS: tuple[float, ...] = (9.6, 19.2, 38.4)
DEFAULT_MACS_PER_CYCLE: tuple[int, ...] = (1296, 2592, 6480)


@dataclass(frozen=True)
class Fig12Result:
    supernet_name: str
    points: tuple[DesignPoint, ...]

    def best(self) -> DesignPoint:
        return max(self.points, key=lambda p: p.time_save_percent)

    def max_time_save_percent(self) -> float:
        return self.best().time_save_percent


def run(
    supernet_name: str = "ofa_resnet50",
    *,
    platform: PlatformConfig = ANALYTIC_DEFAULT,
    pb_kb_values: Sequence[float] = DEFAULT_PB_KB,
    bandwidth_values_gbps: Sequence[float] = DEFAULT_BANDWIDTH_GBPS,
    macs_per_cycle_values: Sequence[int] = DEFAULT_MACS_PER_CYCLE,
) -> Fig12Result:
    supernet = load_supernet(supernet_name)
    subnets = paper_pareto_subnets(supernet)
    explorer = DesignSpaceExplorer(subnets, base_platform=platform)
    points = explorer.sweep(
        pb_kb_values=pb_kb_values,
        bandwidth_values_gbps=bandwidth_values_gbps,
        macs_per_cycle_values=macs_per_cycle_values,
    )
    return Fig12Result(supernet_name=supernet.name, points=tuple(points))


def report(result: Fig12Result) -> str:
    rows = {}
    for p in result.points:
        key = f"PB={p.pb_kb:.0f}KB BW={p.bandwidth_gbps:.1f}GB/s MACs={p.macs_per_cycle}"
        rows[key] = {
            "lat w/o PB (ms)": p.mean_latency_no_pb_ms,
            "lat w/ PB (ms)": p.mean_latency_with_pb_ms,
            "time save %": p.time_save_percent,
        }
    best = result.best()
    title = (
        f"Fig. 12 — DSE, {result.supernet_name} "
        f"(best saving {best.time_save_percent:.1f}% at PB={best.pb_kb:.0f}KB, "
        f"BW={best.bandwidth_gbps:.1f}GB/s, MACs={best.macs_per_cycle})"
    )
    return format_table(rows, title=title, precision=2)


def main() -> None:  # pragma: no cover
    for name in ("ofa_resnet50", "ofa_mobilenetv3"):
        print(report(run(name)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
