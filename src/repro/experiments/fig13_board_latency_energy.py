"""Fig. 13 — Real-board latency and off-chip energy for ResNet50 SubNets.

Reproduces the comparison of CPU, SushiAccel on ZCU104 (w/o and w/ PB) and
SushiAccel on Alveo U50 (w/o and w/ PB), on the ResNet50 Pareto family.
Following Section 5.4 the accelerator runs the 3x3 convolution layers of the
network; energy is estimated from off-chip DRAM traffic (Fig. 13b compares
the w/o-PB and w/-PB off-chip access energy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.cpu_model import CPUModel
from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.accelerator.platforms import ALVEO_U50, ZCU104, PlatformConfig
from repro.analysis.reporting import format_table
from repro.supernet.layers import ConvLayerSpec, LayerKind
from repro.supernet.zoo import load_supernet, paper_pareto_subnets


def _is_3x3_conv(layer: ConvLayerSpec) -> bool:
    return layer.kind == LayerKind.CONV and layer.kernel_size == 3


@dataclass(frozen=True)
class BoardRow:
    """Latencies (ms) and off-chip energies (mJ) of one SubNet on every target."""

    label: str
    cpu_ms: float
    zcu104_ms: dict[str, float]
    alveo_ms: dict[str, float]
    zcu104_energy_mj: dict[str, float]

    def speedup_over_cpu(self, board: str, variant: str) -> float:
        latency = self.zcu104_ms[variant] if board == "zcu104" else self.alveo_ms[variant]
        return self.cpu_ms / latency

    def energy_saving_percent(self) -> float:
        base = self.zcu104_energy_mj["w/o PB"]
        if base <= 0:
            return 0.0
        return 100.0 * (base - self.zcu104_energy_mj["w/ PB"]) / base


@dataclass(frozen=True)
class Fig13Result:
    supernet_name: str
    rows: tuple[BoardRow, ...]

    def speedup_range(self, board: str, variant: str) -> tuple[float, float]:
        speeds = [r.speedup_over_cpu(board, variant) for r in self.rows]
        return min(speeds), max(speeds)

    def energy_saving_range_percent(self) -> tuple[float, float]:
        savings = [r.energy_saving_percent() for r in self.rows]
        return min(savings), max(savings)


def run(
    supernet_name: str = "ofa_resnet50",
    *,
    zcu104: PlatformConfig = ZCU104,
    alveo: PlatformConfig = ALVEO_U50,
    conv3x3_only: bool = True,
) -> Fig13Result:
    supernet = load_supernet(supernet_name)
    subnets = paper_pareto_subnets(supernet)
    layer_filter = _is_3x3_conv if conv3x3_only else None
    cpu = CPUModel()
    models = {
        "zcu104": {
            "w/o PB": SushiAccelModel(zcu104, with_pb=False),
            "w/ PB": SushiAccelModel(zcu104, with_pb=True),
        },
        "alveo": {
            "w/o PB": SushiAccelModel(alveo, with_pb=False),
            "w/ PB": SushiAccelModel(alveo, with_pb=True),
        },
    }
    rows = []
    for subnet in subnets:
        # The SubGraph offered for caching covers the layers actually being
        # run (the 3x3 convolutions), mirroring the paper's board experiment.
        if conv3x3_only:
            slices = {
                name: sl
                for name, sl in subnet.layer_slices.items()
                if _is_3x3_conv(sl.layer)
            }
            cached = CachedSubGraph(name=f"sg3x3({subnet.name})", slices=slices)
        else:
            cached = CachedSubGraph.from_subnet(subnet)
        if conv3x3_only:
            cpu_ms = cpu.framework_overhead_ms + sum(
                cpu.layer_latency_ms(layer)
                for layer in subnet.active_layers()
                if _is_3x3_conv(layer)
            )
        else:
            cpu_ms = cpu.subnet_latency_ms(subnet)

        def _latency(model: SushiAccelModel, use_cache: bool) -> float:
            pb = model.make_persistent_buffer()
            fitted = pb.fit_subgraph(cached) if use_cache else None
            return model.subnet_breakdown(
                subnet, cached=fitted, layer_filter=layer_filter
            ).latency_ms

        def _energy(model: SushiAccelModel, use_cache: bool) -> float:
            pb = model.make_persistent_buffer()
            fitted = pb.fit_subgraph(cached) if use_cache else None
            return model.subnet_breakdown(
                subnet, cached=fitted, layer_filter=layer_filter
            ).offchip_energy_mj

        rows.append(
            BoardRow(
                label=subnet.name,
                cpu_ms=cpu_ms,
                zcu104_ms={
                    "w/o PB": _latency(models["zcu104"]["w/o PB"], False),
                    "w/ PB": _latency(models["zcu104"]["w/ PB"], True),
                },
                alveo_ms={
                    "w/o PB": _latency(models["alveo"]["w/o PB"], False),
                    "w/ PB": _latency(models["alveo"]["w/ PB"], True),
                },
                zcu104_energy_mj={
                    "w/o PB": _energy(models["zcu104"]["w/o PB"], False),
                    "w/ PB": _energy(models["zcu104"]["w/ PB"], True),
                },
            )
        )
    return Fig13Result(supernet_name=supernet.name, rows=tuple(rows))


def report(result: Fig13Result) -> str:
    rows = {}
    for r in result.rows:
        rows[r.label] = {
            "CPU (ms)": r.cpu_ms,
            "ZCU104 w/o PB": r.zcu104_ms["w/o PB"],
            "ZCU104 w/ PB": r.zcu104_ms["w/ PB"],
            "AlveoU50 w/o PB": r.alveo_ms["w/o PB"],
            "AlveoU50 w/ PB": r.alveo_ms["w/ PB"],
            "ZCU104 E w/o PB (mJ)": r.zcu104_energy_mj["w/o PB"],
            "ZCU104 E w/ PB (mJ)": r.zcu104_energy_mj["w/ PB"],
            "E saving %": r.energy_saving_percent(),
        }
    zlo, zhi = result.speedup_range("zcu104", "w/ PB")
    alo, ahi = result.speedup_range("alveo", "w/ PB")
    elo, ehi = result.energy_saving_range_percent()
    title = (
        f"Fig. 13 — board latency/energy, {result.supernet_name} (3x3 convs): "
        f"ZCU104 speedup {zlo:.2f}x..{zhi:.2f}x, Alveo {alo:.2f}x..{ahi:.2f}x, "
        f"off-chip energy saving {elo:.0f}%..{ehi:.0f}%"
    )
    return format_table(rows, title=title, precision=2)


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
