"""Fig. 14 — Per-layer latency of SushiAccel (w/o PB) vs the Xilinx DPU.

The paper runs the 3x3 convolution layers of ResNet50's *minimum* SubNet on
both accelerators (ZCU104) and reports a ~25 % geometric-mean speedup for
SushiAccel, with the DPU winning on a few layers whose large spatial extents
favour its X/Y parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.dpu_model import XilinxDPUModel
from repro.accelerator.platforms import ZCU104, PlatformConfig
from repro.analysis.comparison import geometric_mean_speedup
from repro.analysis.reporting import format_table
from repro.supernet.layers import ConvLayerSpec, LayerKind
from repro.supernet.zoo import load_supernet, paper_pareto_subnets


def _is_3x3_conv(layer: ConvLayerSpec) -> bool:
    return layer.kind == LayerKind.CONV and layer.kernel_size == 3


@dataclass(frozen=True)
class LayerComparison:
    layer_name: str
    dpu_ms: float
    sushi_ms: float

    @property
    def speedup(self) -> float:
        return self.dpu_ms / self.sushi_ms


@dataclass(frozen=True)
class Fig14Result:
    layers: tuple[LayerComparison, ...]
    geomean_speedup: float

    @property
    def geomean_speedup_percent(self) -> float:
        return 100.0 * (self.geomean_speedup - 1.0)

    @property
    def num_layers_dpu_wins(self) -> int:
        return sum(1 for l in self.layers if l.speedup < 1.0)


def run(platform: PlatformConfig = ZCU104) -> Fig14Result:
    supernet = load_supernet("ofa_resnet50")
    min_subnet = paper_pareto_subnets(supernet)[0]
    dpu = XilinxDPUModel()
    sushi = SushiAccelModel(platform, with_pb=False)
    dram = sushi.dram
    comparisons = []
    for layer in min_subnet.active_layers():
        if not _is_3x3_conv(layer):
            continue
        dpu_ms = dpu.layer_latency_ms(layer)
        from repro.accelerator.dataflow import layer_latency

        ll = layer_latency(
            layer,
            sushi.dpe,
            dram,
            sb_capacity_bytes=sushi.buffers["SB"].capacity_bytes,
            ob_capacity_bytes=sushi.buffers["OB"].capacity_bytes,
            weight_overlap_fraction=sushi.weight_overlap_fraction,
        )
        sushi_ms = dram.cycles_to_ms(ll.total_cycles)
        comparisons.append(
            LayerComparison(layer_name=layer.name, dpu_ms=dpu_ms, sushi_ms=sushi_ms)
        )
    geomean = geometric_mean_speedup(
        [c.dpu_ms for c in comparisons], [c.sushi_ms for c in comparisons]
    )
    return Fig14Result(layers=tuple(comparisons), geomean_speedup=geomean)


def report(result: Fig14Result) -> str:
    rows = {
        c.layer_name: {
            "Xilinx DPU (ms)": c.dpu_ms,
            "SushiAccel w/o PB (ms)": c.sushi_ms,
            "speedup": c.speedup,
        }
        for c in result.layers
    }
    title = (
        f"Fig. 14 — SushiAccel vs Xilinx DPU on ResNet50 min-SubNet 3x3 convs "
        f"(geomean speedup {result.geomean_speedup_percent:.1f}%, "
        f"DPU wins {result.num_layers_dpu_wins}/{len(result.layers)} layers)"
    )
    return format_table(rows, title=title, precision=3)


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
