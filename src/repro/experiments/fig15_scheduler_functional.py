"""Fig. 15 — SushiSched functional evaluation: serve strictly better constraints.

For a stream of random queries, the paper plots served latency against the
latency constraint (STRICT_LATENCY policy: almost all points below the y=x
line) and served accuracy against the accuracy constraint (STRICT_ACCURACY
policy: all points above y=x).  We reproduce both scatter series for both
SuperNet families and report the fraction of queries that satisfy their hard
constraint.

Serving flows through the discrete-event engine's closed loop (one query at
a time, rho → 0), i.e. each query is scheduled at dispatch time with its full
latency budget — the zero-queueing limit of the open-loop engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_kv
from repro.core.policies import Policy
from repro.serving.runner import ExperimentRunner


@dataclass(frozen=True)
class ScatterSeries:
    """Paired (constraint, served) values for one policy."""

    policy: Policy
    constraints: tuple[float, ...]
    served: tuple[float, ...]

    @property
    def satisfied_fraction(self) -> float:
        """Fraction of points on the correct side of the y = x line."""
        if self.policy == Policy.STRICT_LATENCY:
            ok = sum(s <= c for c, s in zip(self.constraints, self.served))
        else:
            ok = sum(s >= c for c, s in zip(self.constraints, self.served))
        return ok / len(self.constraints)


@dataclass(frozen=True)
class Fig15Result:
    supernet_name: str
    latency_series: ScatterSeries
    accuracy_series: ScatterSeries


def run(
    supernet_name: str = "ofa_resnet50",
    *,
    platform: PlatformConfig = ANALYTIC_DEFAULT,
    num_queries: int = 200,
    seed: int = 0,
) -> Fig15Result:
    # STRICT_LATENCY run: served latency vs latency constraint.
    lat_runner = ExperimentRunner(
        supernet_name, platform=platform, policy=Policy.STRICT_LATENCY, seed=seed
    )
    trace = lat_runner.default_workload(num_queries=num_queries, seed=seed)
    lat_records = lat_runner.run(trace)["sushi"].records
    latency_series = ScatterSeries(
        policy=Policy.STRICT_LATENCY,
        constraints=tuple(r.latency_constraint_ms for r in lat_records),
        served=tuple(r.served_latency_ms for r in lat_records),
    )
    # STRICT_ACCURACY run: served accuracy vs accuracy constraint.
    acc_runner = ExperimentRunner(
        supernet_name, platform=platform, policy=Policy.STRICT_ACCURACY, seed=seed
    )
    acc_records = acc_runner.run(trace)["sushi"].records
    accuracy_series = ScatterSeries(
        policy=Policy.STRICT_ACCURACY,
        constraints=tuple(r.accuracy_constraint for r in acc_records),
        served=tuple(r.served_accuracy for r in acc_records),
    )
    return Fig15Result(
        supernet_name=supernet_name,
        latency_series=latency_series,
        accuracy_series=accuracy_series,
    )


def report(result: Fig15Result) -> str:
    return format_kv(
        {
            "queries": len(result.latency_series.constraints),
            "latency constraint satisfied (STRICT_LATENCY)": result.latency_series.satisfied_fraction,
            "accuracy constraint satisfied (STRICT_ACCURACY)": result.accuracy_series.satisfied_fraction,
        },
        title=f"Fig. 15 — SushiSched functional evaluation, {result.supernet_name}",
    )


def main() -> None:  # pragma: no cover
    for name in ("ofa_resnet50", "ofa_mobilenetv3"):
        print(report(run(name)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
