"""Fig. 16 / Section 5.7 — End-to-end SUSHI vs baselines on random queries.

Serves the same random query stream through No-SUSHI (no PB, no scheduler),
SUSHI w/o scheduler (state-unaware caching) and full SUSHI, and reports the
served latency/accuracy points plus the headline improvements (the paper:
up to 25 % latency reduction and up to 0.98 % served-accuracy increase).

All three systems serve per-query through the discrete-event engine's closed
loop (the rho → 0 configuration), so these records are directly comparable
with the open-loop load sweeps that share the same dispatch path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_table
from repro.core.policies import Policy
from repro.serving.runner import ComparisonSummary, ExperimentRunner, StreamResult


@dataclass(frozen=True)
class Fig16Result:
    supernet_name: str
    policy: Policy
    results: dict[str, StreamResult]
    summary: ComparisonSummary


def run(
    supernet_name: str = "ofa_resnet50",
    *,
    platform: PlatformConfig = ANALYTIC_DEFAULT,
    policy: Policy = Policy.STRICT_ACCURACY,
    num_queries: int = 200,
    cache_update_period: int = 4,
    seed: int = 0,
) -> Fig16Result:
    runner = ExperimentRunner(
        supernet_name,
        platform=platform,
        policy=policy,
        cache_update_period=cache_update_period,
        seed=seed,
    )
    trace = runner.default_workload(num_queries=num_queries, seed=seed)
    results, summary = runner.compare(trace)
    return Fig16Result(
        supernet_name=supernet_name, policy=policy, results=results, summary=summary
    )


def report(result: Fig16Result) -> str:
    rows = {}
    for name, stream in result.results.items():
        m = stream.metrics
        rows[name] = {
            "mean latency (ms)": m.mean_latency_ms,
            "p99 latency (ms)": m.p99_latency_ms,
            "mean accuracy (%)": 100.0 * m.mean_accuracy,
            "latency SLO attainment": m.latency_slo_attainment,
            "off-chip energy (mJ)": m.total_offchip_energy_mj,
            "cache hit ratio": m.mean_cache_hit_ratio,
        }
    s = result.summary
    title = (
        f"Fig. 16 — end-to-end, {result.supernet_name} ({result.policy.value}): "
        f"latency -{s.latency_improvement_vs_no_sushi_percent:.1f}% vs No-SUSHI, "
        f"accuracy +{s.accuracy_improvement_points:.2f} pts, "
        f"off-chip energy -{s.energy_saving_vs_no_sushi_percent:.1f}%"
    )
    return format_table(rows, title=title, precision=3)


def main() -> None:  # pragma: no cover
    for name in ("ofa_resnet50", "ofa_mobilenetv3"):
        for policy in (Policy.STRICT_ACCURACY, Policy.STRICT_LATENCY):
            print(report(run(name, policy=policy)))
            print()


if __name__ == "__main__":  # pragma: no cover
    main()
