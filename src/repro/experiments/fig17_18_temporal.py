"""Fig. 17/18 (Appendix A.1) — Temporal analysis of SubGraph caching.

Sweeps the caching window ``Q`` (how many queries the running average is
amortized over) and reports the resulting mean served latency and accuracy.
The paper finds a sweet spot: very frequent updates pay the cache-reload cost
too often, very stale windows lose temporal locality (best around Q=4-8 for
ResNet50 and Q~10 for MobileNetV3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_table
from repro.core.metrics import ServingMetrics
from repro.core.policies import Policy
from repro.serving.runner import ExperimentRunner

DEFAULT_WINDOWS: tuple[int, ...] = (1, 2, 4, 8, 10, 15)


@dataclass(frozen=True)
class WindowResult:
    window: int
    metrics: ServingMetrics
    amortized_latency_ms: float
    """Mean served latency with the per-query share of cache reload added."""


@dataclass(frozen=True)
class Fig17Result:
    supernet_name: str
    windows: tuple[WindowResult, ...]

    def best_window(self) -> int:
        """Window with the lowest cache-reload-amortized latency."""
        return min(self.windows, key=lambda w: w.amortized_latency_ms).window


def run(
    supernet_name: str = "ofa_resnet50",
    *,
    platform: PlatformConfig = ANALYTIC_DEFAULT,
    policy: Policy = Policy.STRICT_ACCURACY,
    windows: Sequence[int] = DEFAULT_WINDOWS,
    num_queries: int = 200,
    seed: int = 0,
) -> Fig17Result:
    results = []
    for window in windows:
        runner = ExperimentRunner(
            supernet_name,
            platform=platform,
            policy=policy,
            cache_update_period=window,
            seed=seed,
        )
        trace = runner.default_workload(num_queries=num_queries, seed=seed)
        stream = runner.run(trace)["sushi"]
        metrics = stream.metrics
        amortized = metrics.mean_latency_ms + metrics.total_cache_load_ms / metrics.num_queries
        results.append(
            WindowResult(window=window, metrics=metrics, amortized_latency_ms=amortized)
        )
    return Fig17Result(supernet_name=supernet_name, windows=tuple(results))


def report(result: Fig17Result) -> str:
    rows = {
        f"Q={w.window}": {
            "mean latency (ms)": w.metrics.mean_latency_ms,
            "amortized latency (ms)": w.amortized_latency_ms,
            "mean accuracy (%)": 100.0 * w.metrics.mean_accuracy,
            "cache hit ratio": w.metrics.mean_cache_hit_ratio,
            "cache reload total (ms)": w.metrics.total_cache_load_ms,
        }
        for w in result.windows
    }
    title = (
        f"Fig. 17/18 — temporal analysis, {result.supernet_name} "
        f"(best window Q={result.best_window()})"
    )
    return format_table(rows, title=title, precision=3)


def main() -> None:  # pragma: no cover
    for name in ("ofa_resnet50", "ofa_mobilenetv3"):
        print(report(run(name)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
