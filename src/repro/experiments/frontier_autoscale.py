"""Frontier sweep (extension) — SLO attainment vs replica-seconds cost.

The production question behind the paper's motivation: serving bursty
traffic, how much capacity do you pay for a given SLO attainment?  A static
pool must be sized for the peak and idles through the quiet hours; an
autoscaler rides the diurnal curve but reacts late to flash crowds.  This
experiment sweeps both over one diurnal + flash-crowd arrival trace and
reports every (SLO attainment, replica-seconds) point:

* **static** pools of 1..N replicas — the baseline frontier,
* **reactive** autoscaling at several queue-depth thresholds,
* **target-utilization** autoscaling at several set-points,
* a **scheduled oracle** provisioned from the known trace — the
  clairvoyant bound.

Every cell is one declarative :class:`ScenarioSpec` (same workload, same
arrival seed, shared latency table via the stack cache) run through
``run_scenario`` — the same path as ``python -m repro serve``.  Points on
the Pareto frontier (no other point has both higher attainment and lower
cost) are starred in the report.
"""

from __future__ import annotations

import math
import re
from dataclasses import asdict, dataclass

from repro.analysis.reporting import format_table
from repro.core.policies import Policy
from repro.serving.api import run_scenario
from repro.serving.spec import (
    ArrivalSpec,
    AutoscalerSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
)
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.workload import WorkloadSpec, feasible_ranges_from_table


@dataclass(frozen=True)
class FrontierPoint:
    """One serving configuration on the SLO-vs-cost plane."""

    label: str
    kind: str
    """``static`` / ``reactive`` / ``target_utilization`` / ``scheduled``."""
    slo_attainment: float
    replica_seconds: float
    mean_replicas: float
    peak_replicas: int
    drop_rate: float
    mean_accuracy: float
    startup_delay_ms: float = 0.0
    """Cold-start delay of the scaled group (0: instant scale-up)."""
    weighted_replica_seconds: float = 0.0
    """Cost weighted by each replica's tier price (== replica_seconds for
    homogeneous weight-1.0 pools)."""
    group_costs: tuple[tuple[str, float, float], ...] = ()
    """Per replica group: (label, cost_weight, replica_seconds consumed) —
    kept in the JSON artifact so frontiers stay comparable across PRs as
    pools grow heterogeneous."""
    scaling_events: tuple = ()
    """The autoscaler's full :class:`ScalingEvent` log (empty for static
    pools) — kept in the JSON artifact so every point carries the control
    decisions (group, policy desired size, clamps, budget trims) that
    produced its frontier position."""


@dataclass(frozen=True)
class FrontierResult:
    supernet_name: str
    policy: Policy
    num_queries: int
    points: tuple[FrontierPoint, ...]

    def static_points(self) -> tuple[FrontierPoint, ...]:
        return tuple(p for p in self.points if p.kind == "static")

    def point(self, label: str) -> FrontierPoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(f"no frontier point labelled {label!r}")

    def best_static_within_cost(self, budget_replica_seconds: float) -> FrontierPoint:
        """The best-attaining static pool not exceeding a cost budget."""
        affordable = [
            p
            for p in self.static_points()
            if p.replica_seconds <= budget_replica_seconds
        ]
        if not affordable:
            raise ValueError(
                f"no static pool fits {budget_replica_seconds:.2f} replica-seconds"
            )
        return max(affordable, key=lambda p: p.slo_attainment)

    def pareto(self) -> tuple[FrontierPoint, ...]:
        """Points no other point dominates (higher attainment, lower cost)."""
        out = []
        for p in self.points:
            dominated = any(
                (q.slo_attainment > p.slo_attainment and q.replica_seconds <= p.replica_seconds)
                or (q.slo_attainment >= p.slo_attainment and q.replica_seconds < p.replica_seconds)
                for q in self.points
            )
            if not dominated:
                out.append(p)
        return tuple(sorted(out, key=lambda p: p.replica_seconds))


def group_costs(spec, result) -> tuple[tuple[str, float, float], ...]:
    """Per replica group: (label, cost_weight, replica-seconds consumed).

    Replicas are attributed to groups by name (the facade names a group's
    replicas ``{name}-{i}`` with an integer position, matched exactly so
    a group named ``pool`` never absorbs ``pool-b``'s replicas); an
    unnamed group in a single-group scenario owns the whole pool.
    """
    out = []
    for gidx, group in enumerate(spec.replica_groups):
        label = group.name or f"group{gidx}"
        if group.name is not None:
            member = re.compile(re.escape(group.name) + r"-\d+\Z")
            cost_ms = sum(
                s.active_ms
                for s in result.replica_stats
                if member.match(s.name)
            )
        elif len(spec.replica_groups) == 1:
            cost_ms = result.total_replica_active_ms
        else:  # pragma: no cover - unnamed groups in multi-group scenarios
            cost_ms = float("nan")
        out.append((label, group.cost_weight, cost_ms / 1000.0))
    return tuple(out)


def diurnal_flash_segments(
    unit_ms: float, *, cycles_hint: float = 1.0
) -> tuple[tuple[float, float], ...]:
    """One diurnal day with a flash crowd, in units of the fastest service.

    ``unit_ms`` is the latency table's fastest service time; rates are
    expressed as multiples of one replica's peak capacity (``1/unit_ms``),
    so the same shape stresses any platform identically: a quiet night at
    0.3x, a working day at 1.3x (one replica already saturated), a short
    flash crowd at 4x, then back to the day level.
    """
    day = (
        (300.0 * unit_ms * cycles_hint, 0.3 / unit_ms),
        (150.0 * unit_ms * cycles_hint, 1.3 / unit_ms),
        (50.0 * unit_ms * cycles_hint, 4.0 / unit_ms),
        (150.0 * unit_ms * cycles_hint, 1.3 / unit_ms),
    )
    return day


def _scenario(
    *,
    name: str,
    supernet_name: str,
    policy: Policy,
    stack: SushiStack,
    workload: WorkloadSpec,
    arrivals: ArrivalSpec,
    count: int,
    autoscaler: AutoscalerSpec | None,
    seed: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        supernet_name=supernet_name,
        policy=policy,
        cache_update_period=stack.config.cache_update_period,
        replica_groups=(
            ReplicaGroupSpec(
                count=count,
                platform=stack.config.platform,
                candidate_set_size=stack.config.candidate_set_size,
                seed=stack.config.seed,
                discipline="edf",
                name="pool",
            ),
        ),
        router="jsq",
        admission="drop_expired",
        workload=workload,
        arrivals=arrivals,
        autoscaler=autoscaler,
        seed=seed,
    )


def run(
    supernet_name: str = "ofa_mobilenetv3",
    *,
    policy: Policy = Policy.STRICT_LATENCY,
    num_queries: int = 600,
    static_counts: tuple[int, ...] = (1, 2, 3, 4, 6),
    reactive_queue_thresholds: tuple[float, ...] = (2.0, 4.0),
    utilization_targets: tuple[float, ...] = (0.45, 0.65),
    max_replicas: int = 6,
    seed: int = 0,
    stack: SushiStack | None = None,
) -> FrontierResult:
    """Sweep static pools and autoscaling policies over one bursty trace.

    The arrival trace is a diurnal day with a flash crowd
    (:func:`diurnal_flash_segments`), cycling until ``num_queries`` are
    drawn.  All cells share the trace, the workload constraints, and one
    latency table (via the stack cache), so the only variable is the
    provisioning strategy.
    """
    if stack is None:
        stack = SushiStack(
            SushiStackConfig(
                supernet_name=supernet_name,
                policy=policy,
                seed=seed,
            )
        )
    else:
        supernet_name = stack.supernet.name
        policy = stack.config.policy
    stack_cache = {stack.config: stack}
    unit_ms = float(stack.table.latencies_ms.min())
    segments = diurnal_flash_segments(unit_ms)
    arrivals = ArrivalSpec(kind="time_varying", segments=segments, seed=seed)
    acc_range, lat_range = feasible_ranges_from_table(stack.table)
    workload = WorkloadSpec(
        num_queries=num_queries,
        accuracy_range=acc_range,
        latency_range_ms=lat_range,
        pattern="bursty",
    )
    control_interval = 20.0 * unit_ms
    common = dict(
        supernet_name=supernet_name,
        policy=policy,
        stack=stack,
        workload=workload,
        arrivals=arrivals,
        seed=seed,
    )

    cells: list[tuple[str, str, ScenarioSpec]] = []
    for n in static_counts:
        cells.append(
            (
                f"static-{n}",
                "static",
                _scenario(name=f"static-{n}", count=n, autoscaler=None, **common),
            )
        )
    base_auto = dict(
        control_interval_ms=control_interval,
        min_replicas=1,
        max_replicas=max_replicas,
        down_cooldown_ms=2.0 * control_interval,
    )
    for q in reactive_queue_thresholds:
        auto = AutoscalerSpec(
            policy="reactive", max_queue_per_replica=q, **base_auto
        )
        cells.append(
            (
                f"reactive-q{q:g}",
                "reactive",
                _scenario(
                    name=f"reactive-q{q:g}", count=1, autoscaler=auto, **common
                ),
            )
        )
    for target in utilization_targets:
        auto = AutoscalerSpec(
            policy="target_utilization", target_utilization=target, **base_auto
        )
        cells.append(
            (
                f"target-u{target:g}",
                "target_utilization",
                _scenario(
                    name=f"target-u{target:g}", count=1, autoscaler=auto, **common
                ),
            )
        )
    # The oracle plan: provision each segment for its offered load (rate x
    # fastest service, padded 30% for constraint mix and arrival noise),
    # cycling with the trace's period.
    t, plan = 0.0, []
    for duration, rate in segments:
        plan.append((t, max(1, min(max_replicas, math.ceil(1.3 * rate * unit_ms)))))
        t += duration
    auto = AutoscalerSpec(
        policy="scheduled",
        schedule=tuple(plan),
        period_ms=t,
        **base_auto,
    )
    cells.append(
        (
            "oracle-schedule",
            "scheduled",
            _scenario(
                name="oracle-schedule",
                count=plan[0][1],
                autoscaler=auto,
                **common,
            ),
        )
    )

    points = []
    for label, kind, spec in cells:
        result = run_scenario(spec, stack_cache=stack_cache)
        report = result.autoscale
        points.append(
            FrontierPoint(
                label=label,
                kind=kind,
                slo_attainment=result.slo_attainment,
                replica_seconds=result.replica_seconds,
                mean_replicas=result.mean_active_replicas,
                peak_replicas=(
                    len(result.replica_stats)
                    if report is None
                    else report.peak_replicas
                ),
                drop_rate=result.drop_rate,
                mean_accuracy=result.mean_accuracy,
                startup_delay_ms=(
                    0.0
                    if spec.autoscaler is None
                    else max(g.startup_delay_ms for g in spec.scaled_groups())
                ),
                weighted_replica_seconds=result.weighted_replica_seconds,
                group_costs=group_costs(spec, result),
                scaling_events=() if report is None else report.events,
            )
        )
    return FrontierResult(
        supernet_name=supernet_name,
        policy=policy,
        num_queries=num_queries,
        points=tuple(points),
    )


def trace_scenario(
    supernet_name: str = "ofa_mobilenetv3",
    *,
    policy: Policy = Policy.STRICT_LATENCY,
    num_queries: int = 600,
    seed: int = 0,
) -> ScenarioSpec:
    """The cell ``repro run frontier_autoscale --trace`` flight-records.

    One reactive autoscaling cell of the sweep (queue threshold 2) over the
    same diurnal + flash-crowd trace — the configuration whose scale-up
    lag and drop clusters the recorder's decision explanations are built
    to make visible.
    """
    stack = SushiStack(
        SushiStackConfig(supernet_name=supernet_name, policy=policy, seed=seed)
    )
    unit_ms = float(stack.table.latencies_ms.min())
    acc_range, lat_range = feasible_ranges_from_table(stack.table)
    control_interval = 20.0 * unit_ms
    return _scenario(
        name="reactive-q2",
        supernet_name=supernet_name,
        policy=policy,
        stack=stack,
        workload=WorkloadSpec(
            num_queries=num_queries,
            accuracy_range=acc_range,
            latency_range_ms=lat_range,
            pattern="bursty",
        ),
        arrivals=ArrivalSpec(
            kind="time_varying",
            segments=diurnal_flash_segments(unit_ms),
            seed=seed,
        ),
        count=1,
        autoscaler=AutoscalerSpec(
            policy="reactive",
            max_queue_per_replica=2.0,
            control_interval_ms=control_interval,
            min_replicas=1,
            max_replicas=6,
            down_cooldown_ms=2.0 * control_interval,
        ),
        seed=seed,
    )


def report(result: FrontierResult) -> str:
    pareto = {p.label for p in result.pareto()}
    rows = {}
    for p in sorted(result.points, key=lambda p: p.replica_seconds):
        star = "*" if p.label in pareto else " "
        rows[f"{star} {p.label}"] = {
            "kind": p.kind,
            "SLO attainment": p.slo_attainment,
            "replica-seconds": p.replica_seconds,
            "mean replicas": p.mean_replicas,
            "peak replicas": p.peak_replicas,
            "drop rate": p.drop_rate,
            "mean accuracy (%)": 100.0 * p.mean_accuracy,
        }
    return format_table(
        rows,
        title=(
            f"SLO-attainment-vs-cost frontier — {result.supernet_name} "
            f"({result.policy.value}), {result.num_queries} queries, "
            "diurnal + flash-crowd trace (* = Pareto-optimal)"
        ),
        precision=3,
    )


def to_jsonable(result: FrontierResult) -> dict:
    """A JSON-safe dump of the frontier (CI uploads this as an artifact)."""
    return {
        "supernet_name": result.supernet_name,
        "policy": result.policy.value,
        "num_queries": result.num_queries,
        "points": [asdict(p) for p in result.points],
        "pareto": [p.label for p in result.pareto()],
    }


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
