"""Frontier sweep (extension) — predictive vs reactive autoscaling under
cold-start delay.

``frontier_autoscale`` asked how much capacity a given SLO attainment costs
when scale-up is *free*.  Real replicas are not free: a cold replica loads
weights, warms caches and joins routing only after a startup delay, and
during that window a reactive policy — which only acts once queues have
already grown — serves the ramp with yesterday's pool.  This experiment
puts a price on that lag.  Over one diurnal *ramp* trace (staircase up to a
peak and back down, the shape a forecast can actually learn) it runs the
``reactive`` and ``predictive`` policies at identical control settings for
several cold-start delays, plus static pools for context, and reports every
(SLO attainment, replica-seconds) point.

The headline property (asserted in ``tests/serving/test_provisioning.py``):
with a nonzero ``startup_delay_ms`` the predictive policy — which
extrapolates the windowed arrival-rate trend one provisioning horizon ahead
— achieves SLO attainment at least as high as the reactive policy at equal
or lower replica-seconds cost.  With zero delay the two are within noise of
each other: prediction only matters when capacity takes time to arrive.

Every cell is one declarative :class:`ScenarioSpec` (same workload, same
arrival seed, shared latency table via the stack cache) run through
``run_scenario`` — the same path as ``python -m repro serve``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.analysis.reporting import format_table
from repro.core.policies import Policy
from repro.serving.api import run_scenario
from repro.serving.spec import (
    ArrivalSpec,
    AutoscalerSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
)
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.workload import WorkloadSpec, feasible_ranges_from_table


@dataclass(frozen=True)
class PredictivePoint:
    """One serving configuration on the SLO-vs-cost plane."""

    label: str
    kind: str
    """``static`` / ``reactive`` / ``predictive``."""
    startup_delay_ms: float
    slo_attainment: float
    replica_seconds: float
    weighted_replica_seconds: float
    mean_replicas: float
    peak_replicas: int
    drop_rate: float
    num_scale_ups: int
    scaling_events: tuple = ()
    """The autoscaler's full :class:`ScalingEvent` log (empty for static
    pools) — kept in the JSON artifact so every point carries the control
    decisions (group, policy desired size, clamps, budget trims) that
    produced its frontier position."""


@dataclass(frozen=True)
class PredictiveFrontierResult:
    supernet_name: str
    policy: Policy
    num_queries: int
    startup_delays_ms: tuple[float, ...]
    points: tuple[PredictivePoint, ...]

    def point(self, label: str) -> PredictivePoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(f"no frontier point labelled {label!r}")

    def pair(self, startup_delay_ms: float) -> tuple[PredictivePoint, PredictivePoint]:
        """(reactive, predictive) at one cold-start delay."""
        reactive = predictive = None
        for p in self.points:
            if p.startup_delay_ms == startup_delay_ms:
                if p.kind == "reactive":
                    reactive = p
                elif p.kind == "predictive":
                    predictive = p
        if reactive is None or predictive is None:
            raise KeyError(
                f"no reactive/predictive pair at delay {startup_delay_ms!r}"
            )
        return reactive, predictive


def diurnal_ramp_segments(unit_ms: float) -> tuple[tuple[float, float], ...]:
    """A staircase diurnal day, in units of the fastest service time.

    Unlike :func:`~repro.experiments.frontier_autoscale.diurnal_flash_segments`
    (whose flash crowd is a step no forecast can see coming), this day ramps
    up to its peak and back down in stages — the shape whose *trend* a
    sliding-window slope estimate can extrapolate.  Rates are multiples of
    one replica's peak capacity (``1/unit_ms``): a quiet night at 0.3x,
    a morning ramp through 0.8x and 1.6x, a 2.6x midday followed by a 3.4x
    peak hour, then a staged decline.
    """
    return (
        (20.0 * unit_ms, 0.3 / unit_ms),
        (15.0 * unit_ms, 0.8 / unit_ms),
        (15.0 * unit_ms, 1.6 / unit_ms),
        (15.0 * unit_ms, 2.6 / unit_ms),
        (10.0 * unit_ms, 3.4 / unit_ms),
        (15.0 * unit_ms, 2.2 / unit_ms),
        (15.0 * unit_ms, 1.2 / unit_ms),
        (15.0 * unit_ms, 0.5 / unit_ms),
    )


def _scenario(
    *,
    name: str,
    supernet_name: str,
    policy: Policy,
    stack: SushiStack,
    workload: WorkloadSpec,
    arrivals: ArrivalSpec,
    count: int,
    startup_delay_ms: float,
    autoscaler: AutoscalerSpec | None,
    seed: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        supernet_name=supernet_name,
        policy=policy,
        cache_update_period=stack.config.cache_update_period,
        replica_groups=(
            ReplicaGroupSpec(
                count=count,
                platform=stack.config.platform,
                candidate_set_size=stack.config.candidate_set_size,
                seed=stack.config.seed,
                discipline="edf",
                startup_delay_ms=startup_delay_ms,
                name="pool",
            ),
        ),
        router="jsq",
        admission="drop_expired",
        workload=workload,
        arrivals=arrivals,
        autoscaler=autoscaler,
        seed=seed,
    )


def run(
    supernet_name: str = "ofa_mobilenetv3",
    *,
    policy: Policy = Policy.STRICT_LATENCY,
    num_queries: int = 600,
    startup_delay_units: tuple[float, ...] = (0.0, 12.0),
    static_counts: tuple[int, ...] = (1, 4),
    max_replicas: int = 6,
    seed: int = 0,
    stack: SushiStack | None = None,
) -> PredictiveFrontierResult:
    """Reactive vs predictive over one diurnal ramp, per cold-start delay.

    ``startup_delay_units`` are multiples of the latency table's fastest
    service time (the same unit the arrival rates are expressed in), so the
    sweep stresses any platform identically.  All cells share the trace,
    the workload constraints, one latency table (via the stack cache) and
    the control settings — the only variables are the policy and the delay.
    """
    if stack is None:
        stack = SushiStack(
            SushiStackConfig(
                supernet_name=supernet_name,
                policy=policy,
                seed=seed,
            )
        )
    else:
        supernet_name = stack.supernet.name
        policy = stack.config.policy
    stack_cache = {stack.config: stack}
    unit_ms = float(stack.table.latencies_ms.min())
    segments = diurnal_ramp_segments(unit_ms)
    arrivals = ArrivalSpec(kind="time_varying", segments=segments, seed=seed)
    acc_range, lat_range = feasible_ranges_from_table(stack.table)
    workload = WorkloadSpec(
        num_queries=num_queries,
        accuracy_range=acc_range,
        latency_range_ms=lat_range,
        pattern="bursty",
    )
    # The control loop must sample each ramp stage several times for a
    # trend to be visible: 2.5 service units per tick gives ~6 ticks per
    # stage of the staircase (stages are 10-20 units long).
    control_interval = 2.5 * unit_ms
    common = dict(
        supernet_name=supernet_name,
        policy=policy,
        stack=stack,
        workload=workload,
        arrivals=arrivals,
        seed=seed,
    )
    base_auto = dict(
        control_interval_ms=control_interval,
        min_replicas=1,
        max_replicas=max_replicas,
        down_cooldown_ms=2.0 * control_interval,
    )

    cells: list[tuple[str, str, float, ScenarioSpec]] = []
    for n in static_counts:
        cells.append(
            (
                f"static-{n}",
                "static",
                0.0,
                _scenario(
                    name=f"static-{n}",
                    count=n,
                    startup_delay_ms=0.0,
                    autoscaler=None,
                    **common,
                ),
            )
        )
    delays_ms = tuple(units * unit_ms for units in startup_delay_units)
    for units, delay_ms in zip(startup_delay_units, delays_ms):
        for kind, auto in (
            ("reactive", AutoscalerSpec(policy="reactive", **base_auto)),
            (
                "predictive",
                # A slightly conservative set-point: forecast errors on a
                # live ramp are one-sided (capacity that arrives late is
                # lost attainment; capacity that arrives early idles for a
                # tick), so the predictive cells provision a little
                # headroom below the default 0.6 target.
                AutoscalerSpec(
                    policy="predictive", target_utilization=0.55, **base_auto
                ),
            ),
        ):
            cells.append(
                (
                    f"{kind}-d{units:g}",
                    kind,
                    delay_ms,
                    _scenario(
                        name=f"{kind}-d{units:g}",
                        count=1,
                        startup_delay_ms=delay_ms,
                        autoscaler=auto,
                        **common,
                    ),
                )
            )

    points = []
    for label, kind, delay_ms, spec in cells:
        result = run_scenario(spec, stack_cache=stack_cache)
        report = result.autoscale
        points.append(
            PredictivePoint(
                label=label,
                kind=kind,
                startup_delay_ms=delay_ms,
                slo_attainment=result.slo_attainment,
                replica_seconds=result.replica_seconds,
                weighted_replica_seconds=result.weighted_replica_seconds,
                mean_replicas=result.mean_active_replicas,
                peak_replicas=(
                    len(result.replica_stats)
                    if report is None
                    else report.peak_replicas
                ),
                drop_rate=result.drop_rate,
                num_scale_ups=0 if report is None else report.num_scale_ups,
                scaling_events=() if report is None else report.events,
            )
        )
    return PredictiveFrontierResult(
        supernet_name=supernet_name,
        policy=policy,
        num_queries=num_queries,
        startup_delays_ms=delays_ms,
        points=tuple(points),
    )


def trace_scenario(
    supernet_name: str = "ofa_mobilenetv3",
    *,
    policy: Policy = Policy.STRICT_LATENCY,
    num_queries: int = 600,
    startup_delay_units: float = 12.0,
    seed: int = 0,
) -> ScenarioSpec:
    """The cell ``repro run frontier_predictive --trace`` flight-records.

    The predictive policy at the sweep's nonzero cold-start delay — the
    configuration where PROVISIONING segments and forecast-driven early
    scale-ups show up on the recorder's replica timelines.
    """
    stack = SushiStack(
        SushiStackConfig(supernet_name=supernet_name, policy=policy, seed=seed)
    )
    unit_ms = float(stack.table.latencies_ms.min())
    acc_range, lat_range = feasible_ranges_from_table(stack.table)
    control_interval = 2.5 * unit_ms
    return _scenario(
        name=f"predictive-d{startup_delay_units:g}",
        supernet_name=supernet_name,
        policy=policy,
        stack=stack,
        workload=WorkloadSpec(
            num_queries=num_queries,
            accuracy_range=acc_range,
            latency_range_ms=lat_range,
            pattern="bursty",
        ),
        arrivals=ArrivalSpec(
            kind="time_varying",
            segments=diurnal_ramp_segments(unit_ms),
            seed=seed,
        ),
        count=1,
        startup_delay_ms=startup_delay_units * unit_ms,
        autoscaler=AutoscalerSpec(
            policy="predictive",
            target_utilization=0.55,
            control_interval_ms=control_interval,
            min_replicas=1,
            max_replicas=6,
            down_cooldown_ms=2.0 * control_interval,
        ),
        seed=seed,
    )


def report(result: PredictiveFrontierResult) -> str:
    rows = {}
    for p in result.points:
        rows[p.label] = {
            "kind": p.kind,
            "startup delay (ms)": p.startup_delay_ms,
            "SLO attainment": p.slo_attainment,
            "replica-seconds": p.replica_seconds,
            "mean replicas": p.mean_replicas,
            "peak replicas": p.peak_replicas,
            "drop rate": p.drop_rate,
            "scale-ups": p.num_scale_ups,
        }
    return format_table(
        rows,
        title=(
            f"Predictive vs reactive under cold start — {result.supernet_name} "
            f"({result.policy.value}), {result.num_queries} queries, "
            "diurnal ramp trace"
        ),
        precision=3,
    )


def to_jsonable(result: PredictiveFrontierResult) -> dict:
    """A JSON-safe dump of the sweep (CI uploads this as an artifact)."""
    return {
        "supernet_name": result.supernet_name,
        "policy": result.policy.value,
        "num_queries": result.num_queries,
        "startup_delays_ms": list(result.startup_delays_ms),
        "points": [asdict(p) for p in result.points],
    }


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
