"""Headline numbers of the paper (abstract / Section 5.7 / Appendix A.4).

* up to 25 % serving-latency improvement for a stream of queries,
* up to 0.98 % (percentage points) served-accuracy increase,
* up to 78.7 % off-chip energy saving,
* cache hit ratio of 66 % (ResNet50) / 78 % (MobileNetV3).

This driver runs both SuperNet families under both policies and reports the
reproduction's corresponding numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_table
from repro.core.policies import Policy
from repro.serving.runner import ExperimentRunner


@dataclass(frozen=True)
class HeadlineRow:
    supernet_name: str
    policy: Policy
    latency_improvement_percent: float
    accuracy_improvement_points: float
    energy_saving_percent: float
    cache_hit_ratio: float
    vector_hit_ratio: float


@dataclass(frozen=True)
class HeadlineResult:
    rows: tuple[HeadlineRow, ...]

    def best_latency_improvement(self) -> float:
        return max(r.latency_improvement_percent for r in self.rows)

    def best_accuracy_improvement(self) -> float:
        return max(r.accuracy_improvement_points for r in self.rows)

    def best_energy_saving(self) -> float:
        return max(r.energy_saving_percent for r in self.rows)


def run(
    *,
    platform: PlatformConfig = ANALYTIC_DEFAULT,
    num_queries: int = 200,
    cache_update_period: int = 4,
    seed: int = 0,
) -> HeadlineResult:
    rows = []
    for supernet_name in ("ofa_resnet50", "ofa_mobilenetv3"):
        for policy in (Policy.STRICT_ACCURACY, Policy.STRICT_LATENCY):
            runner = ExperimentRunner(
                supernet_name,
                platform=platform,
                policy=policy,
                cache_update_period=cache_update_period,
                seed=seed,
            )
            trace = runner.default_workload(num_queries=num_queries, seed=seed)
            results, summary = runner.compare(trace)
            rows.append(
                HeadlineRow(
                    supernet_name=supernet_name,
                    policy=policy,
                    latency_improvement_percent=summary.latency_improvement_vs_no_sushi_percent,
                    accuracy_improvement_points=summary.accuracy_improvement_points,
                    energy_saving_percent=summary.energy_saving_vs_no_sushi_percent,
                    cache_hit_ratio=summary.sushi_cache_hit_ratio,
                    vector_hit_ratio=results["sushi"].metrics.mean_cache_hit_ratio,
                )
            )
    return HeadlineResult(rows=tuple(rows))


def report(result: HeadlineResult) -> str:
    rows = {
        f"{r.supernet_name} / {r.policy.value}": {
            "latency improvement %": r.latency_improvement_percent,
            "accuracy improvement (pts)": r.accuracy_improvement_points,
            "off-chip energy saving %": r.energy_saving_percent,
            "byte hit ratio": r.cache_hit_ratio,
            "vector hit ratio (A.4)": r.vector_hit_ratio,
        }
        for r in result.rows
    }
    title = (
        "Headline — SUSHI vs No-SUSHI "
        f"(best: latency -{result.best_latency_improvement():.1f}%, "
        f"accuracy +{result.best_accuracy_improvement():.2f} pts, "
        f"energy -{result.best_energy_saving():.1f}%)"
    )
    return format_table(rows, title=title, precision=3)


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
