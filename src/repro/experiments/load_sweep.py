"""Load sweep (extension) — open-loop SLO attainment vs load and replicas.

The paper's intro motivates SUSHI with SLO attainment under variable query
traffic; this experiment quantifies it with the discrete-event engine: the
same query trace arrives at increasing Poisson rates on 1..N SUSHI replicas
(join-shortest-queue routing, deadline-expired shedding), and we report
offered load (rho), SLO attainment, drop rate, response percentiles and
achieved throughput per cell.  At rho << 1 the open loop converges to the
closed-loop serving of Fig. 15/16; past rho = 1 a single replica saturates
and adding replicas restores attainment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_table
from repro.core.policies import Policy
from repro.serving.api import run_scenario
from repro.serving.spec import ArrivalSpec, ReplicaGroupSpec, ScenarioSpec
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.workload import WorkloadSpec, feasible_ranges_from_table

DEFAULT_ARRIVAL_RATES: tuple[float, ...] = (0.2, 0.5, 1.0, 2.0)
DEFAULT_REPLICA_COUNTS: tuple[int, ...] = (1, 2)


@dataclass(frozen=True)
class LoadCell:
    """Aggregates of one (replica count, arrival rate) engine run."""

    num_replicas: int
    arrival_rate_per_ms: float
    offered_load: float
    slo_attainment: float
    drop_rate: float
    mean_response_ms: float
    p99_response_ms: float
    achieved_throughput_per_ms: float
    mean_accuracy: float


@dataclass(frozen=True)
class LoadSweepResult:
    supernet_name: str
    policy: Policy
    cells: tuple[LoadCell, ...]

    def cell(self, num_replicas: int, rate: float) -> LoadCell:
        for c in self.cells:
            if c.num_replicas == num_replicas and c.arrival_rate_per_ms == rate:
                return c
        raise KeyError(f"no cell for ({num_replicas} replicas, {rate}/ms)")

    def attainment_curve(self, num_replicas: int) -> list[tuple[float, float]]:
        """(arrival rate, SLO attainment) points for one replica count."""
        return sorted(
            (c.arrival_rate_per_ms, c.slo_attainment)
            for c in self.cells
            if c.num_replicas == num_replicas
        )


def overload_rates(stack: SushiStack, factors: tuple[float, ...]) -> tuple[float, ...]:
    """Arrival rates as multiples of one replica's fastest possible service.

    A factor of 1.5 overloads a single replica (rho >= 1.5) even if every
    query were served at the latency table's minimum — the knob the
    multi-replica benchmark and example turn.
    """
    fastest_ms = float(stack.table.latencies_ms.min())
    return tuple(f / fastest_ms for f in factors)


def run(
    supernet_name: str = "ofa_mobilenetv3",
    *,
    platform: PlatformConfig = ANALYTIC_DEFAULT,
    policy: Policy = Policy.STRICT_LATENCY,
    num_queries: int = 150,
    arrival_rates_per_ms: tuple[float, ...] = DEFAULT_ARRIVAL_RATES,
    replica_counts: tuple[int, ...] = DEFAULT_REPLICA_COUNTS,
    discipline: str = "edf",
    router: str = "jsq",
    admission: str = "drop_expired",
    cache_update_period: int = 4,
    seed: int = 0,
    stack: SushiStack | None = None,
) -> LoadSweepResult:
    """Sweep the open-loop engine over replica counts x arrival rates.

    Each cell is one declarative :class:`ScenarioSpec` run through the
    serving facade (``repro.serving.api.run_scenario``) — the same path the
    CLI and the JSON scenario files use.  Pass a prebuilt ``stack`` to reuse
    its latency table (construction is the expensive part);
    ``supernet_name``/``platform``/``policy``/``cache_update_period``/
    ``seed`` then describe that stack's config.
    """
    if stack is None:
        stack = SushiStack(
            SushiStackConfig(
                supernet_name=supernet_name,
                platform=platform,
                policy=policy,
                cache_update_period=cache_update_period,
                seed=seed,
            )
        )
    else:
        supernet_name = stack.supernet.name
        platform = stack.config.platform
        policy = stack.config.policy
        cache_update_period = stack.config.cache_update_period
    acc_range, lat_range = feasible_ranges_from_table(stack.table)
    workload = WorkloadSpec(
        num_queries=num_queries,
        accuracy_range=acc_range,
        latency_range_ms=lat_range,
    )
    # All cells clone from one template stack (config-keyed cache).
    stack_cache = {stack.config: stack}

    cells: list[LoadCell] = []
    for num_replicas in replica_counts:
        for rate in arrival_rates_per_ms:
            scenario = ScenarioSpec(
                name=f"load-sweep-{num_replicas}x{rate:g}",
                supernet_name=supernet_name,
                policy=policy,
                cache_update_period=cache_update_period,
                replica_groups=(
                    ReplicaGroupSpec(
                        count=num_replicas,
                        platform=platform,
                        candidate_set_size=stack.config.candidate_set_size,
                        seed=stack.config.seed,
                        discipline=discipline,
                    ),
                ),
                router=router,
                admission=admission,
                workload=workload,
                arrivals=ArrivalSpec(kind="poisson", rate_per_ms=rate, seed=seed),
                seed=seed,
            )
            result = run_scenario(scenario, stack_cache=stack_cache)
            cells.append(
                LoadCell(
                    num_replicas=num_replicas,
                    arrival_rate_per_ms=rate,
                    offered_load=result.offered_load,
                    slo_attainment=result.slo_attainment,
                    drop_rate=result.drop_rate,
                    mean_response_ms=result.mean_response_ms,
                    p99_response_ms=result.p99_response_ms,
                    achieved_throughput_per_ms=result.achieved_throughput_per_ms,
                    mean_accuracy=result.mean_accuracy,
                )
            )
    return LoadSweepResult(
        supernet_name=supernet_name, policy=policy, cells=tuple(cells)
    )


def report(result: LoadSweepResult) -> str:
    rows = {}
    for c in result.cells:
        rows[f"{c.num_replicas} replica(s) @ {c.arrival_rate_per_ms:g}/ms"] = {
            "rho": c.offered_load,
            "SLO attainment": c.slo_attainment,
            "drop rate": c.drop_rate,
            "mean response (ms)": c.mean_response_ms,
            "p99 response (ms)": c.p99_response_ms,
            "throughput (/ms)": c.achieved_throughput_per_ms,
            "mean accuracy (%)": 100.0 * c.mean_accuracy,
        }
    return format_table(
        rows,
        title=(
            f"Load sweep — open-loop engine, {result.supernet_name} "
            f"({result.policy.value})"
        ),
        precision=3,
    )


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
