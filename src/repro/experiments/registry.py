"""Registry mapping experiment ids to their driver modules."""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType

from repro.experiments import (
    batching_sweep,
    fig02_arithmetic_intensity,
    fig10_latency_breakdown,
    fig11_roofline,
    fig12_dse,
    fig13_board_latency_energy,
    fig14_dpu_comparison,
    fig15_scheduler_functional,
    fig16_end_to_end,
    fig17_18_temporal,
    frontier_autoscale,
    frontier_predictive,
    headline,
    load_sweep,
    resilience_frontier,
    tab01_bandwidth,
    tab02_resources,
    tab03_buffer_config,
    tab04_reuse,
    tab05_table_size,
    tab06_lookup_time,
)


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper's evaluation."""

    experiment_id: str
    description: str
    module: ModuleType

    def run(self, **kwargs):
        return self.module.run(**kwargs)

    def report(self, result) -> str:
        return self.module.report(result)


EXPERIMENTS: dict[str, Experiment] = {
    exp.experiment_id: exp
    for exp in (
        Experiment("fig02", "Arithmetic intensity per conv layer", fig02_arithmetic_intensity),
        Experiment("fig10", "Latency breakdown w/ and w/o PB", fig10_latency_breakdown),
        Experiment("fig11", "Roofline and SGS roofline", fig11_roofline),
        Experiment("fig12", "Design-space exploration", fig12_dse),
        Experiment("fig13", "Board latency and off-chip energy", fig13_board_latency_energy),
        Experiment("fig14", "Per-layer latency vs Xilinx DPU", fig14_dpu_comparison),
        Experiment("fig15", "SushiSched functional evaluation", fig15_scheduler_functional),
        Experiment("fig16", "End-to-end SUSHI vs baselines", fig16_end_to_end),
        Experiment("fig17_18", "Temporal analysis of caching window Q", fig17_18_temporal),
        Experiment(
            "load_sweep",
            "Open-loop SLO attainment vs load and replica count",
            load_sweep,
        ),
        Experiment(
            "frontier_autoscale",
            "SLO-attainment-vs-cost frontier: autoscaling vs static pools",
            frontier_autoscale,
        ),
        Experiment(
            "frontier_predictive",
            "Predictive vs reactive autoscaling under cold-start delay",
            frontier_predictive,
        ),
        Experiment(
            "batching_sweep",
            "Throughput/goodput frontier vs dispatch batch size B",
            batching_sweep,
        ),
        Experiment(
            "resilience_frontier",
            "Goodput under injected crashes: self-healing vs fault-oblivious",
            resilience_frontier,
        ),
        Experiment("tab01", "Buffer bandwidth requirements", tab01_bandwidth),
        Experiment("tab02", "FPGA resource comparison", tab02_resources),
        Experiment("tab03", "Buffer storage allocation", tab03_buffer_config),
        Experiment("tab04", "Reuse comparison matrix", tab04_reuse),
        Experiment("tab05", "Latency improvement vs table size", tab05_table_size),
        Experiment("tab06", "Latency-table lookup time", tab06_lookup_time),
        Experiment("headline", "Headline latency/accuracy/energy improvements", headline),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment driver by id (e.g. ``"fig10"``)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from exc


def list_experiments() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(EXPERIMENTS)
