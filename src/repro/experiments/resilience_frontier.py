"""Resilience frontier (extension) — goodput under injected faults.

The robustness question the fault layer exists to answer: when replicas
crash, how much of the lost goodput can a self-healing configuration buy
back, and what does the insurance cost?  This experiment sweeps a crash
MTBF grid and, at every crash rate, runs two configurations over the same
workload, arrivals and fault draws:

* **oblivious** — a static pool with retries disabled
  (``max_attempts: 1``): every crash permanently shrinks the pool, every
  lost query fails immediately.  The fault-unaware baseline.
* **resilient** — the same pool under a reactive autoscaler whose
  ``min_replicas`` equals the pool size (crashed replicas are replaced
  through the provisioning lifecycle), with retries and brownout
  degradation enabled.

Both run through ``run_scenario`` from declarative specs (the same path
as ``python -m repro serve``), sharing one latency table via the stack
cache.  The run asserts the tentpole's acceptance property: at the most
aggressive nonzero crash rate the resilient configuration achieves
strictly higher goodput *and* SLO attainment than the oblivious one,
while spending at most ``cost_bound`` times the *fault-free* pool's
replica-seconds — the self-healing premium is bounded, not a blank
check.  (The fault-free static pool anchors the cost comparison because
the oblivious pool's cost shrinks as crashed replicas stop accruing —
beating a collapsing baseline on cost would be vacuous.)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.analysis.reporting import format_table
from repro.core.policies import Policy
from repro.serving.api import run_scenario
from repro.serving.spec import (
    ArrivalSpec,
    AutoscalerSpec,
    FaultSpec,
    ReplicaGroupSpec,
    RetryPolicy,
    ScenarioSpec,
)
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.workload import WorkloadSpec, feasible_ranges_from_table


@dataclass(frozen=True)
class ResiliencePoint:
    """One (configuration, crash rate) cell of the sweep."""

    label: str
    kind: str
    """``oblivious`` or ``resilient``."""
    crash_mtbf_ms: float | None
    """Mean time between crashes per replica (None: fault-free cell)."""
    slo_attainment: float
    goodput_per_ms: float
    replica_seconds: float
    num_crashes: int
    drop_reasons: tuple[tuple[str, int], ...]
    """Dropped-query counts by reason, sorted by reason."""
    mean_replicas: float
    mean_accuracy: float
    scale_ups: int = 0


@dataclass(frozen=True)
class ResilienceResult:
    supernet_name: str
    policy: Policy
    num_queries: int
    pool_size: int
    cost_bound: float
    points: tuple[ResiliencePoint, ...]

    def point(self, label: str) -> ResiliencePoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(f"no resilience point labelled {label!r}")

    def pair(self, mtbf: float | None) -> tuple[ResiliencePoint, ResiliencePoint]:
        """The (oblivious, resilient) pair at one crash rate."""
        tag = "none" if mtbf is None else f"{mtbf:g}"
        return self.point(f"oblivious-{tag}"), self.point(f"resilient-{tag}")


def _fault_spec(
    mtbf: float | None, *, resilient: bool, seed: int
) -> FaultSpec | None:
    if mtbf is None:
        return None
    retry = (
        RetryPolicy(max_attempts=3, backoff_base_ms=1.0, backoff_multiplier=2.0)
        if resilient
        else RetryPolicy(max_attempts=1)
    )
    return FaultSpec(
        seed=seed,
        crash_mtbf_ms=mtbf,
        retry=retry,
        brownout_threshold=0.25 if resilient else None,
    )


def _scenario(
    *,
    name: str,
    supernet_name: str,
    policy: Policy,
    stack: SushiStack,
    workload: WorkloadSpec,
    arrivals: ArrivalSpec,
    pool_size: int,
    startup_delay_ms: float,
    control_interval_ms: float,
    faults: FaultSpec | None,
    resilient: bool,
    seed: int,
) -> ScenarioSpec:
    autoscaler = None
    if resilient:
        # Self-healing is the min_replicas clamp: a crash drops the active
        # count below the floor and the controller provisions a
        # replacement through the cold-start lifecycle.
        autoscaler = AutoscalerSpec(
            policy="reactive",
            control_interval_ms=control_interval_ms,
            min_replicas=pool_size,
            max_replicas=pool_size + 3,
            down_cooldown_ms=4.0 * control_interval_ms,
            group="pool",
        )
    return ScenarioSpec(
        name=name,
        supernet_name=supernet_name,
        policy=policy,
        cache_update_period=stack.config.cache_update_period,
        replica_groups=(
            ReplicaGroupSpec(
                count=pool_size,
                platform=stack.config.platform,
                candidate_set_size=stack.config.candidate_set_size,
                seed=stack.config.seed,
                discipline="edf",
                startup_delay_ms=startup_delay_ms,
                name="pool",
            ),
        ),
        router="jsq",
        admission="drop_expired",
        workload=workload,
        arrivals=arrivals,
        autoscaler=autoscaler,
        faults=faults,
        seed=seed,
    )


def run(
    supernet_name: str = "ofa_mobilenetv3",
    *,
    policy: Policy = Policy.STRICT_LATENCY,
    num_queries: int = 400,
    pool_size: int = 3,
    crash_mtbfs: tuple[float, ...] = (1500.0, 400.0),
    cost_bound: float = 1.5,
    seed: int = 0,
    stack: SushiStack | None = None,
) -> ResilienceResult:
    """Sweep crash rates, oblivious vs self-healing, over one trace.

    ``crash_mtbfs`` is ordered mild to aggressive; a fault-free cell
    (``None``) is always prepended so the frontier anchors at the no-fault
    goodput.  The acceptance assertion runs at the last (most aggressive)
    MTBF: resilient strictly beats oblivious on goodput and attainment
    while spending at most ``cost_bound`` times the fault-free static
    pool's replica-seconds.
    """
    if stack is None:
        stack = SushiStack(
            SushiStackConfig(
                supernet_name=supernet_name, policy=policy, seed=seed
            )
        )
    else:
        supernet_name = stack.supernet.name
        policy = stack.config.policy
    stack_cache = {stack.config: stack}
    unit_ms = float(stack.table.latencies_ms.min())
    acc_range, lat_range = feasible_ranges_from_table(stack.table)
    workload = WorkloadSpec(
        num_queries=num_queries,
        accuracy_range=acc_range,
        latency_range_ms=lat_range,
    )
    arrivals = ArrivalSpec(kind="poisson", rate_per_ms=0.6 / unit_ms, seed=seed)
    common = dict(
        supernet_name=supernet_name,
        policy=policy,
        stack=stack,
        workload=workload,
        arrivals=arrivals,
        pool_size=pool_size,
        startup_delay_ms=10.0 * unit_ms,
        control_interval_ms=5.0 * unit_ms,
        seed=seed,
    )

    points: list[ResiliencePoint] = []
    grid: tuple[float | None, ...] = (None, *crash_mtbfs)
    for mtbf in grid:
        for resilient in (False, True):
            kind = "resilient" if resilient else "oblivious"
            tag = "none" if mtbf is None else f"{mtbf:g}"
            label = f"{kind}-{tag}"
            spec = _scenario(
                name=label,
                faults=_fault_spec(mtbf, resilient=resilient, seed=seed),
                resilient=resilient,
                **common,
            )
            result = run_scenario(spec, stack_cache=stack_cache)
            report_ = result.autoscale
            points.append(
                ResiliencePoint(
                    label=label,
                    kind=kind,
                    crash_mtbf_ms=mtbf,
                    slo_attainment=result.slo_attainment,
                    goodput_per_ms=result.goodput_per_ms,
                    replica_seconds=result.replica_seconds,
                    num_crashes=result.num_crashes,
                    drop_reasons=tuple(sorted(result.drop_reasons.items())),
                    mean_replicas=result.mean_active_replicas,
                    mean_accuracy=result.mean_accuracy,
                    scale_ups=0 if report_ is None else report_.num_scale_ups,
                )
            )

    out = ResilienceResult(
        supernet_name=supernet_name,
        policy=policy,
        num_queries=num_queries,
        pool_size=pool_size,
        cost_bound=cost_bound,
        points=tuple(points),
    )
    # The tentpole's acceptance property, checked at the most aggressive
    # crash rate of the sweep.
    oblivious, resilient_p = out.pair(crash_mtbfs[-1])
    fault_free, _ = out.pair(None)
    assert resilient_p.goodput_per_ms > oblivious.goodput_per_ms, (
        f"self-healing did not improve goodput: "
        f"{resilient_p.goodput_per_ms:.4f} <= {oblivious.goodput_per_ms:.4f}"
    )
    assert resilient_p.slo_attainment > oblivious.slo_attainment, (
        f"self-healing did not improve SLO attainment: "
        f"{resilient_p.slo_attainment:.4f} <= {oblivious.slo_attainment:.4f}"
    )
    assert (
        resilient_p.replica_seconds <= cost_bound * fault_free.replica_seconds
    ), (
        f"self-healing premium unbounded: {resilient_p.replica_seconds:.3f} > "
        f"{cost_bound} x {fault_free.replica_seconds:.3f} replica-seconds "
        "(fault-free pool cost)"
    )
    return out


def trace_scenario(
    supernet_name: str = "ofa_mobilenetv3",
    *,
    policy: Policy = Policy.STRICT_LATENCY,
    num_queries: int = 400,
    seed: int = 0,
) -> ScenarioSpec:
    """The cell ``repro run resilience_frontier --trace`` flight-records.

    The resilient configuration at the sweep's most aggressive crash rate
    — the run whose crash instants, replacement provisioning segments and
    fault-driven drops the recorder's fault track makes visible.
    """
    stack = SushiStack(
        SushiStackConfig(supernet_name=supernet_name, policy=policy, seed=seed)
    )
    unit_ms = float(stack.table.latencies_ms.min())
    acc_range, lat_range = feasible_ranges_from_table(stack.table)
    return _scenario(
        name="resilient-400",
        supernet_name=supernet_name,
        policy=policy,
        stack=stack,
        workload=WorkloadSpec(
            num_queries=num_queries,
            accuracy_range=acc_range,
            latency_range_ms=lat_range,
        ),
        arrivals=ArrivalSpec(kind="poisson", rate_per_ms=0.6 / unit_ms, seed=seed),
        pool_size=3,
        startup_delay_ms=10.0 * unit_ms,
        control_interval_ms=5.0 * unit_ms,
        faults=_fault_spec(400.0, resilient=True, seed=seed),
        resilient=True,
        seed=seed,
    )


def report(result: ResilienceResult) -> str:
    rows = {}
    for p in result.points:
        reasons = ", ".join(f"{k}={v}" for k, v in p.drop_reasons) or "-"
        rows[p.label] = {
            "kind": p.kind,
            "crash MTBF (ms)": (
                "-" if p.crash_mtbf_ms is None else p.crash_mtbf_ms
            ),
            "crashes": p.num_crashes,
            "scale-ups": p.scale_ups,
            "SLO attainment": p.slo_attainment,
            "goodput (/ms)": p.goodput_per_ms,
            "replica-seconds": p.replica_seconds,
            "mean replicas": p.mean_replicas,
            "drops": reasons,
        }
    return format_table(
        rows,
        title=(
            f"Resilience frontier — {result.supernet_name} "
            f"({result.policy.value}), {result.num_queries} queries, "
            f"pool of {result.pool_size}; self-healing premium bounded at "
            f"{result.cost_bound:g}x the fault-free pool's replica-seconds"
        ),
        precision=3,
    )


def to_jsonable(result: ResilienceResult) -> dict:
    """A JSON-safe dump of the sweep (CI uploads this as an artifact)."""
    return {
        "supernet_name": result.supernet_name,
        "policy": result.policy.value,
        "num_queries": result.num_queries,
        "pool_size": result.pool_size,
        "cost_bound": result.cost_bound,
        "points": [asdict(p) for p in result.points],
    }


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
