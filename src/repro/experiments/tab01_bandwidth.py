"""Table 1 — Minimal bandwidth requirement of each on-chip buffer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.buffers import bandwidth_requirements
from repro.accelerator.dpe import DPEArrayConfig
from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_table


@dataclass(frozen=True)
class Tab01Result:
    platform_name: str
    requirements_bytes_per_cycle: dict[str, float]
    off_chip_bytes_per_cycle: float


def run(platform: PlatformConfig = ANALYTIC_DEFAULT) -> Tab01Result:
    dpe = DPEArrayConfig(kp=platform.kp, cp=platform.cp, dpe_size=platform.dpe_size)
    reqs = bandwidth_requirements(dpe, platform)
    return Tab01Result(
        platform_name=platform.name,
        requirements_bytes_per_cycle=reqs,
        off_chip_bytes_per_cycle=platform.off_chip_bytes_per_cycle,
    )


def report(result: Tab01Result) -> str:
    rows = {
        name: {"min bandwidth (bytes/cycle)": value}
        for name, value in result.requirements_bytes_per_cycle.items()
    }
    title = (
        f"Table 1 — buffer bandwidth requirements on {result.platform_name} "
        f"(off-chip {result.off_chip_bytes_per_cycle:.1f} B/cycle)"
    )
    return format_table(rows, title=title, precision=1)


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
