"""Table 2 — FPGA resource comparison of SushiAccel (w/ and w/o PB) and the DPU."""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.resources import resource_comparison_table
from repro.analysis.reporting import format_table

#: Published Xilinx DPU (DPUCZDX8G on ZCU104) resources, from Table 2.
DPU_REFERENCE_ROW: dict[str, float] = {
    "LUT": 41640,
    "Register": 69180,
    "BRAM": 0,
    "URAM": 60,
    "DSP": 438,
    "PeakOps/cycle": 2304,
    "GFlops(100MHz)": 230.4,
}


@dataclass(frozen=True)
class Tab02Result:
    rows: dict[str, dict[str, float]]


def run() -> Tab02Result:
    rows = resource_comparison_table()
    rows["Xilinx DPU DPUCZDX8G (zcu104, published)"] = dict(DPU_REFERENCE_ROW)
    return Tab02Result(rows=rows)


def report(result: Tab02Result) -> str:
    return format_table(result.rows, title="Table 2 — resource comparison", precision=1)


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
