"""Table 3 — On-chip buffer allocation of SushiAccel on ZCU104 (w/ and w/o PB)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.platforms import ZCU104, PlatformConfig
from repro.accelerator.resources import buffer_allocation_table
from repro.analysis.reporting import format_table


@dataclass(frozen=True)
class Tab03Result:
    platform_name: str
    allocation_kb: dict[str, dict[str, float]]


def run(platform: PlatformConfig = ZCU104) -> Tab03Result:
    return Tab03Result(
        platform_name=platform.name, allocation_kb=buffer_allocation_table(platform)
    )


def report(result: Tab03Result) -> str:
    # Transpose so buffers are rows and the two configurations are columns.
    buffers = list(next(iter(result.allocation_kb.values())))
    rows = {
        buf: {config: result.allocation_kb[config][buf] for config in result.allocation_kb}
        for buf in buffers
    }
    return format_table(
        rows,
        title=f"Table 3 — buffer configuration (KB) on {result.platform_name}",
        precision=1,
    )


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
