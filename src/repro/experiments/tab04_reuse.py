"""Table 4 — Data-reuse comparison of SUSHI against prior accelerators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.reuse_matrix import reuse_comparison_table
from repro.analysis.reporting import format_table


@dataclass(frozen=True)
class Tab04Result:
    rows: dict[str, dict[str, str]]


def run() -> Tab04Result:
    return Tab04Result(rows=reuse_comparison_table())


def report(result: Tab04Result) -> str:
    return format_table(result.rows, title="Table 4 — reuse comparison", precision=0)


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
