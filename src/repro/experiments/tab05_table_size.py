"""Table 5 (Appendix A.2) — Latency improvement vs Latency-Table size.

Sweeps the number of candidate SubGraph columns ``|S|`` in the SushiAbs
latency table and reports the mean serving-latency improvement of SUSHI over
SUSHI w/o scheduler.  The paper finds the improvement grows with table size
for ResNet50 but saturates quickly, and is flat (~1 %) for MobileNetV3 whose
SubNets mostly fit the PB anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_table
from repro.core.metrics import latency_improvement_percent
from repro.core.policies import Policy
from repro.serving.runner import ExperimentRunner

DEFAULT_COLUMN_COUNTS: tuple[int, ...] = (10, 40, 80, 100)


@dataclass(frozen=True)
class Tab05Result:
    supernet_name: str
    improvements_percent: dict[int, float]

    def is_monotone_saturating(self) -> bool:
        """True if improvements never decrease substantially with table size."""
        values = [self.improvements_percent[k] for k in sorted(self.improvements_percent)]
        return all(b >= a - 0.5 for a, b in zip(values, values[1:]))


def run(
    supernet_name: str = "ofa_resnet50",
    *,
    platform: PlatformConfig = ANALYTIC_DEFAULT,
    column_counts: Sequence[int] = DEFAULT_COLUMN_COUNTS,
    policy: Policy = Policy.STRICT_ACCURACY,
    num_queries: int = 120,
    seed: int = 0,
) -> Tab05Result:
    improvements: dict[int, float] = {}
    for cols in column_counts:
        runner = ExperimentRunner(
            supernet_name,
            platform=platform,
            policy=policy,
            candidate_set_size=cols,
            seed=seed,
        )
        trace = runner.default_workload(num_queries=num_queries, seed=seed)
        results = runner.run(trace)
        improvements[cols] = latency_improvement_percent(
            results["sushi_wo_sched"].metrics, results["sushi"].metrics
        )
    return Tab05Result(supernet_name=supernet_name, improvements_percent=improvements)


def report(result: Tab05Result) -> str:
    rows = {
        f"{cols}-cols": {"latency improvement % (vs SUSHI w/o sched)": value}
        for cols, value in sorted(result.improvements_percent.items())
    }
    return format_table(
        rows, title=f"Table 5 — latency improvement vs table size, {result.supernet_name}",
        precision=2,
    )


def main() -> None:  # pragma: no cover
    for name in ("ofa_resnet50", "ofa_mobilenetv3"):
        print(report(run(name)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
