"""Table 6 (Appendix A.3) — Latency-table lookup time vs table size.

The lookup must stay far below the inference time (the paper reports 2-17 us
for 100-2000 columns on ResNet50, i.e. < 1/1000 of a query).  We measure the
wall-clock time of the policy-driven lookups on tables of increasing width.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.analysis.reporting import format_table
from repro.core.candidates import build_candidate_set
from repro.core.latency_table import LatencyTable
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.zoo import load_supernet, paper_pareto_subnets

DEFAULT_COLUMN_COUNTS: tuple[int, ...] = (100, 200, 500, 1000, 2000)


@dataclass(frozen=True)
class Tab06Result:
    supernet_name: str
    lookup_microseconds: dict[int, float]
    reference_inference_ms: float

    def max_lookup_fraction_of_inference(self) -> float:
        """Largest lookup time as a fraction of one inference."""
        worst_us = max(self.lookup_microseconds.values())
        return (worst_us * 1e-3) / self.reference_inference_ms


def run(
    supernet_name: str = "ofa_resnet50",
    *,
    platform: PlatformConfig = ANALYTIC_DEFAULT,
    column_counts: Sequence[int] = DEFAULT_COLUMN_COUNTS,
    lookups_per_size: int = 200,
    seed: int = 0,
) -> Tab06Result:
    supernet = load_supernet(supernet_name)
    subnets = paper_pareto_subnets(supernet)
    accel = SushiAccelModel(platform)
    accuracy = AccuracyModel(supernet)
    rng = np.random.default_rng(seed)
    reference_ms = accel.subnet_latency_ms(subnets[0])

    lookup_us: dict[int, float] = {}
    for cols in column_counts:
        candidates = build_candidate_set(
            subnets, capacity_bytes=max(accel.pb_capacity_bytes, 1), max_size=cols, seed=seed
        )
        # Latencies need not be physically meaningful for a timing study, and
        # evaluating the analytic model on thousands of columns would dominate
        # the measurement setup; synthesize a positive matrix instead.
        matrix = rng.uniform(1.0, 10.0, size=(len(subnets), len(candidates)))
        table = LatencyTable(subnets, candidates, matrix, [accuracy.accuracy(s) for s in subnets])
        acc_bounds = rng.uniform(0.75, 0.80, size=lookups_per_size)
        cache_idxs = rng.integers(0, len(candidates), size=lookups_per_size)
        start = time.perf_counter()
        for bound, cache_idx in zip(acc_bounds, cache_idxs):
            table.best_under_accuracy(float(bound), int(cache_idx))
        elapsed = time.perf_counter() - start
        lookup_us[cols] = elapsed / lookups_per_size * 1e6
    return Tab06Result(
        supernet_name=supernet_name,
        lookup_microseconds=lookup_us,
        reference_inference_ms=reference_ms,
    )


def report(result: Tab06Result) -> str:
    rows = {
        f"{cols}-cols": {"lookup time (us)": value}
        for cols, value in sorted(result.lookup_microseconds.items())
    }
    frac = result.max_lookup_fraction_of_inference()
    return format_table(
        rows,
        title=(
            f"Table 6 — lookup time, {result.supernet_name} "
            f"(worst case {100 * frac:.3f}% of one inference)"
        ),
        precision=2,
    )


def main() -> None:  # pragma: no cover
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
