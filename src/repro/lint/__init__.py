"""AST-based invariant linter for the repro codebase.

The simulator's credibility rests on contracts that used to live only in
docs and expensive runtime property tests: the deterministic
``(time, kind, seq)`` event tie-break, the record-identity ladder, exact
spec JSON round-trips, and the ``__slots__``/``__dict__`` coupling the
engine fast path relies on.  This package turns those conventions into a
static-analysis pass that fails CI in well under a second::

    python -m repro lint                 # lint src/ (the default)
    python -m repro lint --format json src
    python -m repro lint --select RPR001,RPR005 src tests

Checkers (see ``docs/invariants.md`` for the invariant each guards):

========  ==================================================================
RPR000    suppression hygiene (known codes + a ``-- reason``); unsuppressible
RPR001    determinism: no global RNGs, wall clocks, or set-ordered iteration
RPR002    slots coverage: hot-path dataclasses slotted; no __dict__ stamps
          or dynamic writes on slotted classes
RPR003    fast-path field parity: __dict__ stamps match dataclass fields
RPR004    spec round-trip: every field in both to_dict and from_dict
RPR005    event ordering: EventKind covered by the documented contract;
          heappush tuples carry the tie-break shape
========  ==================================================================

A finding is waived line-by-line with
``# repro-lint: disable=RPR002 -- one-line justification`` — the reason
is mandatory (RPR000 flags bare suppressions).
"""

from __future__ import annotations

from repro.lint.base import (
    CHECKERS,
    Checker,
    Violation,
    checker_codes,
)

# Importing the checker modules registers them (via @register).
from repro.lint import determinism as _determinism  # noqa: F401
from repro.lint import events_contract as _events_contract  # noqa: F401
from repro.lint import fastpath as _fastpath  # noqa: F401
from repro.lint import slots as _slots  # noqa: F401
from repro.lint import spec_contract as _spec_contract  # noqa: F401
from repro.lint.events_contract import EVENT_ORDER
from repro.lint.runner import (
    LintResult,
    format_json,
    format_text,
    run_lint,
)

__all__ = [
    "CHECKERS",
    "Checker",
    "EVENT_ORDER",
    "LintResult",
    "Violation",
    "checker_codes",
    "format_json",
    "format_text",
    "run_lint",
]
