"""Shared infrastructure for the repro invariant linter.

The linter is a two-pass AST analysis:

1. every target file is parsed once into a :class:`ModuleSource` (AST +
   source lines + suppression comments), and a :class:`ProjectIndex` is
   built over all of them (class definitions, dataclass fields, slotted
   status, import aliases);
2. each registered :class:`Checker` runs over each module it is scoped
   to, yielding :class:`Violation` records.

Checkers register themselves into :data:`CHECKERS` via the
:func:`register` decorator; ``repro.lint.runner`` drives the passes and
applies ``# repro-lint: disable=RPRxxx -- reason`` suppressions.

Everything here is intentionally dependency-free (stdlib ``ast`` only) so
the pass stays fast — the whole of ``src/`` lints in well under a second.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Iterator

#: Matches one suppression comment.  The justification after ``--`` is
#: required (a bare suppression is itself flagged, as RPR000).
SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]*?)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)

#: Path fragments (posix) that mark the engine's hot path.  RPR001's
#: determinism rules and RPR002's slots-coverage rule apply only here.
HOT_PATH_SEGMENTS: tuple[str, ...] = ("serving/engine", "serving/autoscale")


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a code, a location, and a one-line message."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True, slots=True)
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment."""

    line: int
    codes: tuple[str, ...]
    reason: str | None


@dataclass(slots=True)
class ClassInfo:
    """What the project index records about one class definition."""

    name: str
    relpath: str
    lineno: int
    node: ast.ClassDef
    is_dataclass: bool = False
    dataclass_keywords: dict[str, object] = field(default_factory=dict)
    explicit_slots: tuple[str, ...] | None = None
    fields: tuple[str, ...] = ()

    @property
    def has_slots(self) -> bool:
        if self.explicit_slots is not None:
            return True
        return bool(self.dataclass_keywords.get("slots"))


class ModuleSource:
    """One parsed file: AST, raw lines, suppressions, import aliases."""

    __slots__ = (
        "path",
        "relpath",
        "source",
        "tree",
        "lines",
        "suppressions",
        "import_aliases",
        "classes",
    )

    def __init__(self, path: Path, relpath: str, source: str, tree: ast.Module):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions: dict[int, Suppression] = _parse_suppressions(source)
        #: local name -> dotted origin, e.g. {"np": "numpy",
        #: "SimulatedQueryOutcome": "repro.serving.engine.results"}
        self.import_aliases: dict[str, str] = _collect_imports(tree)
        self.classes: dict[str, ClassInfo] = {
            node.name: _class_info(node, relpath)
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }

    @property
    def dotted_name(self) -> str:
        """Best-effort module path, e.g. ``repro.serving.engine.core``."""
        parts = Path(self.relpath).with_suffix("").parts
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def in_hot_path(self) -> bool:
        return any(seg in self.relpath for seg in HOT_PATH_SEGMENTS)


class ProjectIndex:
    """Cross-file view used to resolve class names at stamp/call sites."""

    __slots__ = ("modules", "by_dotted", "classes_by_name")

    def __init__(self, modules: Iterable[ModuleSource]):
        self.modules: list[ModuleSource] = list(modules)
        self.by_dotted: dict[str, ModuleSource] = {
            m.dotted_name: m for m in self.modules
        }
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        for module in self.modules:
            for info in module.classes.values():
                self.classes_by_name.setdefault(info.name, []).append(info)

    def resolve_class(self, module: ModuleSource, name: str) -> ClassInfo | None:
        """Resolve ``name`` as used in ``module`` to a scanned class.

        Resolution order: same-module definition, then ``from X import
        name`` against scanned modules (suffix-matched so the linter works
        on scratch copies outside ``src/``), then a project-wide unique
        simple name.  Returns ``None`` when the class cannot be pinned
        down — callers must treat that as "cannot verify", not "ok".
        """
        if name in module.classes:
            return module.classes[name]
        origin = module.import_aliases.get(name)
        if origin and "." in origin:
            target_module, _, target_name = origin.rpartition(".")
            for dotted, scanned in self.by_dotted.items():
                if dotted == target_module or target_module.endswith("." + dotted):
                    info = scanned.classes.get(target_name)
                    if info is not None:
                        return info
        candidates = self.classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


class Checker:
    """Base class for one lint rule.  Subclasses self-register."""

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    #: posix path fragments this checker is limited to; empty = all files.
    scope: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, module: ModuleSource) -> bool:
        if not self.scope:
            return True
        return any(seg in module.relpath for seg in self.scope)

    def check(
        self, module: ModuleSource, project: ProjectIndex
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, module: ModuleSource, node: ast.AST | int, message: str
    ) -> Violation:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Violation(self.code, module.relpath, line, col, message)


#: code -> checker instance, in registration order.
CHECKERS: dict[str, Checker] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding one checker instance to :data:`CHECKERS`."""
    if not cls.code:
        raise ValueError(f"checker {cls.__name__} must define a code")
    if cls.code in CHECKERS:
        raise ValueError(f"duplicate checker code {cls.code}")
    CHECKERS[cls.code] = cls()
    return cls


def checker_codes() -> tuple[str, ...]:
    return tuple(sorted(CHECKERS))


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def _parse_suppressions(source: str) -> dict[int, Suppression]:
    """Scan *comments* (via tokenize, so docstrings that merely mention the
    syntax don't count) for ``# repro-lint: disable=...`` directives."""
    if "repro-lint" not in source:
        return {}
    found: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT or "repro-lint" not in token.string:
                continue
            match = SUPPRESS_RE.search(token.string)
            if not match:
                continue
            line = token.start[0]
            codes = tuple(
                part.strip()
                for part in match.group("codes").split(",")
                if part.strip()
            )
            found[line] = Suppression(line, codes, match.group("reason"))
    except tokenize.TokenError:  # pragma: no cover - file already ast-parsed
        pass
    return found


@register
class SuppressionHygiene(Checker):
    """RPR000 — suppressions must name known codes and carry a reason.

    This meta-check keeps ``# repro-lint: disable=`` comments honest: an
    unknown code would silently suppress nothing, and a missing ``--
    reason`` hides *why* an invariant is waived.  RPR000 itself cannot be
    suppressed (the runner never filters it).
    """

    code = "RPR000"
    name = "suppression-hygiene"
    description = (
        "repro-lint suppression comments must reference registered codes "
        "and carry a one-line justification after ' -- '"
    )

    def check(
        self, module: ModuleSource, project: ProjectIndex
    ) -> Iterator[Violation]:
        for suppression in module.suppressions.values():
            if not suppression.codes:
                yield self.violation(
                    module,
                    suppression.line,
                    "suppression comment names no lint codes "
                    "(expected '# repro-lint: disable=RPRxxx -- reason')",
                )
                continue
            for code in suppression.codes:
                if code not in CHECKERS:
                    yield self.violation(
                        module,
                        suppression.line,
                        f"unknown lint code {code!r} in suppression; "
                        f"registered codes: {', '.join(checker_codes())}",
                    )
            if not suppression.reason:
                yield self.violation(
                    module,
                    suppression.line,
                    "suppression lacks a justification; append "
                    "' -- <one-line reason>'",
                )


# ---------------------------------------------------------------------------
# AST helpers shared by several checkers
# ---------------------------------------------------------------------------


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def _literal(node: ast.expr) -> object:
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None


def _class_info(node: ast.ClassDef, relpath: str) -> ClassInfo:
    info = ClassInfo(name=node.name, relpath=relpath, lineno=node.lineno, node=node)
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = _dotted(target)
        if dotted in ("dataclass", "dataclasses.dataclass"):
            info.is_dataclass = True
            if isinstance(decorator, ast.Call):
                info.dataclass_keywords = {
                    kw.arg: _literal(kw.value)
                    for kw in decorator.keywords
                    if kw.arg is not None
                }
    fields: list[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    value = _literal(stmt.value)
                    if isinstance(value, (tuple, list)):
                        info.explicit_slots = tuple(str(v) for v in value)
                    elif isinstance(value, str):
                        info.explicit_slots = (value,)
                    else:
                        info.explicit_slots = ()
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append(stmt.target.id)
    info.fields = tuple(fields)
    return info


def _dotted(node: ast.expr) -> str:
    """Render ``a.b.c`` attribute chains; empty string for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass(slots=True)
class StampSite:
    """One ``Cls.__new__(Cls)`` + ``obj.__dict__`` stamping site."""

    class_name: str | None
    lineno: int
    keys: dict[str, int]
    uses_update: bool
    #: True once the site actually reads ``obj.__dict__`` — a bare
    #: ``Cls.__new__(Cls)`` (pickle-style) is not a stamp.
    touches_dict: bool


def find_stamp_sites(func: ast.FunctionDef) -> list[StampSite]:
    """Locate fast-path construction sites inside one function.

    Recognizes the idiom the engine's ``_fast_drain`` / ``query_at`` use::

        out_new = Cls.__new__          # optional hoisted alias
        obj = out_new(Cls)             # or obj = Cls.__new__(Cls)
        d = obj.__dict__               # optional dict alias
        d["field"] = ...               # stamped keys
        d.update(mapping)              # marks the site as subset-checked

    Dynamic classes (``cls = record.__class__``) yield ``class_name=None``
    and are skipped by the parity checks — "cannot verify" is not "ok",
    but it is also not a static violation.
    """
    new_alias: dict[str, str | None] = {}
    sites: dict[str, StampSite] = {}
    dict_alias: dict[str, str] = {}

    def class_of_new(value: ast.expr) -> str | None | bool:
        """Return the class name for a ``__new__`` call, None if dynamic,
        False if the expression is not a ``__new__`` call at all."""
        if not isinstance(value, ast.Call):
            return False
        func_expr = value.func
        if isinstance(func_expr, ast.Attribute) and func_expr.attr == "__new__":
            base = func_expr.value
            return base.id if isinstance(base, ast.Name) else None
        if isinstance(func_expr, ast.Name) and func_expr.id in new_alias:
            return new_alias[func_expr.id]
        return False

    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr == "__new__":
            base = value.value
            new_alias[target.id] = base.id if isinstance(base, ast.Name) else None
            continue
        resolved = class_of_new(value)
        if resolved is not False:
            sites[target.id] = StampSite(
                class_name=resolved if isinstance(resolved, str) else None,
                lineno=node.lineno,
                keys={},
                uses_update=False,
                touches_dict=False,
            )
            continue
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "__dict__"
            and isinstance(value.value, ast.Name)
            and value.value.id in sites
        ):
            dict_alias[target.id] = value.value.id
            sites[value.value.id].touches_dict = True

    def site_for_dict_expr(expr: ast.expr) -> StampSite | None:
        if isinstance(expr, ast.Name) and expr.id in dict_alias:
            return sites[dict_alias[expr.id]]
        if (
            isinstance(expr, ast.Attribute)
            and expr.attr == "__dict__"
            and isinstance(expr.value, ast.Name)
            and expr.value.id in sites
        ):
            site = sites[expr.value.id]
            site.touches_dict = True
            return site
        return None

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    site = site_for_dict_expr(target.value)
                    if site is not None and isinstance(
                        target.slice, ast.Constant
                    ) and isinstance(target.slice.value, str):
                        site.keys.setdefault(target.slice.value, node.lineno)
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if isinstance(func_expr, ast.Attribute) and func_expr.attr == "update":
                site = site_for_dict_expr(func_expr.value)
                if site is not None:
                    site.uses_update = True
    return list(sites.values())


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node
