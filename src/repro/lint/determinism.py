"""RPR001 — determinism: no wall clocks, global RNGs, or hash-order loops.

The engine's record-identity ladder (see ``docs/architecture.md``) only
holds if every source of ordering and randomness is explicit: simulation
time comes from the event loop, randomness from seeded
``numpy.random.Generator`` instances, and iteration order from
insertion-ordered structures.  Inside ``serving/engine/``,
``serving/autoscale/`` and ``serving/obs/`` (the flight recorder sits on
the hot path and its exports must be byte-stable; the fault-injection
layer ``serving/engine/faults.py`` samples crash/straggle/dispatch-failure
processes and must draw them from its decorrelated seeded RNG stream)
this checker flags:

* calls into the *global* ``random`` module (``random.random()``,
  ``from random import shuffle`` + ``shuffle(...)``) — use a seeded
  ``random.Random`` / ``numpy.random.Generator`` instance;
* legacy ``numpy.random.*`` module-level calls and **unseeded**
  ``default_rng()``;
* wall-clock reads: ``time.time()`` and friends, ``datetime.now()``;
* ``for``-loops and comprehensions that iterate a ``set`` /
  ``frozenset`` expression — hash order would feed dispatch or event
  insertion.  Wrap the set in ``sorted(...)`` (the idiom the engine
  already uses) or keep an insertion-ordered list/dict alongside it.

Note on dicts: CPython dicts preserve insertion order, so plain dict
iteration is deterministic and is *not* flagged; only set-typed
iteration is.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import (
    Checker,
    ModuleSource,
    ProjectIndex,
    Violation,
    _dotted,
    register,
)

_WALL_CLOCK_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
    }
)
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
#: numpy.random attributes that are fine: seeded constructors, not draws.
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "RandomState"})
#: random-module attributes that build seeded instances rather than draw
#: from the hidden global state.
_RANDOM_OK = frozenset({"Random", "SystemRandom"})


def _set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class DeterminismChecker(Checker):
    code = "RPR001"
    name = "determinism"
    description = (
        "no global RNG draws, wall-clock reads, or set-ordered iteration "
        "inside serving/engine, serving/autoscale and serving/obs"
    )
    scope = ("serving/engine", "serving/autoscale", "serving/obs")

    def check(
        self, module: ModuleSource, project: ProjectIndex
    ) -> Iterator[Violation]:
        aliases = module.import_aliases
        random_modules = {n for n, o in aliases.items() if o == "random"}
        random_names = {
            n for n, o in aliases.items() if o.startswith("random.")
        }
        time_modules = {n for n, o in aliases.items() if o == "time"}
        time_names = {
            n
            for n, o in aliases.items()
            if o.startswith("time.") and o.split(".", 1)[1] in _WALL_CLOCK_ATTRS
        }
        numpy_modules = {n for n, o in aliases.items() if o == "numpy"}
        numpy_random_modules = {
            n for n, o in aliases.items() if o == "numpy.random"
        }
        default_rng_names = {
            n for n, o in aliases.items() if o == "numpy.random.default_rng"
        }
        datetime_roots = {
            n
            for n, o in aliases.items()
            if o in ("datetime", "datetime.datetime", "datetime.date")
        }

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    module,
                    node,
                    random_modules=random_modules,
                    random_names=random_names,
                    time_modules=time_modules,
                    time_names=time_names,
                    numpy_modules=numpy_modules,
                    numpy_random_modules=numpy_random_modules,
                    default_rng_names=default_rng_names,
                    datetime_roots=datetime_roots,
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(module, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from self._check_iter(module, generator.iter)

    def _check_call(
        self,
        module: ModuleSource,
        node: ast.Call,
        *,
        random_modules: set[str],
        random_names: set[str],
        time_modules: set[str],
        time_names: set[str],
        numpy_modules: set[str],
        numpy_random_modules: set[str],
        default_rng_names: set[str],
        datetime_roots: set[str],
    ) -> Iterator[Violation]:
        func = node.func
        dotted = _dotted(func)
        if not dotted:
            return
        head, _, rest = dotted.partition(".")

        if head in random_modules and rest and rest not in _RANDOM_OK:
            yield self.violation(
                module,
                node,
                f"call to the global random module ({dotted}); draw from a "
                "seeded random.Random or numpy.random.Generator instance",
            )
            return
        if not rest and head in random_names:
            yield self.violation(
                module,
                node,
                f"call to {head}() imported from the global random module; "
                "draw from a seeded generator instance instead",
            )
            return

        np_attr = None
        if head in numpy_modules and rest.startswith("random."):
            np_attr = rest.split(".", 1)[1]
        elif head in numpy_random_modules and rest and "." not in rest:
            np_attr = rest
        if np_attr is not None:
            if np_attr == "default_rng" and not node.args and not node.keywords:
                yield self.violation(
                    module,
                    node,
                    "default_rng() without a seed is entropy-seeded; pass an "
                    "explicit seed so runs are reproducible",
                )
            elif np_attr not in _NP_RANDOM_OK:
                yield self.violation(
                    module,
                    node,
                    f"legacy numpy.random module-level call ({dotted}); use a "
                    "seeded numpy.random.Generator (default_rng(seed))",
                )
            return
        if not rest and head in default_rng_names:
            if not node.args and not node.keywords:
                yield self.violation(
                    module,
                    node,
                    "default_rng() without a seed is entropy-seeded; pass an "
                    "explicit seed so runs are reproducible",
                )
            return

        if head in time_modules and rest in _WALL_CLOCK_ATTRS:
            yield self.violation(
                module,
                node,
                f"wall-clock read ({dotted}()); simulation time must come "
                "from the event loop clock, not the host",
            )
            return
        if not rest and head in time_names:
            yield self.violation(
                module,
                node,
                f"wall-clock read ({head}()); simulation time must come "
                "from the event loop clock, not the host",
            )
            return

        if rest and dotted.rsplit(".", 1)[-1] in _DATETIME_ATTRS:
            if head in datetime_roots:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock read ({dotted}()); timestamps must derive "
                    "from simulated time, not the host clock",
                )

    def _check_iter(
        self, module: ModuleSource, iter_expr: ast.expr
    ) -> Iterator[Violation]:
        if _set_expression(iter_expr):
            yield self.violation(
                module,
                iter_expr,
                "iteration over a set draws its order from hash seeds; "
                "sort it (sorted(...)) or iterate an insertion-ordered "
                "structure before it can feed dispatch or event insertion",
            )
