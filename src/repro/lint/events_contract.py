"""RPR005 — the event-ordering contract.

The engine's determinism rests on one documented tie-break: events are
heap-ordered by ``(time, kind, insertion seq)``, with the kind priority
COMPLETION < ARRIVAL < FAULT < RECOVERY < PROVISIONING < CONTROL
(completions free capacity before the arrival at the same instant sees the
queue; faults land after the data plane but before the control plane's
view; see ``docs/invariants.md``).  Two drift paths can silently break it:

* a **new EventKind member** whose priority nobody decided — flagged
  until :data:`EVENT_ORDER` here *and* ``docs/invariants.md`` are
  extended, so the ordering decision is forced into review;
* a **raw-tuple heappush** into an engine heap that omits the tie-break
  fields: a 2-tuple falls through to comparing payloads on ties (or
  crashes on uncomparable ones), and an event-queue ``push`` that heaps
  anything but the canonical ``(time, kind, seq, payload)`` shape
  reorders same-time events.

Scope: the EventKind rule runs everywhere (scratch copies included);
heappush shape rules run under ``serving/engine``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import (
    Checker,
    ModuleSource,
    ProjectIndex,
    Violation,
    _dotted,
    register,
)

#: The documented tie-break priority, lowest value wins.  Extending
#: EventKind requires extending this tuple (and docs/invariants.md) in
#: the same change — that is the point.
EVENT_ORDER: tuple[str, ...] = (
    "COMPLETION",
    "ARRIVAL",
    "FAULT",
    "RECOVERY",
    "PROVISIONING",
    "CONTROL",
)


def _heappush_names(module: ModuleSource) -> tuple[set[str], set[str]]:
    """Names that mean ``heapq.heappush``: (module aliases, bare names)."""
    heapq_modules = {
        n for n, o in module.import_aliases.items() if o == "heapq"
    }
    bare = {
        n for n, o in module.import_aliases.items() if o == "heapq.heappush"
    }
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            dotted = _dotted(node.value)
            if dotted and (
                dotted in {f"{m}.heappush" for m in heapq_modules}
                or dotted in bare
            ):
                bare.add(target.id)
    return heapq_modules, bare


def _is_heappush(call: ast.Call, heapq_modules: set[str], bare: set[str]) -> bool:
    dotted = _dotted(call.func)
    if not dotted:
        return False
    head, _, rest = dotted.partition(".")
    if rest == "heappush" and head in heapq_modules:
        return True
    return not rest and head in bare


@register
class EventOrderingChecker(Checker):
    code = "RPR005"
    name = "event-ordering-contract"
    description = (
        "EventKind members must be covered by the documented (time, kind, "
        "seq) ordering; raw-tuple heappushes must carry the tie-break shape"
    )
    scope = ()  # EventKind rule is global; heappush rules gate on the path

    def check(
        self, module: ModuleSource, project: ProjectIndex
    ) -> Iterator[Violation]:
        for info in module.classes.values():
            if info.name == "EventKind":
                yield from self._check_event_kind(module, info.node)

        if "serving/engine" not in module.relpath:
            return
        heapq_modules, bare = _heappush_names(module)
        if not heapq_modules and not bare:
            return

        # Calls inside an event-queue ``push(self, event)`` method are held
        # to the full canonical shape; everything else to the minimum
        # (time, tie-break, payload) arity.
        in_event_push: set[ast.Call] = set()
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            for stmt in class_node.body:
                if (
                    isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "push"
                    and len(stmt.args.args) >= 2
                    and stmt.args.args[1].arg == "event"
                ):
                    for call in ast.walk(stmt):
                        if isinstance(call, ast.Call) and _is_heappush(
                            call, heapq_modules, bare
                        ):
                            in_event_push.add(call)
                            yield from self._check_canonical(module, call)

        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and node not in in_event_push
                and _is_heappush(node, heapq_modules, bare)
            ):
                yield from self._check_minimum(module, node)

    def _check_event_kind(
        self, module: ModuleSource, node: ast.ClassDef
    ) -> Iterator[Violation]:
        members: dict[str, tuple[int, object]] = {}
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
            ):
                value = (
                    stmt.value.value
                    if isinstance(stmt.value, ast.Constant)
                    else None
                )
                members[stmt.targets[0].id] = (stmt.lineno, value)
        for name, (lineno, value) in members.items():
            if name not in EVENT_ORDER:
                yield self.violation(
                    module,
                    lineno,
                    f"EventKind member {name} is outside the documented "
                    "ordering contract; extend EVENT_ORDER in "
                    "repro/lint/events_contract.py and docs/invariants.md "
                    "before adding it",
                )
            elif value != EVENT_ORDER.index(name):
                yield self.violation(
                    module,
                    lineno,
                    f"EventKind.{name} must have value "
                    f"{EVENT_ORDER.index(name)} (documented priority "
                    f"{' < '.join(EVENT_ORDER)}); found {value!r}",
                )
        for name in EVENT_ORDER:
            if name not in members:
                yield self.violation(
                    module,
                    node.lineno,
                    f"EventKind is missing documented member {name}; the "
                    "(time, kind, seq) contract no longer matches the code",
                )

    def _check_canonical(
        self, module: ModuleSource, call: ast.Call
    ) -> Iterator[Violation]:
        if len(call.args) < 2:
            return
        item = call.args[1]
        if not isinstance(item, ast.Tuple):
            return  # pushing a prebuilt variable: cannot check statically
        ok = (
            len(item.elts) == 4
            and "time" in ast.unparse(item.elts[0])
            and "kind" in ast.unparse(item.elts[1])
            and any(
                tag in ast.unparse(item.elts[2]) for tag in ("counter", "seq")
            )
        )
        if not ok:
            yield self.violation(
                module,
                item,
                "event-queue push must heap the canonical (time_ms, kind, "
                "seq, payload) 4-tuple; anything else reorders same-time "
                "events",
            )

    def _check_minimum(
        self, module: ModuleSource, call: ast.Call
    ) -> Iterator[Violation]:
        if len(call.args) < 2:
            return
        item = call.args[1]
        if isinstance(item, ast.Tuple) and len(item.elts) < 3:
            yield self.violation(
                module,
                item,
                f"raw {len(item.elts)}-tuple heappush into an engine heap; "
                "ties would compare payloads — include a (time, tie-break, "
                "payload) shape with a deterministic tie-break field",
            )
