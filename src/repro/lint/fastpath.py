"""RPR003 — fast-path field parity.

PR 6's fast path bypasses dataclass ``__init__`` by stamping attribute
values straight into ``obj.__dict__`` (``_fast_drain`` building
``SimulatedQueryOutcome``, ``ArrayQueryTrace.query_at`` building
``Query``).  The compiler cannot check those string keys against the
class definition, so adding a field to the dataclass — or fat-fingering
a key — silently produces half-initialized records.  This checker
re-derives the contract statically:

* a stamp site whose class resolves to a scanned dataclass must assign
  **exactly** the dataclass's field set (missing fields and unknown keys
  are both violations);
* a site that also calls ``d.update(...)`` is subset-checked only (the
  update may cover the rest), so unknown literal keys still fail;
* dynamically-typed sites (``cls = record.__class__``) and classes the
  project index cannot resolve are skipped — the runtime identity tests
  remain the backstop there.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.base import (
    Checker,
    ModuleSource,
    ProjectIndex,
    Violation,
    find_stamp_sites,
    iter_functions,
    register,
)


@register
class FastPathParityChecker(Checker):
    code = "RPR003"
    name = "fastpath-field-parity"
    description = (
        "__dict__-stamped keys at fast-path construction sites must exactly "
        "match the bypassed dataclass's field set"
    )
    scope = ()

    def check(
        self, module: ModuleSource, project: ProjectIndex
    ) -> Iterator[Violation]:
        for func in iter_functions(module.tree):
            for site in find_stamp_sites(func):
                if site.class_name is None or not site.keys:
                    continue
                info = project.resolve_class(module, site.class_name)
                if info is None or not info.is_dataclass:
                    continue
                expected = set(info.fields)
                got = set(site.keys)
                unknown = sorted(got - expected)
                missing = sorted(expected - got)
                if unknown:
                    yield self.violation(
                        module,
                        site.lineno,
                        f"fast-path stamp for {info.name} writes keys not in "
                        f"its field set: {', '.join(unknown)}",
                    )
                if missing and not site.uses_update:
                    yield self.violation(
                        module,
                        site.lineno,
                        f"fast-path stamp for {info.name} misses fields "
                        f"{', '.join(missing)}; records built here would be "
                        "half-initialized",
                    )
