"""Drive the invariant linter: discover files, run checkers, format output.

:func:`run_lint` is the single entry point used by the CLI
(``python -m repro lint``), the test suite, and ``tools/check_docs.py``.
It parses every target file once, builds the cross-file
:class:`~repro.lint.base.ProjectIndex`, runs every registered checker in
its scope, then applies line-level suppressions
(``# repro-lint: disable=RPRxxx -- reason``).  RPR000 — the suppression
hygiene meta-check — is never itself suppressible.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.base import (
    CHECKERS,
    ModuleSource,
    ProjectIndex,
    Violation,
    checker_codes,
)


@dataclass(frozen=True, slots=True)
class LintResult:
    """Outcome of one lint run."""

    violations: tuple[Violation, ...]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.code] = counts.get(violation.code, 0) + 1
        return dict(sorted(counts.items()))


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise OSError(f"no such file or directory: {path}")
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if "__pycache__" not in candidate.parts:
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_modules(
    files: Iterable[Path], root: Path
) -> tuple[list[ModuleSource], list[Violation]]:
    """Parse every file; unparseable files become RPR000 violations."""
    modules: list[ModuleSource] = []
    errors: list[Violation] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        relpath = _relpath(path, root)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Violation(
                    "RPR000",
                    relpath,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    f"file does not parse: {exc.msg}",
                )
            )
            continue
        modules.append(ModuleSource(path, relpath, source, tree))
    return modules, errors


def run_lint(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
    root: str | Path | None = None,
) -> LintResult:
    """Lint ``paths`` and return the (suppression-filtered) result.

    ``select`` limits the run to the given codes; unknown codes raise
    ``ValueError``.  ``root`` anchors the reported relative paths
    (defaults to the current directory); checker *scoping* matches path
    fragments, so scratch copies that preserve ``serving/engine/...``
    layout get the same treatment as the real tree.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    selected: dict[str, object]
    if select is None:
        selected = dict(CHECKERS)
    else:
        wanted = list(select)
        unknown = [code for code in wanted if code not in CHECKERS]
        if unknown:
            raise ValueError(
                f"unknown lint code(s) {', '.join(sorted(unknown))}; "
                f"registered: {', '.join(checker_codes())}"
            )
        selected = {code: CHECKERS[code] for code in CHECKERS if code in wanted}

    files = discover_files(paths)
    modules, violations = load_modules(files, root_path)
    project = ProjectIndex(modules)
    for module in modules:
        for code, checker in CHECKERS.items():
            if code not in selected:
                continue
            if not checker.applies_to(module):
                continue
            for violation in checker.check(module, project):
                if _suppressed(module, violation):
                    continue
                violations.append(violation)
    violations.sort(key=Violation.sort_key)
    return LintResult(tuple(violations), files_checked=len(files))


def _suppressed(module: ModuleSource, violation: Violation) -> bool:
    if violation.code == "RPR000":
        return False  # suppression hygiene is not itself waivable
    suppression = module.suppressions.get(violation.line)
    return suppression is not None and violation.code in suppression.codes


def format_text(result: LintResult) -> str:
    lines = [violation.render() for violation in result.violations]
    if result.ok:
        lines.append(f"ok: {result.files_checked} file(s) lint-clean")
    else:
        by_code = ", ".join(
            f"{code}×{count}" for code, count in result.counts_by_code().items()
        )
        lines.append(
            f"{len(result.violations)} violation(s) in "
            f"{result.files_checked} file(s) checked ({by_code})"
        )
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "counts_by_code": result.counts_by_code(),
        "violations": [
            {
                "code": v.code,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in result.violations
        ],
    }
    return json.dumps(payload, indent=2)
