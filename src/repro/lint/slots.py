"""RPR002 — slots coverage for hot-path classes.

The engine allocates records, events, and telemetry snapshots per query
or per control tick, so attribute storage must stay fixed: a dataclass
defined under ``serving/engine/`` or ``serving/autoscale/`` must declare
``__slots__`` (``@dataclass(slots=True)`` or an explicit ``__slots__``
tuple).  Conversely, a class that *does* declare ``__slots__`` has no
``__dict__`` — so stamping ``obj.__dict__`` (the PR 6 fast-path idiom)
or ``object.__setattr__``-ing an undeclared attribute onto it fails at
runtime.  Both halves are the same invariant seen from either side,
hence one code:

* (a) hot-path dataclasses without ``__slots__`` — flagged at the class;
* (b) ``Cls.__new__(Cls)`` + ``obj.__dict__`` stamping where ``Cls`` is
  slotted — flagged at the construction site (any file);
* (c) ``object.__setattr__(self, "name", ...)`` inside a slotted class
  where ``name`` is neither a field nor an explicit slot — flagged at
  the call (any file).

Plain (non-dataclass) helper classes are exempt from (a): they are
either already hand-slotted or not allocated per event.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import (
    Checker,
    ModuleSource,
    ProjectIndex,
    Violation,
    find_stamp_sites,
    iter_functions,
    register,
)


@register
class SlotsChecker(Checker):
    code = "RPR002"
    name = "slots-coverage"
    description = (
        "hot-path dataclasses must declare __slots__; slotted classes must "
        "not be targets of __dict__ stamping or dynamic attribute writes"
    )
    scope = ()  # (b) and (c) apply everywhere; (a) gates on the hot path

    def check(
        self, module: ModuleSource, project: ProjectIndex
    ) -> Iterator[Violation]:
        if module.in_hot_path():
            for info in module.classes.values():
                if info.is_dataclass and not info.has_slots:
                    yield self.violation(
                        module,
                        info.lineno,
                        f"hot-path dataclass {info.name} does not declare "
                        "__slots__; add slots=True (instances are allocated "
                        "per event/query)",
                    )

        for func in iter_functions(module.tree):
            for site in find_stamp_sites(func):
                if site.class_name is None or not site.touches_dict:
                    continue
                info = project.resolve_class(module, site.class_name)
                if info is not None and info.has_slots:
                    yield self.violation(
                        module,
                        site.lineno,
                        f"{site.class_name} declares __slots__, so instances "
                        "have no __dict__; this fast-path stamp would raise "
                        "AttributeError at runtime",
                    )

        for info in module.classes.values():
            if not info.has_slots:
                continue
            allowed = set(info.fields)
            allowed.update(info.explicit_slots or ())
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func_expr = node.func
                if not (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr == "__setattr__"
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id == "object"
                ):
                    continue
                if len(node.args) < 2:
                    continue
                attr = node.args[1]
                if (
                    isinstance(attr, ast.Constant)
                    and isinstance(attr.value, str)
                    and attr.value not in allowed
                ):
                    yield self.violation(
                        module,
                        node,
                        f"dynamic attribute write {attr.value!r} on slotted "
                        f"class {info.name}; declare it as a field/slot or "
                        "drop the write",
                    )
