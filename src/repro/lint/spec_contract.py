"""RPR004 — spec JSON round-trip completeness.

Every frozen dataclass in ``serving/spec.py`` promises an *exact* JSON
round-trip: ``from_dict(to_dict(spec)) == spec`` (the property tests in
``tests/test_spec.py`` enforce it at runtime).  A new knob that is added
to the dataclass but not to ``to_dict`` silently falls out of the wire
format; one missing from ``from_dict``'s explicit conversions silently
resets to its default on load.  This checker closes the gap statically,
for any frozen dataclass that defines ``to_dict`` (spec.py today, future
spec modules automatically):

* every field must appear as a string key in ``to_dict`` (dict-literal
  keys and ``out["key"] = ...`` subscript stores both count);
* a class with ``to_dict`` but no ``from_dict`` is flagged — the
  round-trip has no return leg;
* ``from_dict`` must mention every field as a string constant, unless it
  passes the whole mapping through (``cls(**data)``), in which case the
  dataclass constructor itself guarantees coverage.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import (
    Checker,
    ClassInfo,
    ModuleSource,
    ProjectIndex,
    Violation,
    register,
)


def _method(info: ClassInfo, name: str) -> ast.FunctionDef | None:
    for stmt in info.node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _string_keys(func: ast.FunctionDef) -> set[str]:
    keys: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _string_constants(func: ast.FunctionDef) -> set[str]:
    return {
        node.value
        for node in ast.walk(func)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _has_mapping_passthrough(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            if any(kw.arg is None for kw in node.keywords):
                return True
    return False


@register
class SpecRoundTripChecker(Checker):
    code = "RPR004"
    name = "spec-roundtrip-completeness"
    description = (
        "every field of a frozen spec dataclass must appear in both its "
        "to_dict and from_dict"
    )
    scope = ()

    def check(
        self, module: ModuleSource, project: ProjectIndex
    ) -> Iterator[Violation]:
        for info in module.classes.values():
            if not info.is_dataclass:
                continue
            if not info.dataclass_keywords.get("frozen"):
                continue
            to_dict = _method(info, "to_dict")
            if to_dict is None:
                continue
            keys = _string_keys(to_dict)
            for field_name in info.fields:
                if field_name not in keys:
                    yield self.violation(
                        module,
                        to_dict,
                        f"field {field_name!r} of {info.name} never appears "
                        "in to_dict; it would silently fall out of the JSON "
                        "contract",
                    )
            from_dict = _method(info, "from_dict")
            if from_dict is None:
                yield self.violation(
                    module,
                    info.lineno,
                    f"{info.name} defines to_dict but no from_dict; the "
                    "round-trip has no return leg",
                )
                continue
            if _has_mapping_passthrough(from_dict):
                continue  # cls(**data): constructor enforces coverage
            mentioned = _string_constants(from_dict)
            for field_name in info.fields:
                if field_name not in mentioned:
                    yield self.violation(
                        module,
                        from_dict,
                        f"field {field_name!r} of {info.name} never appears "
                        "in from_dict; it would silently reset to its "
                        "default on load",
                    )
