"""SUSHI serving stack: query streams, the vertically integrated stack, baselines.

Ties the pieces together: a query stream annotated with (accuracy, latency)
constraints flows through SushiSched, which consults SushiAbs and drives the
SushiAccel model (with its Persistent Buffer), producing per-query serving
records.  Baselines reproduce the paper's comparison points: ``No-SUSHI``
(no PB, no scheduler) and ``SUSHI w/o scheduler`` (PB with state-unaware
caching).
"""

from repro.serving.query import Query, QueryTrace
from repro.serving.workload import WorkloadGenerator, WorkloadSpec
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.baselines import NoSushiServer, StateUnawareCachingServer
from repro.serving.runner import ExperimentRunner, StreamResult, compare_systems
from repro.serving.engine import (
    AcceleratorReplica,
    ServingEngine,
    SimulationResult,
    build_stack_engine,
)
from repro.serving.simulator import OpenLoopSimulator

__all__ = [
    "Query",
    "QueryTrace",
    "WorkloadGenerator",
    "WorkloadSpec",
    "SushiStack",
    "SushiStackConfig",
    "NoSushiServer",
    "StateUnawareCachingServer",
    "ExperimentRunner",
    "StreamResult",
    "compare_systems",
    "AcceleratorReplica",
    "ServingEngine",
    "SimulationResult",
    "build_stack_engine",
    "OpenLoopSimulator",
]
