"""SUSHI serving stack: query streams, the vertically integrated stack, baselines.

Ties the pieces together: a query stream annotated with (accuracy, latency)
constraints flows through SushiSched, which consults SushiAbs and drives the
SushiAccel model (with its Persistent Buffer), producing per-query serving
records.  Baselines reproduce the paper's comparison points: ``No-SUSHI``
(no PB, no scheduler) and ``SUSHI w/o scheduler`` (PB with state-unaware
caching).

The declarative layer on top (:mod:`repro.serving.spec` +
:mod:`repro.serving.api`) describes whole scenarios — heterogeneous replica
pools, routing/admission, workloads and arrival processes — as
JSON-serializable specs, and builds/runs them through one facade:
``run_scenario(ScenarioSpec(...))``.
"""

from repro.serving.query import ArrayQueryTrace, Query, QueryTrace
from repro.serving.workload import WorkloadGenerator, WorkloadSpec
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.baselines import (
    FixedSubNetServer,
    NoSushiServer,
    StateUnawareCachingServer,
)
from repro.serving.runner import ExperimentRunner, StreamResult, compare_systems
from repro.serving.engine import (
    AcceleratorReplica,
    ServingEngine,
    SimulationResult,
    build_stack_engine,
)
from repro.serving.simulator import OpenLoopSimulator
from repro.serving.autoscale import (
    AutoscaleController,
    AutoscaleReport,
    ScaledGroup,
    ScalingEvent,
    TelemetryBus,
)
from repro.serving.obs import RecordedTrace, TraceRecorder
from repro.serving.trace_io import (
    TraceFit,
    TraceLog,
    fit_piecewise_poisson,
    load_trace_log,
)
from repro.serving.spec import (
    ArrivalSpec,
    AutoscalerSpec,
    BatchingSpec,
    FaultSpec,
    ObservabilitySpec,
    ReplicaGroupSpec,
    RetryPolicy,
    ScenarioSpec,
    scenario_schema,
)
from repro.serving.api import (
    build_engine,
    build_trace,
    format_result_summary,
    run_scenario,
)

__all__ = [
    "ArrayQueryTrace",
    "Query",
    "QueryTrace",
    "WorkloadGenerator",
    "WorkloadSpec",
    "SushiStack",
    "SushiStackConfig",
    "FixedSubNetServer",
    "NoSushiServer",
    "StateUnawareCachingServer",
    "ExperimentRunner",
    "StreamResult",
    "compare_systems",
    "AcceleratorReplica",
    "ServingEngine",
    "SimulationResult",
    "build_stack_engine",
    "OpenLoopSimulator",
    "ArrivalSpec",
    "AutoscaleController",
    "AutoscaleReport",
    "AutoscalerSpec",
    "BatchingSpec",
    "FaultSpec",
    "ObservabilitySpec",
    "RecordedTrace",
    "ReplicaGroupSpec",
    "RetryPolicy",
    "ScaledGroup",
    "ScalingEvent",
    "ScenarioSpec",
    "TelemetryBus",
    "TraceFit",
    "TraceLog",
    "TraceRecorder",
    "build_engine",
    "build_trace",
    "fit_piecewise_poisson",
    "format_result_summary",
    "load_trace_log",
    "run_scenario",
    "scenario_schema",
]
