"""Build and run serving scenarios from declarative specs.

The imperative half of the declarative API: :mod:`repro.serving.spec`
describes a scenario as data; this module turns a :class:`ScenarioSpec` into
live objects — SuperNet families, SUSHI stacks (one clone per replica, each
with its own scheduler and Persistent Buffer), baseline servers, replicas
and the discrete-event engine — and runs it:

>>> from repro.serving import ArrivalSpec, ReplicaGroupSpec, ScenarioSpec
>>> from repro.serving.api import run_scenario
>>> spec = ScenarioSpec(
...     supernet_name="ofa_mobilenetv3",
...     replica_groups=(
...         ReplicaGroupSpec(count=2, pb_kb=1728.0),
...         ReplicaGroupSpec(count=2, pb_kb=432.0),   # heterogeneous pool
...     ),
...     router="jsq",
...     admission="drop_expired",
...     arrivals=ArrivalSpec(kind="poisson", rate_per_ms=0.5),
... )
>>> result = run_scenario(spec)                        # doctest: +SKIP

Guarantees:

* A homogeneous Poisson scenario is **record-identical** to the hand-wired
  path (``build_stack_engine(stack, ...).run_open_loop(trace, ...)``): the
  same stack seeds, clone seeds, workload and arrival draws are used.
* Stacks passed in via ``stack_cache`` are never mutated — replicas always
  serve through clones — so one expensive latency table can be shared
  across many scenarios (sweeps, benchmarks, the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import PlatformConfig
from repro.serving.autoscale import AutoscaleController, ScaledGroup
from repro.serving.baselines import (
    FixedSubNetServer,
    NoSushiServer,
    StateUnawareCachingServer,
)
from repro.serving.engine import (
    AcceleratorReplica,
    FaultInjector,
    PrecomputedServer,
    QueryServer,
    ServingEngine,
    SimulationResult,
)
from repro.serving.query import ArrayQueryTrace, QueryTrace
from repro.serving.spec import ReplicaGroupSpec, ScenarioSpec
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.workload import (
    WorkloadGenerator,
    feasible_ranges_from_table,
)
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.zoo import load_supernet, paper_pareto_subnets

__all__ = [
    "build_engine",
    "build_trace",
    "format_result_summary",
    "run_scenario",
]

StackCache = dict[SushiStackConfig, SushiStack]


@dataclass(frozen=True)
class _Family:
    """The immutable substrate shared by every backend of one SuperNet."""

    supernet: object
    subnets: tuple
    accuracy_model: AccuracyModel


_FAMILIES: dict[str, _Family] = {}


def _family(supernet_name: str) -> _Family:
    """SuperNet / SubNet family / accuracy model, built once per process."""
    key = supernet_name.lower()
    if key not in _FAMILIES:
        supernet = load_supernet(supernet_name)
        subnets = tuple(paper_pareto_subnets(supernet))
        _FAMILIES[key] = _Family(
            supernet=supernet,
            subnets=subnets,
            accuracy_model=AccuracyModel(supernet),
        )
    return _FAMILIES[key]


def _stack_config(spec: ScenarioSpec, group: ReplicaGroupSpec) -> SushiStackConfig:
    return SushiStackConfig(
        supernet_name=spec.supernet_name,
        platform=group.resolved_platform(),
        policy=spec.group_policy(group),
        cache_update_period=spec.group_cache_update_period(group),
        candidate_set_size=group.candidate_set_size,
        seed=spec.group_seed(group),
    )


def _base_stack(
    spec: ScenarioSpec, group: ReplicaGroupSpec, stack_cache: StackCache
) -> SushiStack:
    """The group's template stack (cached by config; never served directly)."""
    config = _stack_config(spec, group)
    stack = stack_cache.get(config)
    if stack is None:
        family = _family(spec.supernet_name)
        stack = SushiStack(
            config,
            supernet=family.supernet,
            subnets=list(family.subnets),
            accuracy_model=family.accuracy_model,
        )
        stack_cache[config] = stack
    return stack


def _group_ranges(
    spec: ScenarioSpec, group: ReplicaGroupSpec, stack_cache: StackCache
) -> tuple[tuple[float, float], tuple[float, float]]:
    """Feasible (accuracy, latency) constraint ranges for one group."""
    if group.kind in ("sushi", "precomputed"):
        return feasible_ranges_from_table(_base_stack(spec, group, stack_cache).table)
    family = _family(spec.supernet_name)
    accel = SushiAccelModel(group.resolved_platform(), with_pb=False)
    lats = [accel.subnet_latency_ms(sn) for sn in family.subnets]
    accs = [family.accuracy_model.accuracy(sn) for sn in family.subnets]
    return (min(accs), max(accs)), (min(lats), max(lats))


def build_trace(
    spec: ScenarioSpec, *, stack_cache: StackCache | None = None
) -> QueryTrace | ArrayQueryTrace:
    """The scenario's query trace, with deferred constraint ranges resolved.

    ``None`` ranges in the workload spec resolve to the feasible ranges of
    the scenario's *first* replica group (its latency table for SUSHI-like
    backends, static profiles otherwise), so generated constraints are
    always meaningful for the family being served.

    Fast-path scenarios (``fast_path`` / ``shard``) get the array-backed
    trace: the same vectorized constraint draws, kept in numpy buffers with
    ``Query`` objects materialized lazily at dispatch.  The two forms are
    bit-identical query for query.

    Trace-replay scenarios (``arrivals.kind == "trace"`` with a ``path``)
    may carry per-request constraint columns: a ``slo_ms`` column replaces
    the drawn latency constraints, an ``accuracy_floor`` column the drawn
    accuracy constraints, so query ``i`` serves exactly what request ``i``
    of the log demanded (see :mod:`repro.serving.trace_io`).
    """
    if stack_cache is None:
        stack_cache = {}
    workload = spec.workload
    if spec.num_queries is not None:
        workload = replace(workload, num_queries=spec.num_queries)
    if not workload.has_resolved_ranges:
        acc_range, lat_range = _group_ranges(spec, spec.replica_groups[0], stack_cache)
        workload = replace(
            workload,
            accuracy_range=workload.accuracy_range or acc_range,
            latency_range_ms=workload.latency_range_ms or lat_range,
        )
    accuracy_override = latency_override = None
    log = spec.arrivals.trace_log()
    if log is not None:
        accuracy_override = log.accuracy_floor
        latency_override = log.slo_ms
    generator = WorkloadGenerator(workload, seed=spec.seed)
    if spec.fast_path or spec.shard:
        return generator.generate_array_trace(
            name=spec.name,
            accuracy_override=accuracy_override,
            latency_override=latency_override,
        )
    return generator.generate(
        name=spec.name,
        accuracy_override=accuracy_override,
        latency_override=latency_override,
    )


def _server_builder(
    spec: ScenarioSpec,
    group: ReplicaGroupSpec,
    stack_cache: StackCache,
    trace: QueryTrace | None,
) -> Callable[[int], QueryServer]:
    """A factory producing one group's backends, by engine-global position."""
    family = _family(spec.supernet_name)
    platform = group.resolved_platform()
    policy = spec.group_policy(group)
    period = spec.group_cache_update_period(group)

    if group.kind == "sushi":
        base = _base_stack(spec, group, stack_cache)
        seed = base.config.seed
        # The builder receives the engine-global replica position, so two
        # groups sharing a stack config still get decorrelated clones (a
        # single group reproduces build_stack_engine's seed + 0..N-1).
        return lambda position: base.clone(seed=seed + position)

    if group.kind == "precomputed":
        if trace is None:
            raise ValueError(
                "precomputed replica groups need the query trace at build "
                "time; pass trace= to build_engine (run_scenario does this)"
            )
        base = _base_stack(spec, group, stack_cache)
        # Serve closed-loop on a private clone so cached stacks stay pristine.
        records = base.clone(seed=base.config.seed).serve(trace)
        return lambda position: PrecomputedServer(records)

    if group.kind == "no_sushi":
        accel = SushiAccelModel(platform, with_pb=False)
        return lambda position: NoSushiServer(
            family.supernet,
            list(family.subnets),
            accel,
            family.accuracy_model,
            policy=policy,
        )

    if group.kind == "state_unaware":
        accel = SushiAccelModel(platform, with_pb=True)
        return lambda position: StateUnawareCachingServer(
            family.supernet,
            list(family.subnets),
            accel,
            family.accuracy_model,
            policy=policy,
            cache_update_period=period,
        )

    if group.kind == "static_subnet":
        accel = SushiAccelModel(platform, with_pb=False)
        return lambda position: FixedSubNetServer(
            family.supernet,
            list(family.subnets),
            accel,
            family.accuracy_model,
            subnet_name=group.subnet_name,
        )

    raise ValueError(f"unknown backend kind {group.kind!r}")  # pragma: no cover


def build_engine(
    spec: ScenarioSpec,
    *,
    trace: QueryTrace | None = None,
    stack_cache: StackCache | None = None,
) -> ServingEngine:
    """Construct the serving engine a :class:`ScenarioSpec` describes.

    Walks the replica groups in order, builds each group's backend per
    replica (SUSHI groups clone one template stack with per-replica seeds,
    exactly like ``build_stack_engine``), and lets the engine assign global
    replica indices.  ``stack_cache`` (config → stack) lets callers reuse
    expensive latency tables across scenarios; cached stacks are only ever
    cloned, never served.
    """
    if stack_cache is None:
        stack_cache = {}
    scaled = spec.scaled_groups() if spec.autoscaler is not None else ()
    scaled_builders: dict[str | None, Callable[[int], QueryServer]] = {}
    scaled_positions: dict[str | None, list[int]] = {}
    replicas: list[AcceleratorReplica] = []
    for group in spec.replica_groups:
        make_server = _server_builder(spec, group, stack_cache, trace)
        if any(g is group for g in scaled):
            scaled_builders[group.name] = make_server
            scaled_positions[group.name] = list(
                range(len(replicas), len(replicas) + group.count)
            )
        for j in range(group.count):
            replicas.append(
                AcceleratorReplica(
                    make_server(len(replicas)),
                    discipline=group.discipline,
                    name=f"{group.name}-{j}" if group.name else None,
                    max_batch=group.batching.max_batch,
                    batch_policy=group.batching.policy,
                    cost_weight=group.cost_weight,
                )
            )
    autoscaler = None
    scalable_indices = None
    if spec.autoscaler is not None:
        a = spec.autoscaler

        def make_factory(
            group: ReplicaGroupSpec, builder: Callable[[int], QueryServer]
        ) -> Callable[[int], AcceleratorReplica]:
            def factory(position: int) -> AcceleratorReplica:
                # Scale-up replica at engine-global index ``position``: the
                # same backend construction as the group's build-time
                # replicas (SUSHI groups clone the template stack — cold PB,
                # shared table, seed decorrelated by position), named after
                # the group.
                return AcceleratorReplica(
                    builder(position),
                    discipline=group.discipline,
                    name=f"{group.name}-{position}" if group.name else None,
                    max_batch=group.batching.max_batch,
                    batch_policy=group.batching.policy,
                    cost_weight=group.cost_weight,
                )

            return factory

        autoscaler = AutoscaleController(
            a.build_policy(),
            control_interval_ms=a.control_interval_ms,
            window_ms=a.window_ms,
            up_cooldown_ms=a.up_cooldown_ms,
            down_cooldown_ms=a.down_cooldown_ms,
            cost_budget=a.cost_budget,
            groups=tuple(
                ScaledGroup(
                    name=group.name,
                    cost_weight=group.cost_weight,
                    startup_delay_ms=group.startup_delay_ms,
                    min_replicas=a.min_replicas,
                    max_replicas=a.max_replicas,
                    replica_factory=make_factory(
                        group, scaled_builders[group.name]
                    ),
                )
                for group in scaled
            ),
        )
        scalable_indices = dict(scaled_positions)
    engine = ServingEngine(
        replicas,
        router=spec.router,
        admission=spec.admission,
        dispatch_time_scheduling=spec.dispatch_time_scheduling,
        autoscaler=autoscaler,
        scalable_indices=scalable_indices,
    )
    if spec.observability is not None:
        if spec.observability.trace:
            from repro.serving.obs import TraceRecorder

            engine.recorder = TraceRecorder()
        if autoscaler is not None:
            autoscaler.keep_metrics = spec.observability.keep_metrics
    if spec.faults is not None:
        f = spec.faults
        engine.faults = FaultInjector(
            seed=f.seed,
            crash_mtbf_ms=f.crash_mtbf_ms,
            straggler_mtbf_ms=f.straggler_mtbf_ms,
            straggler_duration_ms=f.straggler_duration_ms,
            straggler_factor=f.straggler_factor,
            dispatch_failure_prob=f.dispatch_failure_prob,
            max_attempts=f.retry.max_attempts,
            backoff_base_ms=f.retry.backoff_base_ms,
            backoff_multiplier=f.retry.backoff_multiplier,
            brownout_threshold=f.brownout_threshold,
            brownout_accuracy_step=f.brownout_accuracy_step,
            brownout_max_steps=f.brownout_max_steps,
            groups=f.groups or None,
        )
        # Initial replica index -> group name, so the injector can match
        # its ``groups`` coverage against the build-time pool (scale-up
        # replicas report their group at creation instead).
        engine.fault_groups = {
            index: group.name
            for index, group in zip(
                range(len(replicas)),
                (g for g in spec.replica_groups for _ in range(g.count)),
            )
        }
    return engine


def run_scenario(
    spec: ScenarioSpec, *, stack_cache: StackCache | None = None
) -> SimulationResult:
    """Run a scenario end to end: trace + arrivals + engine → result.

    The single entry point behind the CLI (``python -m repro serve``), the
    ``load_sweep`` experiment and the examples.  For a homogeneous Poisson
    scenario this is record-identical to the hand-wired
    ``build_stack_engine`` / ``run_open_loop`` path.
    """
    if stack_cache is None:
        stack_cache = {}
    trace = build_trace(spec, stack_cache=stack_cache)
    engine = build_engine(spec, trace=trace, stack_cache=stack_cache)
    arrivals = spec.arrivals.generate(len(trace))
    return engine.run(
        trace,
        arrivals,
        arrival_rate_per_ms=spec.arrivals.nominal_rate_per_ms(),
        fast_path=spec.fast_path,
        shard=spec.shard,
        shard_workers=spec.shard_workers,
    )


def format_result_summary(spec: ScenarioSpec, result: SimulationResult) -> str:
    """Human-readable summary of one scenario run (used by the CLI)."""
    from repro.analysis.reporting import format_table

    rows: dict[str, dict[str, object]] = {
        "scenario": {
            "replicas": sum(g.count for g in spec.replica_groups),
            "offered": result.num_offered,
            "served": result.num_served,
            "dropped": result.num_dropped,
            "rho": result.offered_load,
            "SLO attainment": result.slo_attainment,
            "drop rate": result.drop_rate,
            "mean response (ms)": result.mean_response_ms,
            "p99 response (ms)": result.p99_response_ms,
            "throughput (/ms)": result.achieved_throughput_per_ms,
            "goodput (/ms)": result.goodput_per_ms,
            "mean accuracy (%)": 100.0 * result.mean_accuracy,
            "replica-seconds": result.replica_seconds,
        }
    }
    if any(g.batching.max_batch > 1 for g in spec.replica_groups):
        rows["scenario"]["mean batch occupancy"] = result.mean_batch_occupancy
    if any(g.cost_weight != 1.0 for g in spec.replica_groups):
        rows["scenario"]["weighted replica-seconds"] = (
            result.weighted_replica_seconds
        )
    if result.autoscale is not None:
        rows["autoscaler"] = {
            "policy": result.autoscale.policy,
            "controls": result.autoscale.num_controls,
            "scale-ups": result.autoscale.num_scale_ups,
            "scale-downs": result.autoscale.num_scale_downs,
            "peak replicas": result.autoscale.peak_replicas,
            "mean replicas": result.mean_active_replicas,
        }
        if result.autoscale.cost_budget is not None:
            rows["autoscaler"]["cost budget"] = result.autoscale.cost_budget
    if spec.faults is not None:
        fault_row: dict[str, object] = {"crashes": result.num_crashes}
        for reason, count in sorted(result.drop_reasons.items()):
            fault_row[f"dropped ({reason})"] = count
        rows["faults"] = fault_row
    makespan = max((o.completion_ms for o in result.outcomes), default=0.0)
    for stats in result.replica_stats:
        # Utilization over the replica's own provisioned time, not the
        # whole run: a scale-up replica alive for a tenth of the run at
        # full tilt is 1.0, not 0.1.
        rows[stats.name] = {
            "served": stats.num_served,
            "dropped": stats.num_dropped,
            "mean queueing (ms)": stats.mean_queueing_ms,
            "utilization": stats.utilization(
                stats.active_ms if stats.active_ms > 0 else makespan
            ),
        }
    return format_table(
        rows,
        title=(
            f"Scenario {spec.name!r} — {spec.supernet_name}, "
            f"{spec.router}/{spec.admission}, arrivals={spec.arrivals.kind}"
            + ("" if spec.autoscaler is None else ", autoscaled")
        ),
        precision=3,
    )
