"""Autoscaling control plane over the discrete-event serving engine.

Three layers, mirroring a production autoscaler:

* **Telemetry** (:mod:`.telemetry`) — the engine feeds a
  :class:`TelemetryBus` per event; policies read sliding-window
  :class:`MetricsSnapshot`\\ s (queue depth, drop rate, utilization,
  p95 wait, arrival-rate trend).
* **Policies** (:mod:`.policies`) — pluggable desired-size functions:
  ``reactive`` thresholds, ``target_utilization`` proportional control,
  ``predictive`` short-horizon forecast control (extrapolates the rate
  trend over the provisioning delay), a ``scheduled`` oracle plan, and
  ``tier_aware`` multi-group scaling (grow the cheapest tier that fits the
  cost budget, shed the most expensive first).
* **Controller** (:mod:`.controller`) — evaluates the policy every control
  interval over one or more :class:`ScaledGroup`\\ s, clamps each group to
  ``[min, max]``, enforces the pool-wide cost budget and cooldowns, and
  logs :class:`ScalingEvent`\\ s into an :class:`AutoscaleReport`.

The engine enacts decisions: scale-up clones the replica group's SUSHI
stack (cold Persistent Buffer, shared latency table) and — when the group
declares a ``startup_delay_ms`` — *provisions* it, joining routing only
after the cold start elapses (cost accrues from the request); scale-down
cancels provisioning replicas first, then drains a serving replica before
retiring it.  Per-replica active-time accounting turns the lifecycle into
replica-seconds *cost* metrics (optionally weighted per tier), making the
SLO-attainment-vs-cost frontier measurable (the ``frontier_autoscale`` and
``frontier_predictive`` experiments).
"""

from repro.serving.autoscale.controller import (
    AutoscaleController,
    AutoscaleReport,
    GroupLoad,
    ScaledGroup,
    ScalingEvent,
)
from repro.serving.autoscale.policies import (
    POLICY_NAMES,
    GroupStatus,
    PredictivePolicy,
    ReactivePolicy,
    ScalingPolicy,
    SchedulePolicy,
    TargetUtilizationPolicy,
    TierAwarePolicy,
    make_policy,
)
from repro.serving.autoscale.telemetry import MetricsSnapshot, TelemetryBus

__all__ = [
    "AutoscaleController",
    "AutoscaleReport",
    "GroupLoad",
    "GroupStatus",
    "MetricsSnapshot",
    "POLICY_NAMES",
    "PredictivePolicy",
    "ReactivePolicy",
    "ScaledGroup",
    "ScalingEvent",
    "ScalingPolicy",
    "SchedulePolicy",
    "TargetUtilizationPolicy",
    "TierAwarePolicy",
    "TelemetryBus",
    "make_policy",
]
