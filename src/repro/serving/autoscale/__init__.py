"""Autoscaling control plane over the discrete-event serving engine.

Three layers, mirroring a production autoscaler:

* **Telemetry** (:mod:`.telemetry`) — the engine feeds a
  :class:`TelemetryBus` per event; policies read sliding-window
  :class:`MetricsSnapshot`\\ s (queue depth, drop rate, utilization,
  p95 wait).
* **Policies** (:mod:`.policies`) — pluggable desired-size functions:
  ``reactive`` thresholds, ``target_utilization`` proportional control,
  and a ``scheduled`` oracle plan.
* **Controller** (:mod:`.controller`) — evaluates the policy every control
  interval, clamps to ``[min, max]``, enforces cooldowns, and logs
  :class:`ScalingEvent`\\ s into an :class:`AutoscaleReport`.

The engine enacts decisions: scale-up clones the replica group's SUSHI
stack (cold Persistent Buffer, shared latency table); scale-down drains a
replica before retiring it.  Per-replica active-time accounting turns the
lifecycle into a replica-seconds *cost* metric, making the
SLO-attainment-vs-cost frontier measurable (the ``frontier_autoscale``
experiment).
"""

from repro.serving.autoscale.controller import (
    AutoscaleController,
    AutoscaleReport,
    ScalingEvent,
)
from repro.serving.autoscale.policies import (
    POLICY_NAMES,
    ReactivePolicy,
    ScalingPolicy,
    SchedulePolicy,
    TargetUtilizationPolicy,
    make_policy,
)
from repro.serving.autoscale.telemetry import MetricsSnapshot, TelemetryBus

__all__ = [
    "AutoscaleController",
    "AutoscaleReport",
    "MetricsSnapshot",
    "POLICY_NAMES",
    "ReactivePolicy",
    "ScalingEvent",
    "ScalingPolicy",
    "SchedulePolicy",
    "TargetUtilizationPolicy",
    "TelemetryBus",
    "make_policy",
]
