"""The autoscale controller: policy + telemetry + actuation bookkeeping.

The controller sits between the serving engine and a scaling policy.  Every
``control_interval_ms`` of simulated time the engine hands it the pool's
per-group load; the controller asks the policy for desired sizes, clamps
each group to ``[min_replicas, max_replicas]``, enforces the pool-wide cost
budget and directional cooldowns, and logs the resulting
:class:`ScalingEvent`\\ s.  The *engine* enacts the decisions — cloning
fresh replicas on scale-up (provisioning them for ``startup_delay_ms``
before they join routing), draining-then-retiring on scale-down — because
replica lifecycle is engine state; the controller only decides and
accounts.

Invariants:

* Decisions are pure functions of the tick's snapshot and group loads:
  repeated runs over the same event feed produce identical
  :class:`ScalingEvent` logs (asserted by the engine's repeat-run tests).
* Desired sizes are judged against *incoming* capacity (active +
  provisioning), so a pending cold start is never re-requested; with
  ``startup_delay_ms = 0`` everywhere this is the active count and the
  controller is decision-identical to the pre-cold-start control plane.
* The cost budget (weighted incoming replicas, weights from
  :class:`ScaledGroup.cost_weight`) is a ceiling on *growth*: decisions
  that would exceed it are trimmed, most expensive group first, but the
  budget never forces a shrink below what is already running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.serving.autoscale.policies import (
    GroupStatus,
    PredictivePolicy,
    ScalingPolicy,
    make_policy,
)
from repro.serving.autoscale.telemetry import MetricsSnapshot, TelemetryBus


@dataclass(frozen=True, slots=True)
class ScaledGroup:
    """Static configuration of one replica group under autoscaler control.

    ``cost_weight`` is the group's price in weighted replica-seconds per
    replica-second (the unit of the pool-wide cost budget); ``startup_delay_ms``
    is how long a scale-up replica provisions before it can serve.
    ``replica_factory(position)`` builds a fresh replica at engine-global
    index ``position`` (for SUSHI pools: a clone of the group's stack —
    cold Persistent Buffer, shared latency table).
    """

    name: str | None = None
    cost_weight: float = 1.0
    startup_delay_ms: float = 0.0
    min_replicas: int = 1
    max_replicas: int = 8
    replica_factory: Callable[[int], object] | None = None

    def __post_init__(self) -> None:
        if self.cost_weight <= 0:
            raise ValueError("cost_weight must be positive")
        if self.startup_delay_ms < 0:
            raise ValueError("startup_delay_ms must be non-negative")
        if self.min_replicas <= 0:
            raise ValueError("min_replicas must be positive")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")


@dataclass(frozen=True, slots=True)
class GroupLoad:
    """Instantaneous pool state of one scaled group (engine-provided)."""

    name: str | None
    num_active: int
    num_provisioning: int = 0
    num_draining: int = 0
    queue_depth: int = 0
    num_failed: int = 0
    """Replicas of the group that have crashed (cumulative; crashed
    replicas already left ``num_active``, so self-healing falls out of the
    ``min_replicas`` clamp without any policy change)."""

    @property
    def num_incoming(self) -> int:
        return self.num_active + self.num_provisioning


@dataclass(frozen=True, slots=True)
class ScalingEvent:
    """One enacted (or attempted) scaling decision.

    The three ``*_desired`` fields explain the decision pipeline: what the
    policy asked for raw, after the ``[min, max]`` clamp, and after the
    cost-budget trim.  ``to_replicas`` is what survived cooldowns.
    """

    time_ms: float
    action: str
    """``scale_up`` / ``scale_down`` / ``held`` (cooldown or clamp bound)."""
    from_replicas: int
    to_replicas: int
    reason: str
    group: str | None = None
    """Scaled group the event applies to (None for a single unnamed group)."""
    policy_desired: int | None = None
    """Raw size the policy asked for, before any clamp."""
    clamped_desired: int | None = None
    """Desired size after the per-group ``[min, max]`` clamp."""
    budget_desired: int | None = None
    """Desired size after the pool-wide cost-budget trim."""


@dataclass(frozen=True, slots=True)
class AutoscaleReport:
    """Control-plane summary attached to a :class:`SimulationResult`."""

    policy: str
    control_interval_ms: float
    num_controls: int
    events: tuple[ScalingEvent, ...]
    peak_replicas: int
    final_replicas: int
    cost_budget: float | None = None
    final_by_group: tuple[tuple[str | None, int], ...] = ()
    """Final active replica count per scaled group (multi-tier pools)."""

    @property
    def num_scale_ups(self) -> int:
        return sum(1 for e in self.events if e.action == "scale_up")

    @property
    def num_scale_downs(self) -> int:
        return sum(1 for e in self.events if e.action == "scale_down")


class AutoscaleController:
    """Evaluate a scaling policy at a fixed control interval.

    Parameters
    ----------
    policy:
        Scaling policy name or instance (see
        :func:`~repro.serving.autoscale.policies.make_policy`).  A policy
        *instance* belongs to exactly one controller: the controller may
        derive configuration into it (a predictive policy's ``horizon_ms``)
        and drives its per-run state (the smoothed-demand EMA), so sharing
        one instance across controllers couples their decisions — pass a
        name (or a fresh instance) per controller instead.
    control_interval_ms:
        Simulated time between policy evaluations.
    window_ms:
        Telemetry sliding window (default: twice the control interval).
    min_replicas, max_replicas:
        Hard bounds on the scalable pool size (per scaled group).
    up_cooldown_ms, down_cooldown_ms:
        Minimum time between consecutive scale-ups / scale-downs (pool-wide
        and directional).  Scaling up is usually allowed faster than
        scaling down (drops hurt more than idle replicas).
    replica_factory:
        ``factory(position) -> AcceleratorReplica`` for the single implicit
        group when ``groups`` is not given (the pre-tier API).
    groups:
        Explicit :class:`ScaledGroup` configurations for multi-tier pools.
        Mutually exclusive with ``replica_factory``; group names must be
        unique.  When omitted, one implicit group is built from
        ``replica_factory`` / ``min_replicas`` / ``max_replicas`` /
        ``startup_delay_ms``.
    startup_delay_ms:
        Provisioning delay of the implicit single group (ignored when
        ``groups`` is given).
    cost_budget:
        Pool-wide ceiling on ``sum(cost_weight x incoming replicas)``.
        ``None`` disables budget enforcement.
    """

    def __init__(
        self,
        policy: str | ScalingPolicy = "reactive",
        *,
        control_interval_ms: float = 50.0,
        window_ms: float | None = None,
        min_replicas: int = 1,
        max_replicas: int = 8,
        up_cooldown_ms: float = 0.0,
        down_cooldown_ms: float = 0.0,
        replica_factory: Callable[[int], object] | None = None,
        groups: Sequence[ScaledGroup] | None = None,
        startup_delay_ms: float = 0.0,
        cost_budget: float | None = None,
    ) -> None:
        if control_interval_ms <= 0:
            raise ValueError("control_interval_ms must be positive")
        if min_replicas <= 0:
            raise ValueError("min_replicas must be positive")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if up_cooldown_ms < 0 or down_cooldown_ms < 0:
            raise ValueError("cooldowns must be non-negative")
        if cost_budget is not None and cost_budget <= 0:
            raise ValueError("cost_budget must be positive")
        self.policy = make_policy(policy)
        self.control_interval_ms = float(control_interval_ms)
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.up_cooldown_ms = float(up_cooldown_ms)
        self.down_cooldown_ms = float(down_cooldown_ms)
        self.cost_budget = cost_budget
        if groups is not None:
            if replica_factory is not None:
                raise ValueError(
                    "pass either groups or replica_factory, not both"
                )
            self.groups = tuple(groups)
            if not self.groups:
                raise ValueError("groups must not be empty")
            names = [g.name for g in self.groups]
            if len(set(names)) != len(names):
                raise ValueError(f"scaled group names must be unique: {names}")
        else:
            self.groups = (
                ScaledGroup(
                    name=None,
                    startup_delay_ms=startup_delay_ms,
                    min_replicas=self.min_replicas,
                    max_replicas=self.max_replicas,
                    replica_factory=replica_factory,
                ),
            )
        # A predictive policy left without a horizon gets the provisioning
        # horizon it is meant to look across: the slowest group's cold start
        # plus one control interval (the soonest a decision can land).
        if isinstance(self.policy, PredictivePolicy) and self.policy.horizon_ms is None:
            self.policy.horizon_ms = self.control_interval_ms + max(
                g.startup_delay_ms for g in self.groups
            )
        if window_ms is not None:
            window = float(window_ms)
        else:
            # Default window: twice the control interval — except for a
            # predictive policy, whose slope estimate must span at least
            # twice its horizon or the extrapolation amplifies Poisson
            # noise into scaling thrash.
            window = 2.0 * self.control_interval_ms
            if isinstance(self.policy, PredictivePolicy):
                window = max(window, 2.0 * (self.policy.horizon_ms or 0.0))
        self.bus = TelemetryBus(window)
        self._events: list[ScalingEvent] = []
        self._num_controls = 0
        self._last_up_ms = -float("inf")
        self._last_down_ms = -float("inf")
        self._peak = 0
        self.recorder = None
        """Optional flight recorder (duck-typed ``TraceRecorder``); when
        set, every control tick emits one decision record per group."""
        self.keep_metrics = False
        """When True, every tick's :class:`MetricsSnapshot` is appended to
        :attr:`metrics_history` (opt-in via ``ObservabilitySpec``)."""
        self.metrics_history: list[MetricsSnapshot] = []

    # ---------------------------------------------------------------- groups
    @property
    def replica_factory(self) -> Callable[[int], object] | None:
        """The single group's factory (the pre-tier accessor)."""
        return self.groups[0].replica_factory

    def group(self, name: str | None) -> ScaledGroup:
        for g in self.groups:
            if g.name == name:
                return g
        raise KeyError(f"no scaled group named {name!r}")

    # ------------------------------------------------------------- decisions
    def decide(self, snapshot: MetricsSnapshot) -> int:
        """Desired scalable-pool size for this tick (single-group pools).

        Returns the number of replicas the (one) scaled group should have;
        the engine compares it with the current incoming count and enacts
        the delta.  Multi-group controllers go through :meth:`decide_pool`.
        """
        if len(self.groups) != 1:
            raise ValueError("decide() serves single-group pools; use decide_pool")
        g = self.groups[0]
        load = GroupLoad(
            name=g.name,
            num_active=snapshot.num_active,
            num_provisioning=snapshot.num_provisioning,
            num_draining=snapshot.num_draining,
            queue_depth=snapshot.queue_depth,
        )
        return self.decide_pool(snapshot, (load,))[g.name]

    def decide_pool(
        self, snapshot: MetricsSnapshot, loads: Sequence[GroupLoad]
    ) -> dict[str | None, int]:
        """Desired size per scaled group (after clamp, budget and cooldown).

        ``loads`` must align with :attr:`groups` (same names, same order).
        """
        self._num_controls += 1
        if self.keep_metrics:
            self.metrics_history.append(snapshot)
        by_name = {load.name: load for load in loads}
        statuses = tuple(
            GroupStatus(
                name=g.name,
                cost_weight=g.cost_weight,
                startup_delay_ms=g.startup_delay_ms,
                min_replicas=g.min_replicas,
                max_replicas=g.max_replicas,
                num_active=by_name[g.name].num_active,
                num_provisioning=by_name[g.name].num_provisioning,
                num_draining=by_name[g.name].num_draining,
                queue_depth=by_name[g.name].queue_depth,
                num_failed=by_name[g.name].num_failed,
            )
            for g in self.groups
        )
        total_incoming = sum(s.num_incoming for s in statuses)
        self._peak = max(self._peak, total_incoming)
        desired_map, reason = self.policy.desired_by_group(
            snapshot, statuses, cost_budget=self.cost_budget
        )
        # Record each decision-pipeline stage so events (and the flight
        # recorder) can explain the final action: raw policy ask, after
        # the [min, max] clamp, after the cost-budget trim.
        raw = {g.name: int(desired_map[g.name]) for g in self.groups}
        desired = {
            g.name: max(g.min_replicas, min(g.max_replicas, desired_map[g.name]))
            for g in self.groups
        }
        clamped = dict(desired)
        self._enforce_budget(desired, statuses)
        budgeted = dict(desired)

        def stages(name: str | None) -> dict[str, int]:
            return {
                "policy_desired": raw[name],
                "clamped_desired": clamped[name],
                "budget_desired": budgeted[name],
            }

        now = snapshot.time_ms
        ups = [g for g in self.groups if desired[g.name] > by_name[g.name].num_incoming]
        downs = [g for g in self.groups if desired[g.name] < by_name[g.name].num_incoming]
        # Cooldowns are directional and pool-wide; a blocked change is
        # logged per group (same from/to units as scale events) so the
        # event log can always be replayed group by group.
        held: list[ScaledGroup] = []
        if ups and now - self._last_up_ms < self.up_cooldown_ms:
            for g in ups:
                incoming = by_name[g.name].num_incoming
                desired[g.name] = incoming
                self._log(
                    now, "held", incoming, incoming,
                    f"up cooldown ({reason})", group=g.name, **stages(g.name),
                )
            held += ups
            ups = []
        if downs and now - self._last_down_ms < self.down_cooldown_ms:
            for g in downs:
                incoming = by_name[g.name].num_incoming
                desired[g.name] = incoming
                self._log(
                    now, "held", incoming, incoming,
                    f"down cooldown ({reason})", group=g.name, **stages(g.name),
                )
            held += downs
            downs = []
        if ups:
            self._last_up_ms = now
        if downs:
            self._last_down_ms = now
        for g in ups:
            self._log(
                now, "scale_up", by_name[g.name].num_incoming, desired[g.name],
                reason, group=g.name, **stages(g.name),
            )
        for g in downs:
            self._log(
                now, "scale_down", by_name[g.name].num_incoming, desired[g.name],
                reason, group=g.name, **stages(g.name),
            )
        if self.recorder is not None:
            for g in self.groups:
                if g in ups:
                    action = "scale_up"
                elif g in downs:
                    action = "scale_down"
                elif g in held:
                    action = "held"
                else:
                    action = "hold"
                load = by_name[g.name]
                self.recorder.on_decision(
                    time_ms=now,
                    group=g.name,
                    policy=self.policy.name,
                    reason=reason,
                    num_active=load.num_active,
                    num_provisioning=load.num_provisioning,
                    num_draining=load.num_draining,
                    queue_depth=load.queue_depth,
                    final_desired=desired[g.name],
                    action=action,
                    snapshot=snapshot,
                    **stages(g.name),
                )
        self._peak = max(self._peak, sum(desired.values()))
        return desired

    def _enforce_budget(
        self, desired: dict[str | None, int], statuses: Sequence[GroupStatus]
    ) -> None:
        """Trim growth so the weighted pool stays within the cost budget.

        Reductions already in ``desired`` are kept (they free budget);
        increases are cut back toward the incoming count, most expensive
        group first, until the weighted total fits.  The budget never
        forces a group below what is already incoming — shedding running
        capacity is the policy's decision, not the accountant's.
        """
        if self.cost_budget is None:
            return
        def weighted() -> float:
            return sum(s.cost_weight * desired[s.name] for s in statuses)

        # Most expensive first; ties keep declaration order (stable sort).
        for s in sorted(statuses, key=lambda s: -s.cost_weight):
            while (
                weighted() > self.cost_budget + 1e-9
                and desired[s.name] > s.num_incoming
            ):
                desired[s.name] -= 1

    def _log(
        self,
        now: float,
        action: str,
        from_n: int,
        to_n: int,
        reason: str,
        *,
        group: str | None = None,
        policy_desired: int | None = None,
        clamped_desired: int | None = None,
        budget_desired: int | None = None,
    ) -> None:
        self._events.append(
            ScalingEvent(
                time_ms=now,
                action=action,
                from_replicas=from_n,
                to_replicas=to_n,
                reason=reason,
                group=group,
                policy_desired=policy_desired,
                clamped_desired=clamped_desired,
                budget_desired=budget_desired,
            )
        )

    # -------------------------------------------------------------- lifecycle
    def make_replica(self, position: int, *, group: str | None = None):
        """A fresh replica for engine-global index ``position`` (scale-up)."""
        factory = self.group(group).replica_factory
        if factory is None:
            raise RuntimeError(
                "this autoscale controller has no replica_factory; "
                "scale-up needs one to create replicas"
            )
        return factory(position)

    def reset(self) -> None:
        """Fresh telemetry, cooldowns and event log for a new run."""
        self.bus.reset()
        self.policy.reset()
        self._events.clear()
        self._num_controls = 0
        self._last_up_ms = -float("inf")
        self._last_down_ms = -float("inf")
        self._peak = 0
        self.metrics_history.clear()

    def report(
        self,
        *,
        final_replicas: int,
        final_by_group: Sequence[tuple[str | None, int]] = (),
    ) -> AutoscaleReport:
        """Summarize the run's control activity."""
        return AutoscaleReport(
            policy=self.policy.name,
            control_interval_ms=self.control_interval_ms,
            num_controls=self._num_controls,
            events=tuple(self._events),
            peak_replicas=max(self._peak, final_replicas),
            final_replicas=final_replicas,
            cost_budget=self.cost_budget,
            final_by_group=tuple(final_by_group),
        )
