"""The autoscale controller: policy + telemetry + actuation bookkeeping.

The controller sits between the serving engine and a scaling policy.  Every
``control_interval_ms`` of simulated time the engine hands it a pool
snapshot; the controller asks the policy for a desired size, clamps it to
``[min_replicas, max_replicas]``, enforces directional cooldowns, and logs
the resulting :class:`ScalingEvent`.  The *engine* enacts the decision —
cloning fresh replicas on scale-up, draining-then-retiring on scale-down —
because replica lifecycle is engine state; the controller only decides and
accounts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.serving.autoscale.policies import ScalingPolicy, make_policy
from repro.serving.autoscale.telemetry import MetricsSnapshot, TelemetryBus


@dataclass(frozen=True)
class ScalingEvent:
    """One enacted (or attempted) scaling decision."""

    time_ms: float
    action: str
    """``scale_up`` / ``scale_down`` / ``held`` (cooldown or clamp bound)."""
    from_replicas: int
    to_replicas: int
    reason: str


@dataclass(frozen=True)
class AutoscaleReport:
    """Control-plane summary attached to a :class:`SimulationResult`."""

    policy: str
    control_interval_ms: float
    num_controls: int
    events: tuple[ScalingEvent, ...]
    peak_replicas: int
    final_replicas: int

    @property
    def num_scale_ups(self) -> int:
        return sum(1 for e in self.events if e.action == "scale_up")

    @property
    def num_scale_downs(self) -> int:
        return sum(1 for e in self.events if e.action == "scale_down")


class AutoscaleController:
    """Evaluate a scaling policy at a fixed control interval.

    Parameters
    ----------
    policy:
        Scaling policy name or instance (see
        :func:`~repro.serving.autoscale.policies.make_policy`).
    control_interval_ms:
        Simulated time between policy evaluations.
    window_ms:
        Telemetry sliding window (default: twice the control interval).
    min_replicas, max_replicas:
        Hard bounds on the scalable pool size.
    up_cooldown_ms, down_cooldown_ms:
        Minimum time between consecutive scale-ups / scale-downs.  Scaling
        up is usually allowed faster than scaling down (drops hurt more
        than idle replicas).
    replica_factory:
        ``factory(position) -> AcceleratorReplica`` used by the engine to
        create a replica at engine-global index ``position`` on scale-up
        (for SUSHI pools: a fresh clone of the group's stack — cold
        Persistent Buffer, shared latency table).
    """

    def __init__(
        self,
        policy: str | ScalingPolicy = "reactive",
        *,
        control_interval_ms: float = 50.0,
        window_ms: float | None = None,
        min_replicas: int = 1,
        max_replicas: int = 8,
        up_cooldown_ms: float = 0.0,
        down_cooldown_ms: float = 0.0,
        replica_factory: Callable[[int], object] | None = None,
    ) -> None:
        if control_interval_ms <= 0:
            raise ValueError("control_interval_ms must be positive")
        if min_replicas <= 0:
            raise ValueError("min_replicas must be positive")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if up_cooldown_ms < 0 or down_cooldown_ms < 0:
            raise ValueError("cooldowns must be non-negative")
        self.policy = make_policy(policy)
        self.control_interval_ms = float(control_interval_ms)
        self.bus = TelemetryBus(
            window_ms if window_ms is not None else 2.0 * control_interval_ms
        )
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.up_cooldown_ms = float(up_cooldown_ms)
        self.down_cooldown_ms = float(down_cooldown_ms)
        self.replica_factory = replica_factory
        self._events: list[ScalingEvent] = []
        self._num_controls = 0
        self._last_up_ms = -float("inf")
        self._last_down_ms = -float("inf")
        self._peak = 0

    # ------------------------------------------------------------- decisions
    def decide(self, snapshot: MetricsSnapshot) -> int:
        """Desired scalable-pool size for this tick (after clamp/cooldown).

        Returns the number of replicas the pool should have; the engine
        compares it with the current active count and enacts the delta.
        """
        self._num_controls += 1
        active = snapshot.num_active
        self._peak = max(self._peak, active)
        desired, reason = self.policy.desired_replicas(snapshot)
        desired = max(self.min_replicas, min(self.max_replicas, desired))
        now = snapshot.time_ms
        if desired > active:
            if now - self._last_up_ms < self.up_cooldown_ms:
                self._log(now, "held", active, active, f"up cooldown ({reason})")
                return active
            self._last_up_ms = now
            self._log(now, "scale_up", active, desired, reason)
        elif desired < active:
            if now - self._last_down_ms < self.down_cooldown_ms:
                self._log(now, "held", active, active, f"down cooldown ({reason})")
                return active
            self._last_down_ms = now
            self._log(now, "scale_down", active, desired, reason)
        self._peak = max(self._peak, desired)
        return desired

    def _log(
        self, now: float, action: str, from_n: int, to_n: int, reason: str
    ) -> None:
        self._events.append(
            ScalingEvent(
                time_ms=now,
                action=action,
                from_replicas=from_n,
                to_replicas=to_n,
                reason=reason,
            )
        )

    # -------------------------------------------------------------- lifecycle
    def make_replica(self, position: int):
        """A fresh replica for engine-global index ``position`` (scale-up)."""
        if self.replica_factory is None:
            raise RuntimeError(
                "this autoscale controller has no replica_factory; "
                "scale-up needs one to create replicas"
            )
        return self.replica_factory(position)

    def reset(self) -> None:
        """Fresh telemetry, cooldowns and event log for a new run."""
        self.bus.reset()
        self.policy.reset()
        self._events.clear()
        self._num_controls = 0
        self._last_up_ms = -float("inf")
        self._last_down_ms = -float("inf")
        self._peak = 0

    def report(self, *, final_replicas: int) -> AutoscaleReport:
        """Summarize the run's control activity."""
        return AutoscaleReport(
            policy=self.policy.name,
            control_interval_ms=self.control_interval_ms,
            num_controls=self._num_controls,
            events=tuple(self._events),
            peak_replicas=max(self._peak, final_replicas),
            final_replicas=final_replicas,
        )
