"""Pluggable scaling policies: how many replicas *should* be serving.

A policy is a pure function from a :class:`~repro.serving.autoscale.telemetry.MetricsSnapshot`
to a desired replica count (plus a human-readable reason).  Five are
provided, spanning the classic design space:

* ``reactive`` — threshold rules on the observable distress signals: scale
  up when the windowed drop rate or per-replica queue depth crosses a
  threshold, scale down when utilization falls below a floor with an empty
  queue.  The workhorse policy: no model of the workload, reacts only to
  what already went wrong.
* ``target_utilization`` — proportional control toward a utilization
  set-point: desired = ceil(active x utilization / target), with a deadband
  so steady traffic does not oscillate.  Reacts *before* queues form, but
  needs a well-chosen target.
* ``predictive`` — short-horizon forecast control: extrapolates the
  sliding-window arrival-rate trend over the provisioning horizon
  (``startup_delay + control interval``) and sizes the pool for the
  *forecast* demand, so cold replicas are requested before the ramp needs
  them.  With ``startup_delay_ms = 0`` this degenerates to proportional
  control on the measured rate.
* ``scheduled`` — an oracle/time-of-day plan: a piecewise-constant replica
  count over (optionally cyclic) simulation time.  With the plan derived
  from the known trace this is the clairvoyant upper bound reactive
  policies are judged against.
* ``tier_aware`` — the one *multi-group* policy: given per-group cost
  weights (:class:`GroupStatus.cost_weight`) it decides **which** tier of a
  heterogeneous pool to grow or shrink — grow the cheapest tier that still
  fits the cost budget, shed the most expensive tier first — via
  :meth:`ScalingPolicy.desired_by_group`.

Invariants:

* Decisions are deterministic: a pure function of the snapshot (and, for
  multi-group policies, the per-group :class:`GroupStatus` views) plus, for
  ``predictive`` only, an exponentially smoothed demand estimate that
  ``reset()`` clears — replaying the same telemetry always reproduces the
  same decisions.  All other policies are stateless between ticks.
* Policies speak in *incoming* capacity (active + provisioning): a replica
  already requested counts toward the desired size, so a provisioning
  window is never double-filled.  With no provisioning delay this is
  exactly the active count — decisions are bit-identical to the
  pre-cold-start control plane.
* The controller clamps every decision to ``[min_replicas, max_replicas]``
  (per group), enforces the cost budget, and applies directional cooldowns;
  policies only propose.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Sequence

from repro.serving.autoscale.telemetry import MetricsSnapshot


@dataclass(frozen=True, slots=True)
class GroupStatus:
    """One scaled replica group as a policy sees it at a control tick.

    Combines the group's static configuration (cost weight, startup delay,
    size bounds) with its instantaneous pool state.  Single-group policies
    never see these; the ``tier_aware`` policy ranks them to decide which
    tier to resize.
    """

    name: str | None
    cost_weight: float
    startup_delay_ms: float
    min_replicas: int
    max_replicas: int
    num_active: int
    num_provisioning: int
    num_draining: int
    queue_depth: int
    num_failed: int = 0
    """Replicas of the group that have crashed (cumulative; already out of
    ``num_active`` — the ``min_replicas`` clamp provisions replacements, so
    policies need not act on this, but failure-aware ones may)."""

    @property
    def num_incoming(self) -> int:
        """Capacity already committed: serving now or provisioning."""
        return self.num_active + self.num_provisioning


class ScalingPolicy(abc.ABC):
    """Map windowed telemetry to a desired scalable-pool size."""

    name: str

    @abc.abstractmethod
    def desired_replicas(self, snapshot: MetricsSnapshot) -> tuple[int, str]:
        """(desired replica count, reason) for this control tick."""

    def desired_by_group(
        self,
        snapshot: MetricsSnapshot,
        groups: Sequence[GroupStatus],
        *,
        cost_budget: float | None = None,
    ) -> tuple[dict[str | None, int], str]:
        """Desired size per scaled group (multi-tier pools).

        Single-group policies answer through :meth:`desired_replicas`; only
        policies that understand tiers (``tier_aware``) override this.  The
        cost budget is advisory here — the controller enforces it either
        way — but budget-aware policies use it to pick a tier that fits.
        """
        if len(groups) != 1:
            raise ValueError(
                f"policy {self.name!r} scales a single group; use the "
                "'tier_aware' policy for multi-group pools"
            )
        desired, reason = self.desired_replicas(snapshot)
        return {groups[0].name: desired}, reason

    def reset(self) -> None:
        """Clear any policy state between runs (default: stateless)."""


class ReactivePolicy(ScalingPolicy):
    """Threshold rules on drop rate, queue depth and utilization.

    Scale up by ``scale_up_step`` when the windowed drop rate exceeds
    ``max_drop_rate`` *or* the instantaneous queue depth exceeds
    ``max_queue_per_replica`` per active replica; scale down by
    ``scale_down_step`` when utilization sits below ``min_utilization``
    and the queue is no deeper than the active replica count (i.e. nothing
    is waiting beyond what is already being served).
    """

    name = "reactive"

    def __init__(
        self,
        *,
        max_drop_rate: float = 0.05,
        max_queue_per_replica: float = 4.0,
        min_utilization: float = 0.40,
        scale_up_step: int = 1,
        scale_down_step: int = 1,
    ) -> None:
        if not (0.0 <= max_drop_rate <= 1.0):
            raise ValueError("max_drop_rate must be in [0, 1]")
        if max_queue_per_replica <= 0:
            raise ValueError("max_queue_per_replica must be positive")
        if not (0.0 <= min_utilization <= 1.0):
            raise ValueError("min_utilization must be in [0, 1]")
        if scale_up_step <= 0 or scale_down_step <= 0:
            raise ValueError("scale steps must be positive")
        self.max_drop_rate = max_drop_rate
        self.max_queue_per_replica = max_queue_per_replica
        self.min_utilization = min_utilization
        self.scale_up_step = scale_up_step
        self.scale_down_step = scale_down_step

    def desired_replicas(self, snapshot: MetricsSnapshot) -> tuple[int, str]:
        # Counts are against *incoming* capacity (active + provisioning):
        # with a startup delay a pending replica already answers the distress
        # signal, so the thresholds are judged over what was requested.  With
        # no provisioning in flight this is exactly the active count.
        incoming = snapshot.num_incoming
        queue_limit = self.max_queue_per_replica * max(incoming, 1)
        if snapshot.drop_rate > self.max_drop_rate:
            return (
                incoming + self.scale_up_step,
                f"drop_rate {snapshot.drop_rate:.3f} > {self.max_drop_rate:.3f}",
            )
        if snapshot.queue_depth > queue_limit:
            return (
                incoming + self.scale_up_step,
                f"queue_depth {snapshot.queue_depth} > {queue_limit:.1f}",
            )
        if (
            snapshot.utilization < self.min_utilization
            and snapshot.queue_depth <= incoming
        ):
            return (
                incoming - self.scale_down_step,
                f"utilization {snapshot.utilization:.3f} < {self.min_utilization:.3f}",
            )
        return incoming, "steady"


class TargetUtilizationPolicy(ScalingPolicy):
    """Proportional control toward a utilization set-point.

    ``utilization x active`` is the busy-replica-equivalent demand of the
    window; dividing by the target utilization converts demand into the pool
    size that would serve it at the set-point.  Decisions inside the
    ``deadband`` around the target are suppressed to avoid oscillation.
    """

    name = "target_utilization"

    def __init__(
        self, *, target_utilization: float = 0.60, deadband: float = 0.10
    ) -> None:
        if not (0.0 < target_utilization <= 1.0):
            raise ValueError("target_utilization must be in (0, 1]")
        if not (0.0 <= deadband < 1.0):
            raise ValueError("deadband must be in [0, 1)")
        self.target_utilization = target_utilization
        self.deadband = deadband

    def desired_replicas(self, snapshot: MetricsSnapshot) -> tuple[int, str]:
        low = self.target_utilization - self.deadband
        high = self.target_utilization + self.deadband
        if low <= snapshot.utilization <= high:
            return snapshot.num_active, (
                f"utilization {snapshot.utilization:.3f} within "
                f"[{low:.2f}, {high:.2f}]"
            )
        # Utilization is measured against the capacity that produced the
        # busy time — active *and* draining replicas — so demand must be
        # un-normalized by the same count, or a burst arriving mid-drain
        # would be under-provisioned.
        capacity = max(snapshot.num_active + snapshot.num_draining, 1)
        demand = snapshot.utilization * capacity
        # The epsilon keeps float dust (0.8 * 6 / 0.6 = 8.000000000000002)
        # from ceiling into a phantom extra replica.
        desired = max(1, math.ceil(demand / self.target_utilization - 1e-9))
        return desired, (
            f"utilization {snapshot.utilization:.3f} -> "
            f"{desired} at target {self.target_utilization:.2f}"
        )


class SchedulePolicy(ScalingPolicy):
    """A piecewise-constant replica plan over simulation time.

    ``schedule`` is a sequence of ``(start_ms, replicas)`` entries sorted by
    start time; the plan holds each count from its start until the next
    entry.  With ``period_ms`` the plan cycles (diurnal days); before the
    first entry of a non-cyclic plan the first entry's count applies.

    Fed from the *known* arrival trace this is the oracle baseline: it
    provisions for load the reactive policies can only discover after the
    queues have already grown.
    """

    name = "scheduled"

    def __init__(
        self,
        schedule: Sequence[tuple[float, int]],
        *,
        period_ms: float | None = None,
    ) -> None:
        entries = tuple((float(t), int(n)) for t, n in schedule)
        if not entries:
            raise ValueError("scheduled policy needs at least one (time, count) entry")
        if any(n <= 0 for _, n in entries):
            raise ValueError("scheduled replica counts must be positive")
        if list(entries) != sorted(entries, key=lambda e: e[0]):
            raise ValueError("schedule entries must be sorted by start time")
        if period_ms is not None and period_ms <= entries[-1][0]:
            raise ValueError("period_ms must exceed the last schedule entry start")
        self.schedule = entries
        self.period_ms = period_ms

    def desired_replicas(self, snapshot: MetricsSnapshot) -> tuple[int, str]:
        t = snapshot.time_ms
        if self.period_ms is not None:
            t = t % self.period_ms
        desired = self.schedule[0][1]
        if self.period_ms is not None and t < self.schedule[0][0]:
            # Inside a cycle but before its first entry: the tail of the
            # previous cycle is still in effect.
            desired = self.schedule[-1][1]
        for start, count in self.schedule:
            if t >= start:
                desired = count
        return desired, f"plan at t={t:.1f}ms"


class PredictivePolicy(ScalingPolicy):
    """Forecast-driven proportional control: provision for the load expected
    *after* the provisioning delay, not the load measured now.

    At every tick the policy extrapolates the sliding-window arrival-rate
    trend (:attr:`MetricsSnapshot.arrival_rate_slope_per_ms2`) over
    ``horizon_ms`` — the time a cold replica needs before it can serve
    (startup delay plus one control interval; the controller fills it in
    when left ``None``) — converts the forecast rate into busy-replica
    demand via the windowed mean service time, and sizes the pool so the
    forecast runs at ``target_utilization``.  A ``deadband`` around the
    set-point suppresses churn on flat traffic.

    On a ramp the slope term requests replicas one horizon early, so they
    finish provisioning as the load lands; on a decline it sheds ahead of
    the reactive policy's utilization floor.  With ``horizon_ms = 0`` and a
    flat rate this degenerates to ``target_utilization`` control on the
    measured rate.

    The raw extrapolation is noisy (a Poisson window's two halves differ by
    luck alone, and the horizon multiplies the error), so the demand
    estimate is exponentially smoothed across ticks: ``smoothing`` is the
    weight of the newest observation (1.0 disables smoothing).  The EMA is
    the policy's only state; ``reset()`` clears it, keeping repeated runs
    identical.
    """

    name = "predictive"

    def __init__(
        self,
        *,
        horizon_ms: float | None = None,
        target_utilization: float = 0.60,
        deadband: float = 0.10,
        smoothing: float = 0.4,
    ) -> None:
        if horizon_ms is not None and horizon_ms < 0:
            raise ValueError("horizon_ms must be non-negative")
        if not (0.0 < target_utilization <= 1.0):
            raise ValueError("target_utilization must be in (0, 1]")
        if not (0.0 <= deadband < 1.0):
            raise ValueError("deadband must be in [0, 1)")
        if not (0.0 < smoothing <= 1.0):
            raise ValueError("smoothing must be in (0, 1]")
        self.horizon_ms = horizon_ms
        self.target_utilization = target_utilization
        self.deadband = deadband
        self.smoothing = smoothing
        self._smoothed_demand: float | None = None

    def reset(self) -> None:
        self._smoothed_demand = None

    def desired_replicas(self, snapshot: MetricsSnapshot) -> tuple[int, str]:
        if snapshot.mean_service_ms <= 0.0:
            # No completions in the window yet: no service-time model to
            # convert a rate into replicas.  Hold rather than guess.
            return snapshot.num_incoming, "no service-time evidence yet"
        horizon = self.horizon_ms if self.horizon_ms is not None else 0.0
        if snapshot.time_ms < horizon:
            # The estimator itself is cold: a window shorter than the
            # horizon amplifies a handful of early arrivals into a huge
            # slope.  Hold until one horizon of evidence exists.
            return snapshot.num_incoming, "warming up the rate window"
        forecast = snapshot.forecast_rate_per_ms(horizon)
        raw = forecast * snapshot.mean_service_ms  # busy-replica equivalents
        if horizon > 0:
            # Backlog correction: a standing queue is demand the forecast
            # cannot see (dispatch-time adaptation shrinks the measured
            # service time exactly when queues grow, so the rate x service
            # product understates a backlogged pool).  Size to also drain
            # the queue within one provisioning horizon.
            raw += snapshot.queue_depth * snapshot.mean_service_ms / horizon
        if self._smoothed_demand is None:
            demand = raw
        else:
            demand = self.smoothing * raw + (1.0 - self.smoothing) * self._smoothed_demand
        self._smoothed_demand = demand
        incoming = max(snapshot.num_incoming, 1)
        implied = demand / incoming
        if (
            self.target_utilization - self.deadband
            <= implied
            <= self.target_utilization + self.deadband
        ):
            return snapshot.num_incoming, (
                f"forecast utilization {implied:.3f} within deadband of "
                f"{self.target_utilization:.2f}"
            )
        # Same epsilon as target_utilization control: float dust must not
        # ceiling into a phantom replica.
        desired = max(1, math.ceil(demand / self.target_utilization - 1e-9))
        return desired, (
            f"forecast rate {forecast:.4f}/ms over {horizon:.0f}ms horizon "
            f"-> {desired} at target {self.target_utilization:.2f}"
        )


class TierAwarePolicy(ScalingPolicy):
    """Decide *which* tier of a heterogeneous pool to resize.

    Distress and idleness are judged pool-wide with the same thresholds as
    the ``reactive`` policy; the tier decision then uses the per-group cost
    weights:

    * **Scale-up** — grow the *cheapest* group (lowest ``cost_weight``)
      that is below its ``max_replicas`` and whose weighted pool would
      still fit the cost budget after the addition.  Ties break by group
      order (the spec's declaration order).
    * **Scale-down** — shrink the *most expensive* group (highest
      ``cost_weight``) that is above its ``min_replicas``, shedding the
      priciest capacity first.  Ties break by reverse group order.

    With a single group and no budget this reduces to the reactive policy's
    one-step behavior.
    """

    name = "tier_aware"

    def __init__(
        self,
        *,
        max_drop_rate: float = 0.05,
        max_queue_per_replica: float = 4.0,
        min_utilization: float = 0.40,
    ) -> None:
        if not (0.0 <= max_drop_rate <= 1.0):
            raise ValueError("max_drop_rate must be in [0, 1]")
        if max_queue_per_replica <= 0:
            raise ValueError("max_queue_per_replica must be positive")
        if not (0.0 <= min_utilization <= 1.0):
            raise ValueError("min_utilization must be in [0, 1]")
        self.max_drop_rate = max_drop_rate
        self.max_queue_per_replica = max_queue_per_replica
        self.min_utilization = min_utilization

    def desired_replicas(self, snapshot: MetricsSnapshot) -> tuple[int, str]:
        raise ValueError(
            "tier_aware decisions need per-group state; call desired_by_group"
        )

    def desired_by_group(
        self,
        snapshot: MetricsSnapshot,
        groups: Sequence[GroupStatus],
        *,
        cost_budget: float | None = None,
    ) -> tuple[dict[str | None, int], str]:
        desired = {g.name: g.num_incoming for g in groups}
        incoming = snapshot.num_incoming
        weighted = sum(g.cost_weight * g.num_incoming for g in groups)
        queue_limit = self.max_queue_per_replica * max(incoming, 1)

        distress = None
        if snapshot.drop_rate > self.max_drop_rate:
            distress = f"drop_rate {snapshot.drop_rate:.3f} > {self.max_drop_rate:.3f}"
        elif snapshot.queue_depth > queue_limit:
            distress = f"queue_depth {snapshot.queue_depth} > {queue_limit:.1f}"
        if distress is not None:
            growable = [
                (g.cost_weight, i, g)
                for i, g in enumerate(groups)
                if g.num_incoming < g.max_replicas
                and (
                    cost_budget is None
                    or weighted + g.cost_weight <= cost_budget + 1e-9
                )
            ]
            if not growable:
                return desired, f"{distress}; no tier fits the budget/bounds"
            _, _, pick = min(growable, key=lambda t: (t[0], t[1]))
            desired[pick.name] += 1
            return desired, f"{distress}; grow tier {pick.name!r} (cheapest fit)"

        if snapshot.utilization < self.min_utilization and snapshot.queue_depth <= incoming:
            shrinkable = [
                (g.cost_weight, i, g)
                for i, g in enumerate(groups)
                if g.num_incoming > g.min_replicas
            ]
            if shrinkable:
                _, _, pick = max(shrinkable, key=lambda t: (t[0], t[1]))
                desired[pick.name] -= 1
                return desired, (
                    f"utilization {snapshot.utilization:.3f} < "
                    f"{self.min_utilization:.3f}; shed tier {pick.name!r} "
                    "(most expensive)"
                )
        return desired, "steady"


_POLICIES = {
    ReactivePolicy.name: ReactivePolicy,
    TargetUtilizationPolicy.name: TargetUtilizationPolicy,
    PredictivePolicy.name: PredictivePolicy,
    SchedulePolicy.name: SchedulePolicy,
    TierAwarePolicy.name: TierAwarePolicy,
}

#: Names of the registered scaling policies.
POLICY_NAMES: tuple[str, ...] = tuple(sorted(_POLICIES))


def make_policy(spec: str | ScalingPolicy, **kwargs: Any) -> ScalingPolicy:
    """Build a scaling policy from a name (plus kwargs), or pass through."""
    if isinstance(spec, ScalingPolicy):
        if kwargs:
            raise ValueError("cannot pass kwargs with a ScalingPolicy instance")
        return spec
    try:
        cls = _POLICIES[spec]
    except KeyError as exc:
        raise ValueError(
            f"unknown scaling policy {spec!r}; available: {sorted(_POLICIES)}"
        ) from exc
    return cls(**kwargs)
