"""Pluggable scaling policies: how many replicas *should* be serving.

A policy is a pure function from a :class:`~repro.serving.autoscale.telemetry.MetricsSnapshot`
to a desired replica count (plus a human-readable reason).  Three are
provided, spanning the classic design space:

* ``reactive`` — threshold rules on the observable distress signals: scale
  up when the windowed drop rate or per-replica queue depth crosses a
  threshold, scale down when utilization falls below a floor with an empty
  queue.  The workhorse policy: no model of the workload, reacts only to
  what already went wrong.
* ``target_utilization`` — proportional control toward a utilization
  set-point: desired = ceil(active x utilization / target), with a deadband
  so steady traffic does not oscillate.  Reacts *before* queues form, but
  needs a well-chosen target.
* ``scheduled`` — an oracle/time-of-day plan: a piecewise-constant replica
  count over (optionally cyclic) simulation time.  With the plan derived
  from the known trace this is the clairvoyant upper bound reactive
  policies are judged against.

The controller clamps every decision to ``[min_replicas, max_replicas]``
and applies scale-up/scale-down cooldowns; policies themselves are
stateless between ticks.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

from repro.serving.autoscale.telemetry import MetricsSnapshot


class ScalingPolicy(abc.ABC):
    """Map windowed telemetry to a desired scalable-pool size."""

    name: str

    @abc.abstractmethod
    def desired_replicas(self, snapshot: MetricsSnapshot) -> tuple[int, str]:
        """(desired replica count, reason) for this control tick."""

    def reset(self) -> None:
        """Clear any policy state between runs (default: stateless)."""


class ReactivePolicy(ScalingPolicy):
    """Threshold rules on drop rate, queue depth and utilization.

    Scale up by ``scale_up_step`` when the windowed drop rate exceeds
    ``max_drop_rate`` *or* the instantaneous queue depth exceeds
    ``max_queue_per_replica`` per active replica; scale down by
    ``scale_down_step`` when utilization sits below ``min_utilization``
    and the queue is no deeper than the active replica count (i.e. nothing
    is waiting beyond what is already being served).
    """

    name = "reactive"

    def __init__(
        self,
        *,
        max_drop_rate: float = 0.05,
        max_queue_per_replica: float = 4.0,
        min_utilization: float = 0.40,
        scale_up_step: int = 1,
        scale_down_step: int = 1,
    ) -> None:
        if not (0.0 <= max_drop_rate <= 1.0):
            raise ValueError("max_drop_rate must be in [0, 1]")
        if max_queue_per_replica <= 0:
            raise ValueError("max_queue_per_replica must be positive")
        if not (0.0 <= min_utilization <= 1.0):
            raise ValueError("min_utilization must be in [0, 1]")
        if scale_up_step <= 0 or scale_down_step <= 0:
            raise ValueError("scale steps must be positive")
        self.max_drop_rate = max_drop_rate
        self.max_queue_per_replica = max_queue_per_replica
        self.min_utilization = min_utilization
        self.scale_up_step = scale_up_step
        self.scale_down_step = scale_down_step

    def desired_replicas(self, snapshot: MetricsSnapshot) -> tuple[int, str]:
        active = max(snapshot.num_active, 1)
        queue_limit = self.max_queue_per_replica * active
        if snapshot.drop_rate > self.max_drop_rate:
            return (
                snapshot.num_active + self.scale_up_step,
                f"drop_rate {snapshot.drop_rate:.3f} > {self.max_drop_rate:.3f}",
            )
        if snapshot.queue_depth > queue_limit:
            return (
                snapshot.num_active + self.scale_up_step,
                f"queue_depth {snapshot.queue_depth} > {queue_limit:.1f}",
            )
        if (
            snapshot.utilization < self.min_utilization
            and snapshot.queue_depth <= snapshot.num_active
        ):
            return (
                snapshot.num_active - self.scale_down_step,
                f"utilization {snapshot.utilization:.3f} < {self.min_utilization:.3f}",
            )
        return snapshot.num_active, "steady"


class TargetUtilizationPolicy(ScalingPolicy):
    """Proportional control toward a utilization set-point.

    ``utilization x active`` is the busy-replica-equivalent demand of the
    window; dividing by the target utilization converts demand into the pool
    size that would serve it at the set-point.  Decisions inside the
    ``deadband`` around the target are suppressed to avoid oscillation.
    """

    name = "target_utilization"

    def __init__(
        self, *, target_utilization: float = 0.60, deadband: float = 0.10
    ) -> None:
        if not (0.0 < target_utilization <= 1.0):
            raise ValueError("target_utilization must be in (0, 1]")
        if not (0.0 <= deadband < 1.0):
            raise ValueError("deadband must be in [0, 1)")
        self.target_utilization = target_utilization
        self.deadband = deadband

    def desired_replicas(self, snapshot: MetricsSnapshot) -> tuple[int, str]:
        low = self.target_utilization - self.deadband
        high = self.target_utilization + self.deadband
        if low <= snapshot.utilization <= high:
            return snapshot.num_active, (
                f"utilization {snapshot.utilization:.3f} within "
                f"[{low:.2f}, {high:.2f}]"
            )
        # Utilization is measured against the capacity that produced the
        # busy time — active *and* draining replicas — so demand must be
        # un-normalized by the same count, or a burst arriving mid-drain
        # would be under-provisioned.
        capacity = max(snapshot.num_active + snapshot.num_draining, 1)
        demand = snapshot.utilization * capacity
        # The epsilon keeps float dust (0.8 * 6 / 0.6 = 8.000000000000002)
        # from ceiling into a phantom extra replica.
        desired = max(1, math.ceil(demand / self.target_utilization - 1e-9))
        return desired, (
            f"utilization {snapshot.utilization:.3f} -> "
            f"{desired} at target {self.target_utilization:.2f}"
        )


class SchedulePolicy(ScalingPolicy):
    """A piecewise-constant replica plan over simulation time.

    ``schedule`` is a sequence of ``(start_ms, replicas)`` entries sorted by
    start time; the plan holds each count from its start until the next
    entry.  With ``period_ms`` the plan cycles (diurnal days); before the
    first entry of a non-cyclic plan the first entry's count applies.

    Fed from the *known* arrival trace this is the oracle baseline: it
    provisions for load the reactive policies can only discover after the
    queues have already grown.
    """

    name = "scheduled"

    def __init__(
        self,
        schedule: Sequence[tuple[float, int]],
        *,
        period_ms: float | None = None,
    ) -> None:
        entries = tuple((float(t), int(n)) for t, n in schedule)
        if not entries:
            raise ValueError("scheduled policy needs at least one (time, count) entry")
        if any(n <= 0 for _, n in entries):
            raise ValueError("scheduled replica counts must be positive")
        if list(entries) != sorted(entries, key=lambda e: e[0]):
            raise ValueError("schedule entries must be sorted by start time")
        if period_ms is not None and period_ms <= entries[-1][0]:
            raise ValueError("period_ms must exceed the last schedule entry start")
        self.schedule = entries
        self.period_ms = period_ms

    def desired_replicas(self, snapshot: MetricsSnapshot) -> tuple[int, str]:
        t = snapshot.time_ms
        if self.period_ms is not None:
            t = t % self.period_ms
        desired = self.schedule[0][1]
        if self.period_ms is not None and t < self.schedule[0][0]:
            # Inside a cycle but before its first entry: the tail of the
            # previous cycle is still in effect.
            desired = self.schedule[-1][1]
        for start, count in self.schedule:
            if t >= start:
                desired = count
        return desired, f"plan at t={t:.1f}ms"


_POLICIES = {
    ReactivePolicy.name: ReactivePolicy,
    TargetUtilizationPolicy.name: TargetUtilizationPolicy,
    SchedulePolicy.name: SchedulePolicy,
}

#: Names of the registered scaling policies.
POLICY_NAMES: tuple[str, ...] = tuple(sorted(_POLICIES))


def make_policy(spec: str | ScalingPolicy, **kwargs) -> ScalingPolicy:
    """Build a scaling policy from a name (plus kwargs), or pass through."""
    if isinstance(spec, ScalingPolicy):
        if kwargs:
            raise ValueError("cannot pass kwargs with a ScalingPolicy instance")
        return spec
    try:
        cls = _POLICIES[spec]
    except KeyError as exc:
        raise ValueError(
            f"unknown scaling policy {spec!r}; available: {sorted(_POLICIES)}"
        ) from exc
    return cls(**kwargs)
