"""Telemetry bus: the control plane's window into the data plane.

The serving engine feeds the bus one call per event — arrivals, dispatches,
completions, drops and replica failures — and the bus maintains
*sliding-window* views of them
(a deque per signal, pruned lazily).  At every control tick the autoscale
controller asks for a :class:`MetricsSnapshot`: queue depth, windowed arrival
rate, drop rate, utilization and the p95 dispatch wait — the observable
signals scaling policies act on.

The window doubles as the *forecast* substrate: the snapshot splits it in
half and reports the arrival-rate slope between the two halves
(``arrival_rate_slope_per_ms2``), which predictive policies extrapolate over
the provisioning horizon to scale ahead of a ramp instead of chasing it.

Invariants:

* The bus never looks inside the engine: instantaneous state (queue depth,
  active/provisioning/draining replica counts) is passed in at snapshot time
  by the caller, while everything windowed is accumulated from the per-event
  feed.
* Pruning is lazy and snapshots are pure reads of pool state — taking a
  snapshot never changes what a later snapshot at the same time would see,
  so control ticks cannot perturb the data plane.
* All metrics are computed from plain event timestamps; replaying the same
  event feed yields bit-identical snapshots (the engine's determinism
  guarantee extends through the control plane).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Sliding-window metrics handed to a scaling policy at a control tick.

    Attributes
    ----------
    time_ms:
        Simulation time of the control tick.
    window_ms:
        The *effective* window the rates below were measured over
        (``min(configured window, elapsed time)``).
    num_active:
        Active (routable) replicas of the scalable pool.
    num_draining:
        Replicas still finishing their queues before retirement.
    num_provisioning:
        Cold replicas requested but not yet serving (their
        ``startup_delay_ms`` has not elapsed).  Policies count these as
        *incoming* capacity so a pending scale-up is not re-requested at
        every tick of the provisioning window.
    queue_depth:
        Waiting plus in-service queries across the live pool, right now.
    arrival_rate_per_ms:
        Arrivals in the window divided by the window.
    arrival_rate_slope_per_ms2:
        First-difference estimate of how fast the arrival rate is changing:
        the rate over the window's recent half minus the rate over its older
        half, divided by half the window.  Positive on a ramp-up, negative
        on a decline, 0 when the window saw a flat rate (or is too young to
        split).  Predictive policies extrapolate
        ``rate + slope x (window/2 + horizon)`` to provision for the load
        expected *after* the provisioning delay.
    drop_rate:
        Fraction of dispatch attempts in the window shed by admission
        control (0 when the window saw neither dispatches nor drops).
    utilization:
        Busy time in the window across live replicas divided by
        ``window x num_active`` (clipped to [0, 1]).
    p95_wait_ms:
        95th percentile of the queueing delay of dispatches in the window.
    mean_service_ms:
        Mean service time of completions in the window (0 when none).
    mean_batch_occupancy:
        Mean queries per dispatch pickup in the window (0 when the window
        saw no pickups; 1.0 when the pool runs without batching).  Policies
        can read scaling headroom off this: occupancy well below the pool's
        ``max_batch`` means free batch slots absorb load before replicas do.
    """

    time_ms: float
    window_ms: float
    num_active: int
    num_draining: int
    queue_depth: int
    arrival_rate_per_ms: float
    drop_rate: float
    utilization: float
    p95_wait_ms: float
    mean_service_ms: float
    mean_batch_occupancy: float = 0.0
    num_provisioning: int = 0
    arrival_rate_slope_per_ms2: float = 0.0
    num_failed_replicas: int = 0
    """Replicas of the scalable pool that have crashed so far (cumulative;
    0 without fault injection).  Crashed replicas left the routable pool,
    so they are *not* part of ``num_active``."""
    failure_rate_per_ms: float = 0.0
    """Replica crashes in the window divided by the window (the failure
    detector's windowed signal; 0 without fault injection)."""

    @property
    def num_incoming(self) -> int:
        """Capacity already committed: serving now or provisioning."""
        return self.num_active + self.num_provisioning

    def forecast_rate_per_ms(self, horizon_ms: float) -> float:
        """Arrival rate extrapolated ``horizon_ms`` past the tick.

        The windowed rate is centered half a window in the past, so the
        extrapolation spans ``window/2 + horizon``; the result is floored
        at 0 (a steep decline cannot forecast negative traffic).
        """
        span = self.window_ms / 2.0 + horizon_ms
        return max(0.0, self.arrival_rate_per_ms + self.arrival_rate_slope_per_ms2 * span)


class TelemetryBus:
    """Accumulates per-event serving telemetry over a sliding window.

    Parameters
    ----------
    window_ms:
        Length of the sliding window the metrics are computed over.
        Typically a small multiple of the autoscaler's control interval, so
        consecutive control decisions see overlapping but fresh evidence.
    """

    def __init__(self, window_ms: float) -> None:
        if window_ms <= 0:
            raise ValueError("telemetry window_ms must be positive")
        self.window_ms = float(window_ms)
        self._arrivals: deque[float] = deque()
        self._drops: deque[float] = deque()
        self._failures: deque[float] = deque()
        self._waits: deque[tuple[float, float]] = deque()  # (time, wait_ms)
        self._services: deque[tuple[float, float]] = deque()  # (start, end)
        self._batches: deque[tuple[float, int]] = deque()  # (time, batch size)
        self._in_service_starts: dict[int, float] = {}  # replica idx -> start
        # Bound-method hoists for the per-event feed: the engine calls these
        # once per data-plane event, and reset() clears the deques in place,
        # so the binds stay valid for the bus's whole life.
        self._arrival_append = self._arrivals.append
        self._drop_append = self._drops.append
        self._wait_append = self._waits.append
        self._service_append = self._services.append
        self._batch_append = self._batches.append
        self.total_arrivals = 0
        self.total_dispatches = 0
        self.total_completions = 0
        self.total_drops = 0
        self.total_batches = 0
        self.total_failures = 0

    # ------------------------------------------------------------ event feed
    def on_arrival(self, now_ms: float) -> None:
        self._arrival_append(now_ms)
        self.total_arrivals += 1

    def on_dispatch(self, now_ms: float, *, replica_index: int, wait_ms: float) -> None:
        self._wait_append((now_ms, wait_ms))
        self._in_service_starts[replica_index] = now_ms
        self.total_dispatches += 1

    def on_completion(
        self, now_ms: float, *, replica_index: int, service_ms: float
    ) -> None:
        start = self._in_service_starts.pop(replica_index, now_ms - service_ms)
        self._service_append((start, now_ms))
        self.total_completions += 1

    def on_drop(self, now_ms: float) -> None:
        self._drop_append(now_ms)
        self.total_drops += 1

    def on_failure(self, now_ms: float) -> None:
        """One replica crash (the fault layer's failure-detector feed)."""
        self._failures.append(now_ms)
        self.total_failures += 1

    def on_batch(self, now_ms: float, *, batch_size: int) -> None:
        """One dispatch pickup of ``batch_size`` queries (1 without batching)."""
        self._batch_append((now_ms, batch_size))
        self.total_batches += 1

    # ------------------------------------------------------------- snapshot
    def _prune(self, horizon_ms: float) -> None:
        for q in (self._arrivals, self._drops, self._failures):
            while q and q[0] < horizon_ms:
                q.popleft()
        while self._waits and self._waits[0][0] < horizon_ms:
            self._waits.popleft()
        while self._batches and self._batches[0][0] < horizon_ms:
            self._batches.popleft()
        while self._services and self._services[0][1] < horizon_ms:
            self._services.popleft()

    def snapshot(
        self,
        now_ms: float,
        *,
        num_active: int,
        num_draining: int = 0,
        queue_depth: int = 0,
        capacity_replicas: int | None = None,
        num_provisioning: int = 0,
        num_failed_replicas: int = 0,
    ) -> MetricsSnapshot:
        """The windowed metrics as of ``now_ms``.

        ``num_active`` / ``num_draining`` / ``num_provisioning`` /
        ``num_failed_replicas`` / ``queue_depth`` are instantaneous pool
        facts only the engine knows; everything else comes from the event
        feed.  ``capacity_replicas`` is the utilization denominator — the
        replicas whose busy time can appear in the feed (the engine passes
        active *plus draining*, since draining replicas still serve their
        queues; provisioning replicas cannot serve and are excluded); it
        defaults to ``num_active``.
        """
        window = min(self.window_ms, now_ms) if now_ms > 0 else self.window_ms
        horizon = now_ms - window
        self._prune(horizon)

        arrivals = len(self._arrivals)
        # Rate slope: the window split in half, recent-half rate minus
        # older-half rate over the half width.  Zero for a degenerate
        # (zero-length) window.
        slope = 0.0
        half = window / 2.0
        if half > 0:
            mid = now_ms - half
            recent = sum(1 for t in self._arrivals if t >= mid)
            older = arrivals - recent
            slope = (recent - older) / half / half
        drops = len(self._drops)
        dispatches = len(self._waits)
        attempted = drops + dispatches
        drop_rate = drops / attempted if attempted else 0.0

        # Busy time inside the window: closed service intervals clipped to
        # the window, plus the open interval of anything still in service.
        busy = 0.0
        for start, end in self._services:
            busy += min(end, now_ms) - max(start, horizon)
        for start in self._in_service_starts.values():
            busy += now_ms - max(start, horizon)
        if capacity_replicas is None:
            capacity_replicas = num_active
        capacity = window * max(capacity_replicas, 1)
        utilization = min(1.0, busy / capacity) if capacity > 0 else 0.0

        waits = [w for _, w in self._waits]
        p95_wait = float(np.percentile(waits, 95)) if waits else 0.0
        services = [end - start for start, end in self._services]
        mean_service = float(np.mean(services)) if services else 0.0
        batches = [size for _, size in self._batches]
        mean_occupancy = sum(batches) / len(batches) if batches else 0.0

        return MetricsSnapshot(
            time_ms=now_ms,
            window_ms=window,
            num_active=num_active,
            num_draining=num_draining,
            queue_depth=queue_depth,
            arrival_rate_per_ms=arrivals / window if window > 0 else 0.0,
            drop_rate=drop_rate,
            utilization=utilization,
            p95_wait_ms=p95_wait,
            mean_service_ms=mean_service,
            mean_batch_occupancy=mean_occupancy,
            num_provisioning=num_provisioning,
            arrival_rate_slope_per_ms2=slope,
            num_failed_replicas=num_failed_replicas,
            failure_rate_per_ms=(
                len(self._failures) / window if window > 0 else 0.0
            ),
        )

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Forget all telemetry (a new simulation run starts)."""
        self._arrivals.clear()
        self._drops.clear()
        self._failures.clear()
        self._waits.clear()
        self._services.clear()
        self._batches.clear()
        self._in_service_starts.clear()
        self.total_arrivals = 0
        self.total_dispatches = 0
        self.total_completions = 0
        self.total_drops = 0
        self.total_batches = 0
        self.total_failures = 0
