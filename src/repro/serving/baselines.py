"""Baseline serving systems the paper compares SUSHI against (Fig. 16).

* :class:`NoSushiServer` ("No-SUSHI") — no Persistent Buffer and no SGS-aware
  scheduling: SubNet selection uses static per-SubNet latencies profiled
  without any cached SubGraph.
* :class:`StateUnawareCachingServer` ("SUSHI w/o scheduler") — the Persistent
  Buffer exists and is kept warm, but caching is *state-unaware*: every ``Q``
  queries it simply caches (a truncation of) the most recently served SubNet,
  and SubNet selection ignores the cache state.
* :class:`FixedSubNetServer` — the degenerate non-adaptive system the paper's
  introduction argues against: one SubNet pinned for every query regardless
  of its constraints (a conventional single-model deployment).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.persistent_buffer import CachedSubGraph, PersistentBuffer
from repro.core.candidates import truncate_to_capacity
from repro.core.metrics import QueryRecord
from repro.core.policies import Policy
from repro.serving.query import Query, QueryTrace
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.subnet import SubNet
from repro.supernet.supernet import SuperNet


class _StaticPolicyServer:
    """Shared logic: policy-based SubNet selection on static latencies."""

    def __init__(
        self,
        supernet: SuperNet,
        subnets: Sequence[SubNet],
        accel: SushiAccelModel,
        accuracy_model: AccuracyModel | None = None,
        *,
        policy: Policy = Policy.STRICT_ACCURACY,
    ) -> None:
        self.supernet = supernet
        self.subnets = list(subnets)
        self.accel = accel
        self.accuracy_model = accuracy_model or AccuracyModel(supernet)
        self.policy = policy
        # Static latencies: profiled once, with nothing cached.
        self.static_latency_ms = np.array(
            [accel.subnet_latency_ms(sn) for sn in self.subnets]
        )
        self.accuracies = np.array(
            [self.accuracy_model.accuracy(sn) for sn in self.subnets]
        )

    def _select(self, accuracy_constraint: float, latency_constraint_ms: float) -> int:
        if self.policy == Policy.STRICT_ACCURACY:
            feasible = np.flatnonzero(self.accuracies >= accuracy_constraint)
            if feasible.size == 0:
                return int(np.argmax(self.accuracies))
            return int(feasible[int(np.argmin(self.static_latency_ms[feasible]))])
        feasible = np.flatnonzero(self.static_latency_ms <= latency_constraint_ms)
        if feasible.size == 0:
            return int(np.argmin(self.static_latency_ms))
        return int(feasible[int(np.argmax(self.accuracies[feasible]))])


class NoSushiServer(_StaticPolicyServer):
    """No PB, no SGS-aware scheduler: every query refetches all weights."""

    def serve_query(
        self, query: Query, *, effective_latency_constraint_ms: float | None = None
    ) -> QueryRecord:
        """Serve one query at dispatch time (stateless across queries)."""
        idx = self._select(
            query.accuracy_constraint,
            query.latency_budget_ms(effective_latency_constraint_ms),
        )
        subnet = self.subnets[idx]
        breakdown = self.accel.subnet_breakdown(subnet, cached=None)
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name=subnet.name,
            served_accuracy=self.accuracy_model.accuracy(subnet),
            served_latency_ms=breakdown.latency_ms,
            cache_hit_ratio=0.0,
            offchip_energy_mj=breakdown.offchip_energy_mj,
        )

    def serve(self, trace: QueryTrace) -> list[QueryRecord]:
        return [self.serve_query(query) for query in trace]


class FixedSubNetServer(_StaticPolicyServer):
    """Serve one pinned SubNet for every query (no PB, no adaptation).

    Models a conventional deployment of a single network: query constraints
    are recorded but never influence what is served.  ``subnet_name=None``
    pins the most accurate SubNet of the family.
    """

    def __init__(
        self,
        supernet: SuperNet,
        subnets: Sequence[SubNet],
        accel: SushiAccelModel,
        accuracy_model: AccuracyModel | None = None,
        *,
        subnet_name: str | None = None,
    ) -> None:
        super().__init__(supernet, subnets, accel, accuracy_model)
        if subnet_name is None:
            self._fixed_idx = int(np.argmax(self.accuracies))
        else:
            names = [sn.name for sn in self.subnets]
            try:
                self._fixed_idx = names.index(subnet_name)
            except ValueError as exc:
                raise ValueError(
                    f"unknown SubNet {subnet_name!r}; available: {names}"
                ) from exc

    @property
    def fixed_subnet(self) -> SubNet:
        return self.subnets[self._fixed_idx]

    def estimate_service_ms(self, query: Query) -> float:
        return float(self.static_latency_ms[self._fixed_idx])

    def serve_query(
        self, query: Query, *, effective_latency_constraint_ms: float | None = None
    ) -> QueryRecord:
        subnet = self.fixed_subnet
        breakdown = self.accel.subnet_breakdown(subnet, cached=None)
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name=subnet.name,
            served_accuracy=self.accuracy_model.accuracy(subnet),
            served_latency_ms=breakdown.latency_ms,
            cache_hit_ratio=0.0,
            offchip_energy_mj=breakdown.offchip_energy_mj,
        )

    def serve(self, trace: QueryTrace) -> list[QueryRecord]:
        return [self.serve_query(query) for query in trace]


class StateUnawareCachingServer(_StaticPolicyServer):
    """PB present, but caching and selection ignore the accelerator state.

    Every ``cache_update_period`` queries the PB is reloaded with a truncation
    of the most recently served SubNet — a plausible heuristic that needs no
    hardware abstraction, which is exactly what the paper's "SUSHI w/o
    scheduler" ablation isolates.
    """

    def __init__(
        self,
        supernet: SuperNet,
        subnets: Sequence[SubNet],
        accel: SushiAccelModel,
        accuracy_model: AccuracyModel | None = None,
        *,
        policy: Policy = Policy.STRICT_ACCURACY,
        cache_update_period: int = 4,
    ) -> None:
        super().__init__(supernet, subnets, accel, accuracy_model, policy=policy)
        if cache_update_period <= 0:
            raise ValueError("cache_update_period must be positive")
        self.cache_update_period = cache_update_period
        self.pb: PersistentBuffer = accel.make_persistent_buffer()
        self._queries_seen = 0

    def begin_stream(self) -> None:
        """Restart the caching-period counter (the PB stays warm)."""
        self._queries_seen = 0

    def serve_query(
        self, query: Query, *, effective_latency_constraint_ms: float | None = None
    ) -> QueryRecord:
        """Serve one query at dispatch time; caches every ``Q`` queries."""
        idx = self._select(
            query.accuracy_constraint,
            query.latency_budget_ms(effective_latency_constraint_ms),
        )
        subnet = self.subnets[idx]
        breakdown = self.accel.subnet_breakdown(subnet, self.pb.cached)
        hit_ratio = self.pb.vector_hit_ratio(subnet)
        self.pb.record_serve(subnet)
        self._queries_seen += 1

        cache_load_ms = 0.0
        if self._queries_seen % self.cache_update_period == 0:
            subgraph = truncate_to_capacity(
                CachedSubGraph.from_subnet(subnet),
                self.pb.capacity_bytes,
                supernet=self.supernet,
            )
            fetched = self.pb.load(subgraph)
            cache_load_ms = self.accel.cache_load_latency_ms(fetched)

        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name=subnet.name,
            served_accuracy=self.accuracy_model.accuracy(subnet),
            served_latency_ms=breakdown.latency_ms,
            cache_hit_ratio=hit_ratio,
            offchip_energy_mj=breakdown.offchip_energy_mj,
            cache_load_ms=cache_load_ms,
        )

    def serve(self, trace: QueryTrace) -> list[QueryRecord]:
        self.begin_stream()
        return [self.serve_query(query) for query in trace]
