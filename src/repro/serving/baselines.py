"""Baseline serving systems the paper compares SUSHI against (Fig. 16).

* :class:`NoSushiServer` ("No-SUSHI") — no Persistent Buffer and no SGS-aware
  scheduling: SubNet selection uses static per-SubNet latencies profiled
  without any cached SubGraph.
* :class:`StateUnawareCachingServer` ("SUSHI w/o scheduler") — the Persistent
  Buffer exists and is kept warm, but caching is *state-unaware*: every ``Q``
  queries it simply caches (a truncation of) the most recently served SubNet,
  and SubNet selection ignores the cache state.
* :class:`FixedSubNetServer` — the degenerate non-adaptive system the paper's
  introduction argues against: one SubNet pinned for every query regardless
  of its constraints (a conventional single-model deployment).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.persistent_buffer import CachedSubGraph, PersistentBuffer
from repro.core.candidates import truncate_to_capacity
from repro.core.metrics import QueryRecord
from repro.core.policies import Policy
from repro.serving.query import Query, QueryTrace
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.subnet import SubNet
from repro.supernet.supernet import SuperNet


class _StaticPolicyServer:
    """Shared logic: policy-based SubNet selection on static latencies."""

    def __init__(
        self,
        supernet: SuperNet,
        subnets: Sequence[SubNet],
        accel: SushiAccelModel,
        accuracy_model: AccuracyModel | None = None,
        *,
        policy: Policy = Policy.STRICT_ACCURACY,
    ) -> None:
        self.supernet = supernet
        self.subnets = list(subnets)
        self.accel = accel
        self.accuracy_model = accuracy_model or AccuracyModel(supernet)
        self.policy = policy
        # Static latencies: profiled once, with nothing cached.
        self.static_latency_ms = np.array(
            [accel.subnet_latency_ms(sn) for sn in self.subnets]
        )
        self.accuracies = np.array(
            [self.accuracy_model.accuracy(sn) for sn in self.subnets]
        )

    def _select(self, accuracy_constraint: float, latency_constraint_ms: float) -> int:
        if self.policy == Policy.STRICT_ACCURACY:
            feasible = np.flatnonzero(self.accuracies >= accuracy_constraint)
            if feasible.size == 0:
                return int(np.argmax(self.accuracies))
            return int(feasible[int(np.argmin(self.static_latency_ms[feasible]))])
        feasible = np.flatnonzero(self.static_latency_ms <= latency_constraint_ms)
        if feasible.size == 0:
            return int(np.argmin(self.static_latency_ms))
        return int(feasible[int(np.argmax(self.accuracies[feasible]))])

    def _shared_select(
        self,
        queries: Sequence[Query],
        effective_latency_constraints_ms: Sequence[float] | None,
    ) -> int:
        """One SubNet for a whole batch: strictest accuracy, tightest budget.

        Static latencies are per query, so the tightest budget is divided by
        the batch size — a SubNet fitting the scaled budget has a batch
        evaluation (weights once, the rest per member) fitting the original
        budget, the conservative SLO-safe direction (mirrors
        :meth:`~repro.serving.stack.SushiStack.serve_dispatch_batch`).
        """
        if not queries:
            raise ValueError("a dispatch batch needs at least one query")
        accuracy = max(q.accuracy_constraint for q in queries)
        if effective_latency_constraints_ms is None:
            latency = min(q.latency_constraint_ms for q in queries)
        else:
            if len(effective_latency_constraints_ms) != len(queries):
                raise ValueError(
                    "effective_latency_constraints_ms must match the batch length"
                )
            latency = min(effective_latency_constraints_ms)
        return self._select(accuracy, latency / len(queries))

    @staticmethod
    def _batch_latency_ms(breakdown, batch_size: int) -> float:
        """Batch evaluation time: weight traffic once, the rest per member.

        The same amortization model as
        :meth:`~repro.serving.stack.SushiStack.serve_dispatch_batch`: within a
        batch the SubNet's weights are fetched and staged once and reused by
        every member, while compute and activation traffic scale with the
        batch — batching helps every system, SUSHI additionally amortizes
        *across* batches via the Persistent Buffer.
        """
        components = breakdown.components
        if batch_size == 1:
            # Bit-identical to the per-query path: total_ms directly, not
            # the algebraically equal shared + 1 x (total - shared).
            return components.total_ms
        shared_ms = components.offchip_weight_ms + components.onchip_weight_ms
        return shared_ms + batch_size * (components.total_ms - shared_ms)

    def _batch_records(
        self,
        queries: Sequence[Query],
        subnet: SubNet,
        breakdown,
        *,
        hit_ratio: float = 0.0,
        cache_load_ms: float = 0.0,
    ) -> list[QueryRecord]:
        """Per-member records of one shared batch evaluation.

        Every member reports the batch evaluation time (members complete
        together); a cache load, if any, rides on the last member — the
        same record shape the SUSHI stack's batch path produces.
        """
        batch_ms = self._batch_latency_ms(breakdown, len(queries))
        served_accuracy = self.accuracy_model.accuracy(subnet)
        last = len(queries) - 1
        return [
            QueryRecord(
                query_index=query.index,
                accuracy_constraint=query.accuracy_constraint,
                latency_constraint_ms=query.latency_constraint_ms,
                subnet_name=subnet.name,
                served_accuracy=served_accuracy,
                served_latency_ms=batch_ms,
                cache_hit_ratio=hit_ratio,
                offchip_energy_mj=breakdown.offchip_energy_mj,
                cache_load_ms=cache_load_ms if i == last else 0.0,
            )
            for i, query in enumerate(queries)
        ]


class NoSushiServer(_StaticPolicyServer):
    """No PB, no SGS-aware scheduler: every query refetches all weights."""

    def serve_query(
        self, query: Query, *, effective_latency_constraint_ms: float | None = None
    ) -> QueryRecord:
        """Serve one query at dispatch time (stateless across queries)."""
        idx = self._select(
            query.accuracy_constraint,
            query.latency_budget_ms(effective_latency_constraint_ms),
        )
        subnet = self.subnets[idx]
        breakdown = self.accel.subnet_breakdown(subnet, cached=None)
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name=subnet.name,
            served_accuracy=self.accuracy_model.accuracy(subnet),
            served_latency_ms=breakdown.latency_ms,
            cache_hit_ratio=0.0,
            offchip_energy_mj=breakdown.offchip_energy_mj,
        )

    def serve(self, trace: QueryTrace) -> list[QueryRecord]:
        return [self.serve_query(query) for query in trace]

    def serve_dispatch_batch(
        self,
        queries: Sequence[Query],
        *,
        effective_latency_constraints_ms: Sequence[float] | None = None,
    ) -> list[QueryRecord]:
        """Serve a batch on one shared SubNet (weights fetched once)."""
        idx = self._shared_select(queries, effective_latency_constraints_ms)
        subnet = self.subnets[idx]
        return self._batch_records(
            queries, subnet, self.accel.subnet_breakdown(subnet, cached=None)
        )


class FixedSubNetServer(_StaticPolicyServer):
    """Serve one pinned SubNet for every query (no PB, no adaptation).

    Models a conventional deployment of a single network: query constraints
    are recorded but never influence what is served.  ``subnet_name=None``
    pins the most accurate SubNet of the family.
    """

    def __init__(
        self,
        supernet: SuperNet,
        subnets: Sequence[SubNet],
        accel: SushiAccelModel,
        accuracy_model: AccuracyModel | None = None,
        *,
        subnet_name: str | None = None,
    ) -> None:
        super().__init__(supernet, subnets, accel, accuracy_model)
        if subnet_name is None:
            self._fixed_idx = int(np.argmax(self.accuracies))
        else:
            names = [sn.name for sn in self.subnets]
            try:
                self._fixed_idx = names.index(subnet_name)
            except ValueError as exc:
                raise ValueError(
                    f"unknown SubNet {subnet_name!r}; available: {names}"
                ) from exc

    @property
    def fixed_subnet(self) -> SubNet:
        return self.subnets[self._fixed_idx]

    def estimate_service_ms(self, query: Query) -> float:
        return float(self.static_latency_ms[self._fixed_idx])

    def serve_query(
        self, query: Query, *, effective_latency_constraint_ms: float | None = None
    ) -> QueryRecord:
        subnet = self.fixed_subnet
        breakdown = self.accel.subnet_breakdown(subnet, cached=None)
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name=subnet.name,
            served_accuracy=self.accuracy_model.accuracy(subnet),
            served_latency_ms=breakdown.latency_ms,
            cache_hit_ratio=0.0,
            offchip_energy_mj=breakdown.offchip_energy_mj,
        )

    def serve(self, trace: QueryTrace) -> list[QueryRecord]:
        return [self.serve_query(query) for query in trace]

    def serve_dispatch_batch(
        self,
        queries: Sequence[Query],
        *,
        effective_latency_constraints_ms: Sequence[float] | None = None,
    ) -> list[QueryRecord]:
        """Serve a batch on the pinned SubNet (weights fetched once)."""
        if not queries:
            raise ValueError("a dispatch batch needs at least one query")
        subnet = self.fixed_subnet
        return self._batch_records(
            queries, subnet, self.accel.subnet_breakdown(subnet, cached=None)
        )


class StateUnawareCachingServer(_StaticPolicyServer):
    """PB present, but caching and selection ignore the accelerator state.

    Every ``cache_update_period`` queries the PB is reloaded with a truncation
    of the most recently served SubNet — a plausible heuristic that needs no
    hardware abstraction, which is exactly what the paper's "SUSHI w/o
    scheduler" ablation isolates.
    """

    def __init__(
        self,
        supernet: SuperNet,
        subnets: Sequence[SubNet],
        accel: SushiAccelModel,
        accuracy_model: AccuracyModel | None = None,
        *,
        policy: Policy = Policy.STRICT_ACCURACY,
        cache_update_period: int = 4,
    ) -> None:
        super().__init__(supernet, subnets, accel, accuracy_model, policy=policy)
        if cache_update_period <= 0:
            raise ValueError("cache_update_period must be positive")
        self.cache_update_period = cache_update_period
        self.pb: PersistentBuffer = accel.make_persistent_buffer()
        self._queries_seen = 0

    def begin_stream(self) -> None:
        """Restart the caching-period counter (the PB stays warm)."""
        self._queries_seen = 0

    def serve_query(
        self, query: Query, *, effective_latency_constraint_ms: float | None = None
    ) -> QueryRecord:
        """Serve one query at dispatch time; caches every ``Q`` queries."""
        idx = self._select(
            query.accuracy_constraint,
            query.latency_budget_ms(effective_latency_constraint_ms),
        )
        subnet = self.subnets[idx]
        breakdown = self.accel.subnet_breakdown(subnet, self.pb.cached)
        hit_ratio = self.pb.vector_hit_ratio(subnet)
        self.pb.record_serve(subnet)
        self._queries_seen += 1

        cache_load_ms = 0.0
        if self._queries_seen % self.cache_update_period == 0:
            subgraph = truncate_to_capacity(
                CachedSubGraph.from_subnet(subnet),
                self.pb.capacity_bytes,
                supernet=self.supernet,
            )
            fetched = self.pb.load(subgraph)
            cache_load_ms = self.accel.cache_load_latency_ms(fetched)

        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name=subnet.name,
            served_accuracy=self.accuracy_model.accuracy(subnet),
            served_latency_ms=breakdown.latency_ms,
            cache_hit_ratio=hit_ratio,
            offchip_energy_mj=breakdown.offchip_energy_mj,
            cache_load_ms=cache_load_ms,
        )

    def serve(self, trace: QueryTrace) -> list[QueryRecord]:
        self.begin_stream()
        return [self.serve_query(query) for query in trace]

    def serve_dispatch_batch(
        self,
        queries: Sequence[Query],
        *,
        effective_latency_constraints_ms: Sequence[float] | None = None,
    ) -> list[QueryRecord]:
        """Serve a batch on one shared SubNet; at most one cache reload.

        The caching-period counter advances by the whole batch; if it crosses
        a period boundary the PB is reloaded once — after the batch — with
        the truncation of the (shared) served SubNet, mirroring the per-query
        heuristic.
        """
        idx = self._shared_select(queries, effective_latency_constraints_ms)
        subnet = self.subnets[idx]
        breakdown = self.accel.subnet_breakdown(subnet, self.pb.cached)
        hit_ratio = self.pb.vector_hit_ratio(subnet)
        for _ in queries:
            self.pb.record_serve(subnet)
        seen_before = self._queries_seen
        self._queries_seen += len(queries)

        cache_load_ms = 0.0
        period = self.cache_update_period
        if self._queries_seen // period > seen_before // period:
            subgraph = truncate_to_capacity(
                CachedSubGraph.from_subnet(subnet),
                self.pb.capacity_bytes,
                supernet=self.supernet,
            )
            fetched = self.pb.load(subgraph)
            cache_load_ms = self.accel.cache_load_latency_ms(fetched)

        return self._batch_records(
            queries,
            subnet,
            breakdown,
            hit_ratio=hit_ratio,
            cache_load_ms=cache_load_ms,
        )
