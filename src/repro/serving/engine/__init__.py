"""Discrete-event multi-replica serving engine.

One dispatch-time core unifies the closed-loop experiments (Fig. 15/16) and
the open-loop load sweeps: an event heap advances simulated time, a routing
policy spreads arrivals over N :class:`AcceleratorReplica` instances, each
replica drains its queue under a pluggable discipline, admission control
sheds queries whose deadline already expired, and every dispatch hands the
backend the query's *remaining* latency budget so scheduling and caching
decisions react to real queueing state.

Layering::

    router -> replica queue (discipline + admission) -> replica -> stack
           -> scheduler -> accelerator (+ Persistent Buffer)

An optional autoscaling control plane (:mod:`repro.serving.autoscale`)
rides on CONTROL events: the engine feeds per-event telemetry, a scaling
policy resizes the pool every control interval, and replicas are cloned on
scale-up / drained-then-retired on scale-down, with active-time accounting
per replica (the replica-seconds cost metric).
"""

from repro.serving.engine.admission import (
    AdmissionPolicy,
    AdmitAll,
    DropExpired,
    make_admission,
)
from repro.serving.engine.core import (
    ServingEngine,
    build_stack_engine,
    poisson_arrivals,
)
from repro.serving.engine.disciplines import (
    EDFQueue,
    FIFOQueue,
    QueueDiscipline,
    QueuedQuery,
    SlackPriorityQueue,
    make_discipline,
)
from repro.serving.engine.events import ArrayEventQueue, Event, EventHeap, EventKind
from repro.serving.engine.faults import FaultInjector
from repro.serving.engine.replica import (
    AcceleratorReplica,
    PrecomputedServer,
    QueryServer,
    ReplicaStats,
)
from repro.serving.engine.results import (
    DroppedQuery,
    SimulatedQueryOutcome,
    SimulationResult,
)
from repro.serving.engine.routing import (
    FastestExpectedRouter,
    JoinShortestQueueRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    RoutingPolicy,
    make_router,
)

__all__ = [
    "AcceleratorReplica",
    "AdmissionPolicy",
    "ArrayEventQueue",
    "AdmitAll",
    "DropExpired",
    "DroppedQuery",
    "EDFQueue",
    "Event",
    "EventHeap",
    "EventKind",
    "FIFOQueue",
    "FastestExpectedRouter",
    "FaultInjector",
    "JoinShortestQueueRouter",
    "LeastLoadedRouter",
    "PrecomputedServer",
    "QueryServer",
    "QueueDiscipline",
    "QueuedQuery",
    "ReplicaStats",
    "RoundRobinRouter",
    "RoutingPolicy",
    "ServingEngine",
    "SimulatedQueryOutcome",
    "SimulationResult",
    "SlackPriorityQueue",
    "build_stack_engine",
    "make_admission",
    "make_discipline",
    "make_router",
    "poisson_arrivals",
]
