"""Admission control: which queries a replica agrees to serve at dispatch.

Admission is evaluated when a query is *popped* for service, not on arrival:
only then is it known how long the query actually waited.  ``drop_expired``
sheds queries whose deadline has already passed — serving them would burn
accelerator time on a guaranteed SLO violation, which under overload starves
the queries that could still make their deadlines.
"""

from __future__ import annotations

import abc

from repro.serving.engine.disciplines import QueuedQuery


class AdmissionPolicy(abc.ABC):
    """Decide at dispatch time whether a waiting query is worth serving."""

    name: str

    @abc.abstractmethod
    def admit(self, item: QueuedQuery, now_ms: float) -> bool:
        """True to serve the query, False to shed it."""


class AdmitAll(AdmissionPolicy):
    """Serve everything, however late (the original simulator's behavior)."""

    name = "admit_all"

    def admit(self, item: QueuedQuery, now_ms: float) -> bool:
        return True


class DropExpired(AdmissionPolicy):
    """Shed queries whose deadline has already expired at dispatch time.

    Any positive service time would complete past the deadline, so at
    ``now >= deadline`` the query cannot meet its SLO and is dropped.
    """

    name = "drop_expired"

    def admit(self, item: QueuedQuery, now_ms: float) -> bool:
        return now_ms < item.deadline_ms


_ADMISSIONS = {
    AdmitAll.name: AdmitAll,
    DropExpired.name: DropExpired,
}

#: Names of the registered admission policies.
ADMISSION_NAMES: tuple[str, ...] = tuple(sorted(_ADMISSIONS))


def make_admission(spec: str | AdmissionPolicy) -> AdmissionPolicy:
    """Build an admission policy from a name, or pass an instance through."""
    if isinstance(spec, AdmissionPolicy):
        return spec
    try:
        return _ADMISSIONS[spec]()
    except KeyError as exc:
        raise ValueError(
            f"unknown admission policy {spec!r}; available: {sorted(_ADMISSIONS)}"
        ) from exc
