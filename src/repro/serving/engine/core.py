"""The discrete-event multi-replica serving engine.

One dispatch-time core behind both serving views of the paper's evaluation:

* **Open loop** — queries arrive on a Poisson process, are routed to one of
  N replicas, wait under a queue discipline, and are scheduled *at dispatch
  time*, when the actual arrival order and remaining slack are known.
* **Closed loop** — the next query is injected exactly when the previous one
  completes (zero queueing), which reproduces the paper's Fig. 15/16 serving
  semantics query for query: it is the rho → 0 limit of the open loop.

The engine is deliberately model-agnostic: a replica's backend is anything
with a ``serve_query`` method, so the SUSHI stack, the paper's baselines and
synthetic test servers all plug in unchanged.

Invariants the rest of the system builds on:

* **Determinism** — the run is a pure function of (replicas, trace,
  arrival timestamps): the event heap breaks timestamp ties by kind
  (completions → arrivals → provisioning hand-overs → control ticks) and
  then insertion order, every routing/discipline/policy decision is
  deterministic, and repeated runs (after ``reset()``) produce identical
  records, drops, scaling events and cost accounting.
* **Record identity across feature gates** — each optional layer is
  bit-exact inert at its neutral setting: ``autoscaler=None`` matches the
  pre-autoscaling event path, ``max_batch=1`` matches the pre-batching
  dispatch, ``startup_delay_ms=0`` matches the instant-scale-up control
  plane (no PROVISIONING events are ever scheduled), and a single scaled
  group with ``cost_weight=1.0`` matches the pre-tier controller.
* **Conservation** — every offered query is exactly once served or
  dropped; draining replicas finish their queues before retiring; retired
  replicas hold no work.
* **Cost accounting** — a replica accrues ``active_ms`` from creation
  (scale-up request, *including* its cold-start window) to retirement or
  the run's last data-plane event; control ticks and provisioning
  hand-overs never extend the billed duration.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

import numpy as np

from repro.serving.autoscale.controller import AutoscaleController, GroupLoad
from repro.serving.engine.admission import AdmissionPolicy, make_admission
from repro.serving.engine.disciplines import QueueDiscipline, QueuedQuery
from repro.serving.engine.events import Event, EventHeap, EventKind
from repro.serving.engine.replica import AcceleratorReplica, _InService
from repro.serving.engine.results import (
    DroppedQuery,
    SimulatedQueryOutcome,
    SimulationResult,
)
from repro.serving.engine.routing import RoutingPolicy, make_router
from repro.serving.query import QueryTrace

_MIN_EFFECTIVE_LATENCY_MS = 1e-9
"""Floor for the remaining-slack latency budget passed to schedulers."""


def poisson_arrivals(
    num_queries: int, rate_per_ms: float, *, rng: np.random.Generator
) -> np.ndarray:
    """Cumulative arrival timestamps (ms) of a Poisson process."""
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if rate_per_ms <= 0:
        raise ValueError("rate_per_ms must be positive")
    gaps = rng.exponential(scale=1.0 / rate_per_ms, size=num_queries)
    return np.cumsum(gaps)


class ServingEngine:
    """Event-driven simulation of N accelerator replicas serving a stream.

    Parameters
    ----------
    replicas:
        The serving endpoints (each owns its queue discipline and backend).
    router:
        Routing policy name or instance (``round_robin`` / ``jsq`` /
        ``least_loaded``) applied at arrival time.
    admission:
        Admission policy name or instance (``admit_all`` / ``drop_expired``)
        applied at dispatch time.
    dispatch_time_scheduling:
        When True, each dispatch passes the query's *remaining* latency
        budget (constraint minus time already waited) to the backend, so
        cache- and SLO-aware schedulers react to actual queueing state.
        When False the backend sees the nominal constraint (used by the
        legacy precomputed mode).
    autoscaler:
        Optional :class:`~repro.serving.autoscale.AutoscaleController`.
        When set, the engine feeds its telemetry bus per event and fires a
        CONTROL event every control interval: scale-up appends replicas from
        the controller's per-group factories (cold ones provision for the
        group's ``startup_delay_ms`` before joining routing), scale-down
        cancels provisioning replicas first and then drains a serving one
        (it finishes its queue, then retires).  ``None`` keeps the pool
        fixed and the event path bit-identical to the pre-autoscaling
        engine.
    scalable_indices:
        Positions of the replicas the autoscaler may retire (and whose
        group the factory clones).  For a single scaled group this is a
        plain sequence (``None`` makes the whole initial pool scalable);
        a multi-group (tier-aware) controller needs a mapping
        ``{group name: positions}`` covering each of its groups.  Ignored
        without an autoscaler.
    """

    def __init__(
        self,
        replicas: Sequence[AcceleratorReplica],
        *,
        router: str | RoutingPolicy = "round_robin",
        admission: str | AdmissionPolicy = "admit_all",
        dispatch_time_scheduling: bool = True,
        autoscaler: AutoscaleController | None = None,
        scalable_indices: (
            Sequence[int] | Mapping[str | None, Sequence[int]] | None
        ) = None,
    ) -> None:
        if not replicas:
            raise ValueError("the engine needs at least one replica")
        self.replicas = list(replicas)
        for i, replica in enumerate(self.replicas):
            if replica.index is None:
                # The engine owns replica identity: unassigned replicas get
                # their position, so callers never hand-number a pool.
                replica.assign_index(i)
            elif replica.index != i:
                # An explicit index that disagrees with the position would
                # misattribute per-replica stats and completion events.
                raise ValueError(
                    f"replica at position {i} was explicitly given index "
                    f"{replica.index}; leave index unset to let the engine "
                    "assign it, or make explicit indices match positions"
                )
        self.router = make_router(router)
        self.admission = make_admission(admission)
        self.dispatch_time_scheduling = dispatch_time_scheduling
        self.autoscaler = autoscaler
        if autoscaler is not None and any(
            g.replica_factory is None for g in autoscaler.groups
        ):
            raise ValueError(
                "an autoscaled engine needs the controller to carry a "
                "replica_factory for scale-up"
            )
        self._initial_membership = self._normalize_membership(scalable_indices)
        # The initial pool is restored on reset() so repeated runs of an
        # autoscaled engine start from the spec's replica groups, not from
        # wherever the previous run's scaling left the pool.
        self._initial_replicas = list(self.replicas)
        # Live membership: group name -> replica indices (initial positions
        # plus indices of replicas created by scale-ups, in creation order).
        self._group_indices = {
            name: list(indices) for name, indices in self._initial_membership.items()
        }
        # Telemetry describes only the scaled groups: feeding the bus events
        # from static groups would inflate utilization/queue signals with
        # load the policy cannot shed, thrashing the controller.
        self._scalable_set = {
            i for indices in self._group_indices.values() for i in indices
        }
        self._needs_estimates = self.router.needs_service_estimates or any(
            r.queue.needs_service_estimates for r in self.replicas
        )
        self._run_end_ms = 0.0

    def _normalize_membership(
        self,
        scalable_indices: (
            Sequence[int] | Mapping[str | None, Sequence[int]] | None
        ),
    ) -> dict[str | None, tuple[int, ...]]:
        """``{scaled group name: initial replica positions}``, validated."""
        if self.autoscaler is None:
            return {}
        groups = self.autoscaler.groups
        if scalable_indices is None:
            if len(groups) > 1:
                raise ValueError(
                    "a multi-group autoscaler needs scalable_indices as a "
                    "mapping {group name: positions}"
                )
            membership = {groups[0].name: tuple(range(len(self.replicas)))}
        elif isinstance(scalable_indices, Mapping):
            missing = [g.name for g in groups if g.name not in scalable_indices]
            if missing:
                raise ValueError(
                    f"scalable_indices misses scaled groups {missing}"
                )
            extra = set(scalable_indices) - {g.name for g in groups}
            if extra:
                raise ValueError(
                    f"scalable_indices names unknown groups {sorted(map(str, extra))}"
                )
            membership = {
                g.name: tuple(scalable_indices[g.name]) for g in groups
            }
        else:
            if len(groups) > 1:
                raise ValueError(
                    "a multi-group autoscaler needs scalable_indices as a "
                    "mapping {group name: positions}"
                )
            membership = {groups[0].name: tuple(scalable_indices)}
        seen: set[int] = set()
        for name, indices in membership.items():
            for i in indices:
                if not (0 <= i < len(self.replicas)):
                    raise ValueError(
                        f"scalable index {i} outside the initial pool "
                        f"[0, {len(self.replicas)})"
                    )
                if i in seen:
                    raise ValueError(
                        f"replica position {i} belongs to two scaled groups"
                    )
                seen.add(i)
        return membership

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    def _routable(self) -> list[AcceleratorReplica]:
        """Replicas the router may choose from (everything, if static)."""
        if self.autoscaler is None:
            return self.replicas
        return [r for r in self.replicas if r.is_routable]

    def _group_pool(self, name: str | None) -> list[AcceleratorReplica]:
        """Live members of one scaled group (initial + engine-created)."""
        return [
            self.replicas[i]
            for i in self._group_indices[name]
            if not self.replicas[i].is_retired
        ]

    def _scalable_pool(self) -> list[AcceleratorReplica]:
        """Live members of every autoscaled group, in group order."""
        return [
            replica
            for name in self._group_indices
            for replica in self._group_pool(name)
        ]

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Fresh replica, router and backend state for a new run.

        Replicas created by a previous run's scale-ups are discarded — a
        provisioning replica pending at the end of one run never leaks into
        the next — and the pool returns to its construction-time
        composition.
        """
        self.replicas = list(self._initial_replicas)
        for replica in self.replicas:
            replica.reset()
        self.router.reset()
        if self.autoscaler is not None:
            self.autoscaler.reset()
        self._group_indices = {
            name: list(indices) for name, indices in self._initial_membership.items()
        }
        self._scalable_set = {
            i for indices in self._group_indices.values() for i in indices
        }
        self._run_end_ms = 0.0

    # ------------------------------------------------------------- open loop
    def run(
        self,
        trace: QueryTrace,
        arrivals: np.ndarray,
        *,
        arrival_rate_per_ms: float | None = None,
        reset: bool = True,
    ) -> SimulationResult:
        """Simulate ``trace`` with explicit per-query arrival times."""
        arrivals = np.asarray(arrivals, dtype=np.float64)
        if arrivals.shape != (len(trace),):
            raise ValueError(
                f"arrivals shape {arrivals.shape} does not match trace length "
                f"({len(trace)},)"
            )
        if reset:
            self.reset()
        heap = EventHeap()
        for query, arrival in zip(trace, arrivals):
            heap.push(Event(float(arrival), EventKind.ARRIVAL, query))
        if self.autoscaler is not None:
            heap.push(
                Event(self.autoscaler.control_interval_ms, EventKind.CONTROL, None)
            )
        outcomes, dropped = self._drain(heap)
        return self._build_result(
            outcomes, dropped, arrival_rate_per_ms=arrival_rate_per_ms
        )

    def run_open_loop(
        self,
        trace: QueryTrace,
        *,
        arrival_rate_per_ms: float,
        seed: int = 0,
        reset: bool = True,
    ) -> SimulationResult:
        """Simulate ``trace`` arriving on a Poisson process (queries/ms)."""
        rng = np.random.default_rng(seed)
        arrivals = poisson_arrivals(len(trace), arrival_rate_per_ms, rng=rng)
        return self.run(
            trace, arrivals, arrival_rate_per_ms=arrival_rate_per_ms, reset=reset
        )

    # ----------------------------------------------------------- closed loop
    def run_closed_loop(
        self, trace: QueryTrace, *, reset: bool = True
    ) -> SimulationResult:
        """Serve one query at a time: query ``i+1`` arrives as ``i`` completes.

        This is the rho → 0 limit of the open loop — no query ever waits, so
        every backend sees its full latency budget and the records are
        identical to serving the trace sequentially.  A closed loop keeps
        exactly one query in flight, so it is defined for a single replica
        only (the offered load is 1 by construction); routing and admission
        are no-ops at zero wait and are skipped.

        Backends with a vectorized ``serve(trace)`` (SushiStack batches
        SubNet selection one caching window at a time) are handed the whole
        stream; others are driven per query via ``serve_query`` — the record
        sequence is identical by contract.
        """
        if self.num_replicas != 1:
            raise ValueError(
                "closed-loop serving keeps one query in flight; "
                f"use a single replica (got {self.num_replicas})"
            )
        if reset:
            self.reset()
        replica = self.replicas[0]
        stream_serve = getattr(replica.server, "serve", None)
        if callable(stream_serve):
            records = list(stream_serve(trace))
        else:
            records = [replica.server.serve_query(query) for query in trace]
        outcomes: list[SimulatedQueryOutcome] = []
        now = 0.0
        for query, record in zip(trace, records):
            service = float(record.served_latency_ms)
            outcomes.append(
                SimulatedQueryOutcome(
                    query_index=query.index,
                    arrival_ms=now,
                    start_ms=now,
                    service_ms=service,
                    latency_constraint_ms=query.latency_constraint_ms,
                    served_accuracy=record.served_accuracy,
                    replica_index=0,
                    record=record,
                )
            )
            replica.stats.num_served += 1
            replica.stats.num_batches += 1
            replica.stats.busy_ms += service
            now += service
        replica.busy_until_ms = now
        self._run_end_ms = now
        return self._build_result(outcomes, [], offered_load=1.0)

    # ------------------------------------------------------------ event loop
    def _drain(
        self, heap: EventHeap
    ) -> tuple[list[SimulatedQueryOutcome], list[DroppedQuery]]:
        outcomes: list[SimulatedQueryOutcome] = []
        dropped: list[DroppedQuery] = []
        bus = None if self.autoscaler is None else self.autoscaler.bus
        # Hot-path hoists: these attribute chains are invariant across the
        # run, and the loop body runs once per event on 10k+ query traces.
        router_select = self.router.select
        needs_estimates = self._needs_estimates
        scalable = self._scalable_set
        heap_pop = heap.pop
        ARRIVAL, COMPLETION, PROVISIONING, CONTROL = (
            EventKind.ARRIVAL,
            EventKind.COMPLETION,
            EventKind.PROVISIONING,
            EventKind.CONTROL,
        )
        seq = 0
        while heap:
            event = heap_pop()
            now = event.time_ms
            kind = event.kind
            if kind == ARRIVAL or kind == COMPLETION:
                # Only data-plane events define the run's duration: a
                # trailing control tick (or provisioning hand-over) after
                # the last completion must not inflate the cost accounting
                # relative to a static run of the same trace.
                self._run_end_ms = now
            if kind == ARRIVAL:
                query = event.payload
                item = QueuedQuery(query=query, arrival_ms=now, seq=seq)
                seq += 1
                candidates = self._routable()
                ridx = router_select(candidates, item, now)
                replica = candidates[ridx]
                if bus is not None and replica.index in scalable:
                    bus.on_arrival(now)
                if needs_estimates:
                    # The estimate is replica-specific (it consults the
                    # backend's cache state), so it is attached after routing
                    # — and only when a discipline or router will read it,
                    # since it costs a latency-table lookup per arrival.
                    # Rebuilt directly (not dataclasses.replace): field
                    # introspection per arrival is measurable on long traces.
                    item = QueuedQuery(
                        query=query,
                        arrival_ms=now,
                        seq=item.seq,
                        service_estimate_ms=float(replica.service_estimator(query)),
                    )
                replica.enqueue(item)
                if replica.in_service is None:
                    self._dispatch(replica, now, heap, dropped)
            elif kind == COMPLETION:
                replica = self.replicas[event.payload]
                self._complete(replica, outcomes, now)
                self._dispatch(replica, now, heap, dropped)
            elif kind == PROVISIONING:
                replica = self.replicas[event.payload]
                # A scale-down during the cold start cancelled (retired)
                # the replica; its stale hand-over event is a no-op.
                if not replica.is_retired and replica.provisioning:
                    replica.finish_provisioning()
            else:  # CONTROL
                self._control(now, heap)
        outcomes.sort(key=lambda o: o.query_index)
        dropped.sort(key=lambda d: d.query_index)
        return outcomes, dropped

    # --------------------------------------------------------- control plane
    def _control(self, now: float, heap: EventHeap) -> None:
        """One autoscaler tick: snapshot the pool, enact the policy's delta."""
        ctl = self.autoscaler
        # All signals describe the scaled groups only (matching the event
        # feed); draining replicas still serve their queues, so they count
        # toward the utilization capacity but not toward the policy's
        # notion of the pool size; provisioning replicas cannot serve and
        # are excluded from the capacity denominator.
        loads: list[GroupLoad] = []
        members: dict[str | None, list[AcceleratorReplica]] = {}
        for group in ctl.groups:
            pool = self._group_pool(group.name)
            members[group.name] = pool
            loads.append(
                GroupLoad(
                    name=group.name,
                    num_active=sum(
                        1 for r in pool if not r.draining and not r.provisioning
                    ),
                    num_provisioning=sum(1 for r in pool if r.provisioning),
                    num_draining=sum(1 for r in pool if r.draining),
                    queue_depth=sum(r.queue_length() for r in pool),
                )
            )
        snapshot = ctl.bus.snapshot(
            now,
            num_active=sum(load.num_active for load in loads),
            num_draining=sum(load.num_draining for load in loads),
            queue_depth=sum(load.queue_depth for load in loads),
            capacity_replicas=sum(
                load.num_active + load.num_draining for load in loads
            ),
            num_provisioning=sum(load.num_provisioning for load in loads),
        )
        desired_map = ctl.decide_pool(snapshot, loads)
        for group, load in zip(ctl.groups, loads):
            self._resize_group(
                group, load, desired_map[group.name], members[group.name], now, heap
            )
        # Keep ticking while the simulation still has work in flight; once
        # the heap is empty and every queue is drained the run is over and
        # the control loop stops with it.
        if heap or any(
            r.is_busy or len(r.queue) for r in self.replicas if not r.is_retired
        ):
            heap.push(Event(now + ctl.control_interval_ms, EventKind.CONTROL, None))

    def _resize_group(
        self,
        group,
        load: GroupLoad,
        desired: int,
        pool: list[AcceleratorReplica],
        now: float,
        heap: EventHeap,
    ) -> None:
        """Enact one group's desired-size delta against its incoming count."""
        incoming = load.num_incoming
        if desired > incoming:
            # Reclaim draining replicas first (their Persistent Buffers are
            # still warm and they serve instantly), newest drain first; then
            # clone fresh replicas, which provision for the group's
            # startup delay before joining routing.
            needed = desired - incoming
            for replica in reversed([r for r in pool if r.draining]):
                if needed == 0:
                    break
                replica.undrain()
                needed -= 1
            ctl = self.autoscaler
            for _ in range(needed):
                index = len(self.replicas)
                replica = ctl.make_replica(index, group=group.name)
                replica.assign_index(index)
                replica.activated_ms = now
                if group.startup_delay_ms > 0:
                    replica.start_provisioning(now, now + group.startup_delay_ms)
                    heap.push(
                        Event(
                            now + group.startup_delay_ms,
                            EventKind.PROVISIONING,
                            index,
                        )
                    )
                self.replicas.append(replica)
                self._group_indices[group.name].append(index)
                self._scalable_set.add(index)
        elif desired < incoming:
            # Cancel provisioning replicas first (they never served — the
            # cheapest capacity to shed), newest request first; then drain
            # serving replicas from the end of the pool, keeping the
            # long-lived (warm) ones serving.
            excess = incoming - desired
            for replica in reversed([r for r in pool if r.provisioning]):
                if excess == 0:
                    break
                replica.retire(now)
                excess -= 1
            # is_retired filters the provisioning replicas cancelled just
            # above (retire() cleared their provisioning flag).
            active = [
                r
                for r in pool
                if not r.draining and not r.provisioning and not r.is_retired
            ]
            for replica in reversed(active[len(active) - excess:]):
                replica.start_draining()
                self._maybe_retire(replica, now)

    def _maybe_retire(self, replica: AcceleratorReplica, now: float) -> None:
        """Retire a draining replica once it is idle with an empty queue."""
        if replica.draining and not replica.is_busy and not len(replica.queue):
            replica.retire(now)

    def _dispatch(
        self,
        replica: AcceleratorReplica,
        now: float,
        heap: EventHeap,
        dropped: list[DroppedQuery],
    ) -> None:
        """Pull the replica's next admissible batch and start serving it.

        With ``max_batch=1`` (the default) this is the pre-batching dispatch:
        one pop, one admission check, one ``serve_query``, one COMPLETION
        event — record-identical to the seed path.  With batching, up to
        ``max_batch`` admissible queries leave the queue in one pickup and
        are served as a unit (one COMPLETION event per batch): under
        ``shared_subnet`` the backend makes a single shared SubNet decision
        and one accelerator evaluation for the whole batch; under
        ``per_query`` (and for backends without ``serve_dispatch_batch``)
        members keep their own decisions and run back to back.

        Records are stamped with the replica index *here*, at dispatch, so
        completion is allocation-free.
        """
        bus = None if self.autoscaler is None else self.autoscaler.bus
        if bus is not None and replica.index not in self._scalable_set:
            bus = None  # telemetry covers the scaled group only
        batch, shed = replica.pop_batch(
            replica.max_batch, now_ms=now, admission=self.admission
        )
        for item in shed:
            dropped.append(self._drop(item, replica, now))
            if bus is not None:
                bus.on_drop(now)
        if not batch:
            # A draining replica with nothing left to serve leaves the
            # pool here — the natural end of its drain.
            if self.autoscaler is not None:
                self._maybe_retire(replica, now)
            return

        ridx = replica.index
        dts = self.dispatch_time_scheduling
        size = len(batch)
        batch_serve = (
            getattr(replica.server, "serve_dispatch_batch", None)
            if size > 1 and replica.batch_policy == "shared_subnet"
            else None
        )
        if batch_serve is None:
            # One decision and one evaluation per member, back to back in a
            # single pickup (size == 1 is exactly the seed dispatch).  Each
            # member's remaining budget and admission are evaluated at its
            # *actual* start — the prior members' service time has already
            # eaten into its slack, exactly as the seed loop would see it.
            serve = replica.server.serve_query
            admit = self.admission.admit
            records: list = []
            started: list = []
            starts: list[float] = []
            services: list[float] = []
            t = now
            for item in batch:
                if t > now and not admit(item, t):
                    # The deadline expired while earlier members ran.
                    dropped.append(self._drop(item, replica, t))
                    if bus is not None:
                        bus.on_drop(t)
                    continue
                effective: float | None = None
                if dts:
                    remaining = item.query.latency_constraint_ms - (
                        t - item.arrival_ms
                    )
                    effective = (
                        remaining
                        if remaining > _MIN_EFFECTIVE_LATENCY_MS
                        else _MIN_EFFECTIVE_LATENCY_MS
                    )
                record = serve(item.query, effective_latency_constraint_ms=effective)
                if record.replica_index != ridx:
                    record = replace(record, replica_index=ridx)
                service = float(record.served_latency_ms)
                records.append(record)
                started.append(item)
                starts.append(t)
                services.append(service)
                t += service
            # The first member is admitted at t == now, so the pickup always
            # serves at least one query; later members may have been shed.
            batch = started
            size = len(batch)
            # Summed (not t - now) so a one-query batch is bit-identical to
            # the seed's per-query busy accounting.
            total = sum(services)
            completion_ms = t
        else:
            # One shared SubNet decision, one accelerator evaluation, at
            # most one cache load for the whole batch; members complete
            # together after the batch evaluation.
            effective_batch: list[float] | None = None
            if dts:
                effective_batch = [
                    max(
                        item.query.latency_constraint_ms - (now - item.arrival_ms),
                        _MIN_EFFECTIVE_LATENCY_MS,
                    )
                    for item in batch
                ]
            records = [
                r if r.replica_index == ridx else replace(r, replica_index=ridx)
                for r in batch_serve(
                    [item.query for item in batch],
                    effective_latency_constraints_ms=effective_batch,
                )
            ]
            total = max(float(r.served_latency_ms) for r in records)
            starts = [now] * size
            services = [total] * size
            completion_ms = now + total

        replica.in_service = _InService(
            items=tuple(batch),
            records=tuple(records),
            starts=tuple(starts),
            services=tuple(services),
            total_ms=total,
        )
        replica.busy_until_ms = completion_ms
        replica.stats.num_batches += 1
        if bus is not None:
            bus.on_batch(now, batch_size=size)
            on_dispatch = bus.on_dispatch
            for item in batch:
                on_dispatch(now, replica_index=ridx, wait_ms=now - item.arrival_ms)
        heap.push(Event(completion_ms, EventKind.COMPLETION, ridx))

    def _complete(
        self,
        replica: AcceleratorReplica,
        outcomes: list[SimulatedQueryOutcome],
        now: float,
    ) -> None:
        current = replica.in_service
        if current is None:  # pragma: no cover - engine invariant
            raise RuntimeError(f"{replica.name} completed with nothing in service")
        ridx = replica.index
        stats = replica.stats
        size = current.size
        if self.autoscaler is not None and ridx in self._scalable_set:
            # One completion per batch: the bus pairs it with the pickup's
            # dispatch start, so windowed busy time stays exact.
            self.autoscaler.bus.on_completion(
                now, replica_index=ridx, service_ms=current.total_ms
            )
        append = outcomes.append
        for item, record, start, service in zip(
            current.items, current.records, current.starts, current.services
        ):
            # Records were stamped with the replica index at dispatch, so
            # completion allocates nothing beyond the outcome itself.
            append(
                SimulatedQueryOutcome(
                    query_index=item.query.index,
                    arrival_ms=item.arrival_ms,
                    start_ms=start,
                    service_ms=service,
                    latency_constraint_ms=item.query.latency_constraint_ms,
                    served_accuracy=record.served_accuracy,
                    replica_index=ridx,
                    record=record,
                    batch_size=size,
                )
            )
            stats.queueing_ms_total += start - item.arrival_ms
        stats.num_served += size
        stats.busy_ms += current.total_ms
        replica.in_service = None

    # -------------------------------------------------------------- helpers
    def _drop(
        self, item: QueuedQuery, replica: AcceleratorReplica, now: float
    ) -> DroppedQuery:
        replica.stats.num_dropped += 1
        return DroppedQuery(
            query_index=item.query.index,
            arrival_ms=item.arrival_ms,
            dropped_at_ms=now,
            latency_constraint_ms=item.query.latency_constraint_ms,
            replica_index=replica.index,
        )

    def _build_result(
        self,
        outcomes: list[SimulatedQueryOutcome],
        dropped: list[DroppedQuery],
        *,
        arrival_rate_per_ms: float | None = None,
        offered_load: float | None = None,
    ) -> SimulationResult:
        makespan = max((o.completion_ms for o in outcomes), default=0.0)
        duration = max(self._run_end_ms, makespan)
        # Per-replica provisioned time: live replicas accrue until the last
        # data-plane event; a retirement decided on a control tick *after*
        # that is capped at the duration, so autoscaled and static runs of
        # the same trace are charged over the same clock.
        for replica in self.replicas:
            end = duration
            if replica.is_retired:
                end = min(replica.retired_at_ms, duration)
            replica.stats.active_ms = max(0.0, end - replica.activated_ms)
        mean_active = (
            sum(r.stats.active_ms for r in self.replicas) / duration
            if duration > 0
            else float(self.num_replicas)
        )
        if offered_load is None:
            if arrival_rate_per_ms is not None and outcomes:
                mean_service = float(np.mean([o.service_ms for o in outcomes]))
                # rho against the capacity actually provisioned: the static
                # replica count, or the time-weighted mean pool size when
                # the run was autoscaled.
                capacity = (
                    self.num_replicas
                    if self.autoscaler is None
                    else max(mean_active, 1e-12)
                )
                offered_load = arrival_rate_per_ms * mean_service / capacity
            else:
                offered_load = 0.0
        throughput = len(outcomes) / makespan if makespan > 0 else 0.0
        if self.autoscaler is None:
            report = None
        else:
            final_by_group = tuple(
                (
                    name,
                    sum(
                        1
                        for r in self._group_pool(name)
                        if not r.draining and not r.provisioning
                    ),
                )
                for name in self._group_indices
            )
            report = self.autoscaler.report(
                final_replicas=sum(n for _, n in final_by_group),
                final_by_group=final_by_group,
            )
        return SimulationResult(
            outcomes=tuple(outcomes),
            offered_load=offered_load,
            dropped=tuple(dropped),
            replica_stats=tuple(r.stats for r in self.replicas),
            achieved_throughput_per_ms=throughput,
            duration_ms=duration,
            autoscale=report,
        )


def build_stack_engine(
    stack,
    *,
    num_replicas: int = 1,
    discipline: str | QueueDiscipline = "fifo",
    router: str | RoutingPolicy = "round_robin",
    admission: str | AdmissionPolicy = "admit_all",
    dispatch_time_scheduling: bool = True,
    max_batch: int = 1,
    batch_policy: str = "shared_subnet",
) -> ServingEngine:
    """An engine over ``num_replicas`` independent clones of a SUSHI stack.

    Each replica gets its own scheduler and Persistent Buffer state (cloned
    via :meth:`~repro.serving.stack.SushiStack.clone`, sharing the immutable
    SuperNet/table) so replicas evolve their caches independently; the
    passed stack itself is left untouched.  ``max_batch`` / ``batch_policy``
    configure batched dispatch per replica (``max_batch=1`` keeps the
    pre-batching per-query pickup).
    """
    if num_replicas <= 0:
        raise ValueError("num_replicas must be positive")
    replicas = [
        AcceleratorReplica(
            stack.clone(seed=stack.config.seed + i),
            discipline=discipline,
            max_batch=max_batch,
            batch_policy=batch_policy,
        )
        for i in range(num_replicas)
    ]
    return ServingEngine(
        replicas,
        router=router,
        admission=admission,
        dispatch_time_scheduling=dispatch_time_scheduling,
    )
