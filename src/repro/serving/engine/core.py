"""The discrete-event multi-replica serving engine.

One dispatch-time core behind both serving views of the paper's evaluation:

* **Open loop** — queries arrive on a Poisson process, are routed to one of
  N replicas, wait under a queue discipline, and are scheduled *at dispatch
  time*, when the actual arrival order and remaining slack are known.
* **Closed loop** — the next query is injected exactly when the previous one
  completes (zero queueing), which reproduces the paper's Fig. 15/16 serving
  semantics query for query: it is the rho → 0 limit of the open loop.

The engine is deliberately model-agnostic: a replica's backend is anything
with a ``serve_query`` method, so the SUSHI stack, the paper's baselines and
synthetic test servers all plug in unchanged.

Invariants the rest of the system builds on:

* **Determinism** — the run is a pure function of (replicas, trace,
  arrival timestamps): the event heap breaks timestamp ties by kind
  (completions → arrivals → faults → recoveries → provisioning hand-overs
  → control ticks) and then insertion order, every
  routing/discipline/policy decision is deterministic, fault sampling
  draws from its own seeded generator, and repeated runs (after
  ``reset()``) produce identical records, drops, scaling events and cost
  accounting.
* **Record identity across feature gates** — each optional layer is
  bit-exact inert at its neutral setting: ``autoscaler=None`` matches the
  pre-autoscaling event path, ``max_batch=1`` matches the pre-batching
  dispatch, ``startup_delay_ms=0`` matches the instant-scale-up control
  plane (no PROVISIONING events are ever scheduled), a single scaled
  group with ``cost_weight=1.0`` matches the pre-tier controller, and
  ``faults=None`` keeps every fault hook a dead check (no FAULT/RECOVERY
  event is ever scheduled) so the fault-free paths are untouched.
* **Conservation** — every offered query is exactly once served or
  dropped; draining replicas finish their queues before retiring; retired
  replicas hold no work.  Fault injection preserves this: a crashed
  replica's lost queries re-enter routing through the retry policy or
  drop with the ``failed`` reason, and arrivals with no routable replica
  left drop with the ``shed`` reason.
* **Cost accounting** — a replica accrues ``active_ms`` from creation
  (scale-up request, *including* its cold-start window) to retirement or
  the run's last data-plane event; control ticks and provisioning
  hand-overs never extend the billed duration.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from operator import attrgetter
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.serving.autoscale.controller import AutoscaleController, GroupLoad
from repro.serving.engine.admission import AdmissionPolicy, make_admission
from repro.serving.engine.disciplines import QueueDiscipline, QueuedQuery
from repro.serving.engine.events import ArrayEventQueue, Event, EventHeap, EventKind
from repro.serving.engine.faults import FAILED, SHED
from repro.serving.engine.replica import AcceleratorReplica, _InService
from repro.serving.engine.results import (
    DroppedQuery,
    SimulatedQueryOutcome,
    SimulationResult,
)
from repro.serving.engine.routing import RoundRobinRouter, RoutingPolicy, make_router
from repro.serving.query import Query, QueryTrace

_MIN_EFFECTIVE_LATENCY_MS = 1e-9
"""Floor for the remaining-slack latency budget passed to schedulers."""

_by_query_index = attrgetter("query_index")


def poisson_arrivals(
    num_queries: int, rate_per_ms: float, *, rng: np.random.Generator
) -> np.ndarray:
    """Cumulative arrival timestamps (ms) of a Poisson process."""
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if rate_per_ms <= 0:
        raise ValueError("rate_per_ms must be positive")
    gaps = rng.exponential(scale=1.0 / rate_per_ms, size=num_queries)
    return np.cumsum(gaps)


# --------------------------------------------------------------- fast path
#
# The helpers below are module-level (not methods) for two reasons: the fast
# event loop closes over plain locals instead of ``self`` attribute chains,
# and sharded simulation ships them to worker processes, which requires
# picklable, engine-free entry points.


def _query_getter(trace) -> Callable[[int], Query]:
    """Positional query accessor for eager and array-backed traces."""
    queries = getattr(trace, "queries", None)
    if queries is not None:
        return queries.__getitem__
    return trace.query_at


def _drop_item(
    item: QueuedQuery, replica: AcceleratorReplica, now: float
) -> DroppedQuery:
    replica.stats.num_dropped += 1
    return DroppedQuery(
        query_index=item.query.index,
        arrival_ms=item.arrival_ms,
        dropped_at_ms=now,
        latency_constraint_ms=item.query.latency_constraint_ms,
        replica_index=replica.index,
    )


def _stamp_record(record, ridx: int):
    """``replace(record, replica_index=ridx)`` without per-call dataclass
    introspection (``dataclasses.replace`` is the reference dispatch's top
    hotspot).  Value-equal to ``replace``: dataclass equality compares
    fields, and records are valid by construction, so skipping re-validation
    changes no observable bit.  Falls back to ``replace`` for slotted or
    otherwise ``__dict__``-less record types.
    """
    cls = record.__class__
    try:
        fields = record.__dict__
    except AttributeError:  # pragma: no cover - exotic record types
        return replace(record, replica_index=ridx)
    clone = cls.__new__(cls)
    d = clone.__dict__
    d.update(fields)
    d["replica_index"] = ridx
    return clone


class _BusyToken:
    """Stand-in for ``replica.in_service`` on the fast single-query path.

    The fast loop carries a single dispatch's (item, record, start, service)
    in its completion-heap entry instead of allocating an
    :class:`~repro.serving.engine.replica._InService` per dispatch; load
    views only need *that* the replica is busy and the in-flight count (1),
    which this shared singleton provides via a class attribute.
    """

    __slots__ = ()

    size = 1


_FAST_BUSY = _BusyToken()


def _serve_pickup(
    replica: AcceleratorReplica,
    now: float,
    dropped: list[DroppedQuery],
    *,
    admission: AdmissionPolicy,
    dts: bool,
    bus,
    recorder=None,
    faults=None,
    fault_sink: list[QueuedQuery] | None = None,
) -> float | None:
    """Pull the replica's next admissible batch and start serving it.

    The body of the reference dispatch, minus event scheduling: returns the
    pickup's completion time (``None`` when the queue yields no admissible
    batch) and leaves scheduling of the COMPLETION to the caller, so the
    reference heap loop and the fast loop share one serving semantics.

    With ``max_batch=1`` (the default) this is the pre-batching dispatch:
    one pop, one admission check, one ``serve_query`` — record-identical to
    the seed path.  With batching, up to ``max_batch`` admissible queries
    leave the queue in one pickup and are served as a unit: under
    ``shared_subnet`` the backend makes a single shared SubNet decision and
    one accelerator evaluation for the whole batch; under ``per_query`` (and
    for backends without ``serve_dispatch_batch``) members keep their own
    decisions and run back to back.

    Records are stamped with the replica index *here*, at dispatch, so
    completion is allocation-free.

    With ``faults`` set (a :class:`~repro.serving.engine.faults.FaultInjector`)
    the pickup additionally runs the dispatch-time fault behaviours: one
    Bernoulli transient-failure draw per pickup (on failure the whole batch
    moves to ``fault_sink`` for the caller's retry policy and the replica
    stays idle), straggle scaling of the batch's service time by the
    replica's current ``straggle_factor`` (records keep their nominal
    ``served_latency_ms``; outcomes and busy accounting carry the scaled
    time), and brownout degradation — the injector's current
    ``accuracy_relax`` is subtracted from every member's accuracy floor
    before the backend sees it, steering dispatch toward smaller SubNets
    while capacity is lost.  ``faults=None`` is a dead check.
    """
    batch, shed = replica.pop_batch(replica.max_batch, now_ms=now, admission=admission)
    for item in shed:
        dropped.append(_drop_item(item, replica, now))
        if bus is not None:
            bus.on_drop(now)
        if recorder is not None:
            recorder.on_dropped(dropped[-1])
    if not batch:
        return None
    straggle = 1.0
    relax = 0.0
    if faults is not None:
        if faults.dispatch_fails():
            # Transient dispatch failure: the whole pickup errors before
            # any work starts; the caller retries (or fails) each member.
            fault_sink.extend(batch)
            return None
        straggle = replica.straggle_factor
        relax = faults.accuracy_relax

    ridx = replica.index
    size = len(batch)
    batch_serve = (
        getattr(replica.server, "serve_dispatch_batch", None)
        if size > 1 and replica.batch_policy == "shared_subnet"
        else None
    )
    if batch_serve is None:
        # One decision and one evaluation per member, back to back in a
        # single pickup (size == 1 is exactly the seed dispatch).  Each
        # member's remaining budget and admission are evaluated at its
        # *actual* start — the prior members' service time has already
        # eaten into its slack, exactly as the seed loop would see it.
        serve = replica.server.serve_query
        admit = admission.admit
        records: list = []
        started: list = []
        starts: list[float] = []
        services: list[float] = []
        t = now
        for item in batch:
            if t > now and not admit(item, t):
                # The deadline expired while earlier members ran.
                dropped.append(_drop_item(item, replica, t))
                if bus is not None:
                    bus.on_drop(t)
                if recorder is not None:
                    recorder.on_dropped(dropped[-1])
                continue
            effective: float | None = None
            if dts:
                remaining = item.query.latency_constraint_ms - (t - item.arrival_ms)
                effective = (
                    remaining
                    if remaining > _MIN_EFFECTIVE_LATENCY_MS
                    else _MIN_EFFECTIVE_LATENCY_MS
                )
            query = item.query
            if relax > 0.0:
                # Brownout: relax the accuracy floor the backend schedules
                # against (the outcome keeps the query's nominal
                # constraints, so attainment metrics see the degradation).
                floor = query.accuracy_constraint - relax
                query = replace(
                    query,
                    accuracy_constraint=floor if floor > 1e-9 else 1e-9,
                )
            record = serve(query, effective_latency_constraint_ms=effective)
            if record.replica_index != ridx:
                record = replace(record, replica_index=ridx)
            service = float(record.served_latency_ms)
            if straggle != 1.0:
                # A straggling replica runs the whole pickup slower; the
                # record keeps the backend's nominal latency, the simulated
                # clock (and busy accounting) carries the scaled time.
                service *= straggle
            records.append(record)
            started.append(item)
            starts.append(t)
            services.append(service)
            t += service
        # The first member is admitted at t == now, so the pickup always
        # serves at least one query; later members may have been shed.
        batch = started
        size = len(batch)
        # Summed (not t - now) so a one-query batch is bit-identical to
        # the seed's per-query busy accounting.
        total = sum(services)
        completion_ms = t
    else:
        # One shared SubNet decision, one accelerator evaluation, at
        # most one cache load for the whole batch; members complete
        # together after the batch evaluation.
        effective_batch: list[float] | None = None
        if dts:
            effective_batch = [
                max(
                    item.query.latency_constraint_ms - (now - item.arrival_ms),
                    _MIN_EFFECTIVE_LATENCY_MS,
                )
                for item in batch
            ]
        queries = [item.query for item in batch]
        if relax > 0.0:
            queries = [
                replace(
                    q,
                    accuracy_constraint=(
                        q.accuracy_constraint - relax
                        if q.accuracy_constraint - relax > 1e-9
                        else 1e-9
                    ),
                )
                for q in queries
            ]
        records = [
            r if r.replica_index == ridx else replace(r, replica_index=ridx)
            for r in batch_serve(
                queries,
                effective_latency_constraints_ms=effective_batch,
            )
        ]
        total = max(float(r.served_latency_ms) for r in records)
        if straggle != 1.0:
            total *= straggle
        starts = [now] * size
        services = [total] * size
        completion_ms = now + total

    replica.in_service = _InService(
        items=tuple(batch),
        records=tuple(records),
        starts=tuple(starts),
        services=tuple(services),
        total_ms=total,
    )
    replica.busy_until_ms = completion_ms
    replica.stats.num_batches += 1
    if bus is not None:
        bus.on_batch(now, batch_size=size)
        on_dispatch = bus.on_dispatch
        for item in batch:
            on_dispatch(now, replica_index=ridx, wait_ms=now - item.arrival_ms)
    return completion_ms


def _complete_inservice(
    replica: AcceleratorReplica,
    outcomes: list[SimulatedQueryOutcome],
    recorder=None,
) -> None:
    """Emit outcomes and stats for the replica's finished pickup."""
    current = replica.in_service
    if current is None:  # pragma: no cover - engine invariant
        raise RuntimeError(f"{replica.name} completed with nothing in service")
    ridx = replica.index
    stats = replica.stats
    size = current.size
    append = outcomes.append
    rec_served = None if recorder is None else recorder.on_served
    for item, record, start, service in zip(
        current.items, current.records, current.starts, current.services
    ):
        # Records were stamped with the replica index at dispatch, so
        # completion allocates nothing beyond the outcome itself.
        outcome = SimulatedQueryOutcome(
            query_index=item.query.index,
            arrival_ms=item.arrival_ms,
            start_ms=start,
            service_ms=service,
            latency_constraint_ms=item.query.latency_constraint_ms,
            served_accuracy=record.served_accuracy,
            replica_index=ridx,
            record=record,
            batch_size=size,
        )
        append(outcome)
        if rec_served is not None:
            rec_served(outcome)
        stats.queueing_ms_total += start - item.arrival_ms
    stats.num_served += size
    stats.busy_ms += current.total_ms
    replica.in_service = None


def _fast_drain(
    replicas: Sequence[AcceleratorReplica],
    router_select,
    admission: AdmissionPolicy,
    dts: bool,
    needs_estimates: bool,
    get_query: Callable[[int], Query],
    arr_list: Sequence[float],
    *,
    seqs: Sequence[int] | None = None,
    fixed_replica: AcceleratorReplica | None = None,
    recorder=None,
) -> tuple[list[SimulatedQueryOutcome], list[DroppedQuery], float]:
    """The static-pool fast event loop (no autoscaler).

    Replaces the Event/EventHeap machinery with a cursor over the (already
    time-sorted) arrival buffer and a raw-tuple heap holding only pending
    completions, and inlines the ``max_batch == 1`` dispatch — no
    ``pop_batch`` list churn, no per-dispatch ``_InService``, no per-event
    ``Event``.  Every simulated decision — admission at pop and at dispatch,
    remaining-budget floors, record stamping, stats accounting, timestamp
    tie-breaks (completions before arrivals, then insertion order) — replays
    the reference ``_drain``/``_dispatch``/``_complete`` path operation for
    operation, so outcomes, drops, per-replica stats and the run end are
    bit-identical to it (property-tested in the test suite).

    ``fixed_replica`` pins every arrival to one replica and skips routing
    (sharded mode; ``router_select`` is ignored), and ``seqs`` then supplies
    the *global* arrival index per buffer position so queue tie-breaks and
    query lookups use the unsharded stream's numbering.  Returns
    ``(outcomes, dropped, run_end_ms)``; outcomes and drops are unsorted.
    """
    outcomes: list[SimulatedQueryOutcome] = []
    dropped: list[DroppedQuery] = []
    admit = admission.admit
    min_eff = _MIN_EFFECTIVE_LATENCY_MS
    # Entries: (completion_ms, tie, replica_index, payload) where payload is
    # the single dispatch's (item, record, start_ms, service_ms), or None
    # for a batched pickup parked in replica.in_service.  The tie counter
    # reproduces the reference heap's insertion-order tie-break and keeps
    # payloads out of tuple comparison.
    heap: list[tuple[float, int, int, tuple | None]] = []
    heappush_ = heapq.heappush
    heappop_ = heapq.heappop
    out_append = outcomes.append
    drop_append = dropped.append
    out_new = SimulatedQueryOutcome.__new__
    # Flight-recorder hooks, hoisted so the recorder-off loop pays exactly
    # one ``is not None`` check per served/dropped query and nothing else.
    rec_served = None if recorder is None else recorder.on_served
    rec_dropped = None if recorder is None else recorder.on_dropped
    tie = 0

    def serve_one(replica: AcceleratorReplica, item: QueuedQuery, now: float) -> None:
        # The inlined max_batch == 1 pickup; ``item`` is already admitted.
        nonlocal tie
        query = item.query
        if dts:
            remaining = query.latency_constraint_ms - (now - item.arrival_ms)
            effective = remaining if remaining > min_eff else min_eff
        else:
            effective = None
        record = replica.server.serve_query(
            query, effective_latency_constraint_ms=effective
        )
        ridx = replica.index
        if record.replica_index != ridx:
            record = _stamp_record(record, ridx)
        service = float(record.served_latency_ms)
        completion = now + service
        replica.in_service = _FAST_BUSY
        replica.busy_until_ms = completion
        replica.stats.num_batches += 1
        heappush_(heap, (completion, tie, ridx, (item, record, now, service)))
        tie += 1

    def dispatch(replica: AcceleratorReplica, now: float) -> None:
        # The replica just went idle: pull its next pickup, if any.
        nonlocal tie
        if replica.max_batch == 1:
            stats = replica.stats
            pop_next = replica.pop_next
            item = pop_next()
            while item is not None and not admit(item, now):
                stats.num_dropped += 1
                drop_append(
                    DroppedQuery(
                        query_index=item.query.index,
                        arrival_ms=item.arrival_ms,
                        dropped_at_ms=now,
                        latency_constraint_ms=item.query.latency_constraint_ms,
                        replica_index=replica.index,
                    )
                )
                if rec_dropped is not None:
                    rec_dropped(dropped[-1])
                item = pop_next()
            if item is not None:
                serve_one(replica, item, now)
        else:
            completion = _serve_pickup(
                replica, now, dropped, admission=admission, dts=dts, bus=None,
                recorder=recorder,
            )
            if completion is not None:
                heappush_(heap, (completion, tie, replica.index, None))
                tie += 1

    # An idle replica with an empty queue can serve an admitted arrival
    # directly, skipping the enqueue/pop round-trip.  Gated off when service
    # estimates ride on the items: the estimate's float would otherwise
    # enter and leave the discipline's queued-work accumulator, whose exact
    # bits load-aware routers read on later arrivals.
    direct_serve = not needs_estimates
    num_arrivals = len(arr_list)
    run_end = 0.0
    i = 0
    infinity = float("inf")
    next_arrival = arr_list[0] if num_arrivals else infinity
    while True:
        if heap and heap[0][0] <= next_arrival:
            # Completions at an arrival's exact timestamp run first
            # (EventKind.COMPLETION < ARRIVAL), matching the reference heap.
            entry = heappop_(heap)
            now = entry[0]
            run_end = now
            # entry[2] is the replica's engine-wide index; in sharded mode
            # the (single) replica's index does not address ``replicas``.
            replica = (
                fixed_replica if fixed_replica is not None else replicas[entry[2]]
            )
            payload = entry[3]
            if payload is None:
                _complete_inservice(replica, outcomes, recorder)
            else:
                item, record, start, service = payload
                query = item.query
                # Built via __dict__ fill: a frozen dataclass __init__ pays
                # one object.__setattr__ per field, and one outcome exists
                # per served query.  Value-identical to the keyword
                # construction in _complete_inservice.
                outcome = out_new(SimulatedQueryOutcome)
                d = outcome.__dict__
                d["query_index"] = query.index
                d["arrival_ms"] = item.arrival_ms
                d["start_ms"] = start
                d["service_ms"] = service
                d["latency_constraint_ms"] = query.latency_constraint_ms
                d["served_accuracy"] = record.served_accuracy
                d["replica_index"] = entry[2]
                d["record"] = record
                d["batch_size"] = 1
                out_append(outcome)
                if rec_served is not None:
                    rec_served(outcome)
                stats = replica.stats
                stats.queueing_ms_total += start - item.arrival_ms
                stats.num_served += 1
                stats.busy_ms += service
                replica.in_service = None
            # pop_next/pop_batch on an empty queue is a guaranteed no-op;
            # one len() dodges that call chain on every idle completion.
            if len(replica.queue):
                dispatch(replica, now)
            continue
        if i >= num_arrivals:
            break
        now = next_arrival
        position = i
        i += 1
        next_arrival = arr_list[i] if i < num_arrivals else infinity
        run_end = now
        seq = position if seqs is None else seqs[position]
        query = get_query(seq)
        item = QueuedQuery(query=query, arrival_ms=now, seq=seq)
        if fixed_replica is not None:
            replica = fixed_replica
        else:
            replica = replicas[router_select(replicas, item, now)]
        if replica.in_service is None and direct_serve and not len(replica.queue):
            if admit(item, now):
                serve_one(replica, item, now)
            else:
                replica.stats.num_dropped += 1
                drop_append(
                    DroppedQuery(
                        query_index=query.index,
                        arrival_ms=now,
                        dropped_at_ms=now,
                        latency_constraint_ms=query.latency_constraint_ms,
                        replica_index=replica.index,
                    )
                )
                if rec_dropped is not None:
                    rec_dropped(dropped[-1])
            continue
        if needs_estimates:
            # Replica-specific, attached after routing — see _drain.
            item = QueuedQuery(
                query=query,
                arrival_ms=now,
                seq=seq,
                service_estimate_ms=float(replica.service_estimator(query)),
            )
        replica.enqueue(item)
        if replica.in_service is None:
            dispatch(replica, now)
    return outcomes, dropped, run_end


def _shard_worker(payload):
    """Simulate one shard in a worker process (picklable in, picklable out)."""
    replica, admission, dts, needs_estimates, trace, sub_arr, seqs = payload
    outcomes, dropped, run_end = _fast_drain(
        [replica],
        None,
        admission,
        dts,
        needs_estimates,
        _query_getter(trace),
        sub_arr,
        seqs=seqs,
        fixed_replica=replica,
    )
    return outcomes, dropped, replica.stats, replica.busy_until_ms, run_end


class ServingEngine:
    """Event-driven simulation of N accelerator replicas serving a stream.

    Parameters
    ----------
    replicas:
        The serving endpoints (each owns its queue discipline and backend).
    router:
        Routing policy name or instance (``round_robin`` / ``jsq`` /
        ``least_loaded``) applied at arrival time.
    admission:
        Admission policy name or instance (``admit_all`` / ``drop_expired``)
        applied at dispatch time.
    dispatch_time_scheduling:
        When True, each dispatch passes the query's *remaining* latency
        budget (constraint minus time already waited) to the backend, so
        cache- and SLO-aware schedulers react to actual queueing state.
        When False the backend sees the nominal constraint (used by the
        legacy precomputed mode).
    autoscaler:
        Optional :class:`~repro.serving.autoscale.AutoscaleController`.
        When set, the engine feeds its telemetry bus per event and fires a
        CONTROL event every control interval: scale-up appends replicas from
        the controller's per-group factories (cold ones provision for the
        group's ``startup_delay_ms`` before joining routing), scale-down
        cancels provisioning replicas first and then drains a serving one
        (it finishes its queue, then retires).  ``None`` keeps the pool
        fixed and the event path bit-identical to the pre-autoscaling
        engine.
    scalable_indices:
        Positions of the replicas the autoscaler may retire (and whose
        group the factory clones).  For a single scaled group this is a
        plain sequence (``None`` makes the whole initial pool scalable);
        a multi-group (tier-aware) controller needs a mapping
        ``{group name: positions}`` covering each of its groups.  Ignored
        without an autoscaler.
    """

    def __init__(
        self,
        replicas: Sequence[AcceleratorReplica],
        *,
        router: str | RoutingPolicy = "round_robin",
        admission: str | AdmissionPolicy = "admit_all",
        dispatch_time_scheduling: bool = True,
        autoscaler: AutoscaleController | None = None,
        scalable_indices: (
            Sequence[int] | Mapping[str | None, Sequence[int]] | None
        ) = None,
    ) -> None:
        if not replicas:
            raise ValueError("the engine needs at least one replica")
        self.replicas = list(replicas)
        for i, replica in enumerate(self.replicas):
            if replica.index is None:
                # The engine owns replica identity: unassigned replicas get
                # their position, so callers never hand-number a pool.
                replica.assign_index(i)
            elif replica.index != i:
                # An explicit index that disagrees with the position would
                # misattribute per-replica stats and completion events.
                raise ValueError(
                    f"replica at position {i} was explicitly given index "
                    f"{replica.index}; leave index unset to let the engine "
                    "assign it, or make explicit indices match positions"
                )
        self.router = make_router(router)
        self.admission = make_admission(admission)
        self.dispatch_time_scheduling = dispatch_time_scheduling
        self.autoscaler = autoscaler
        if autoscaler is not None and any(
            g.replica_factory is None for g in autoscaler.groups
        ):
            raise ValueError(
                "an autoscaled engine needs the controller to carry a "
                "replica_factory for scale-up"
            )
        self._initial_membership = self._normalize_membership(scalable_indices)
        # The initial pool is restored on reset() so repeated runs of an
        # autoscaled engine start from the spec's replica groups, not from
        # wherever the previous run's scaling left the pool.
        self._initial_replicas = list(self.replicas)
        # Live membership: group name -> replica indices (initial positions
        # plus indices of replicas created by scale-ups, in creation order).
        self._group_indices = {
            name: list(indices) for name, indices in self._initial_membership.items()
        }
        # Telemetry describes only the scaled groups: feeding the bus events
        # from static groups would inflate utilization/queue signals with
        # load the policy cannot shed, thrashing the controller.
        self._scalable_set = {
            i for indices in self._group_indices.values() for i in indices
        }
        self._needs_estimates = self.router.needs_service_estimates or any(
            r.queue.needs_service_estimates for r in self.replicas
        )
        self._run_end_ms = 0.0
        self.recorder = None
        """Optional flight recorder (a duck-typed
        :class:`~repro.serving.obs.TraceRecorder`).  ``None`` — the default
        — keeps every hot loop's hook a dead ``is not None`` check, so an
        unobserved run is bit-identical to a build without observability."""
        self.faults = None
        """Optional fault injector (a
        :class:`~repro.serving.engine.faults.FaultInjector`).  ``None`` —
        the default — schedules no FAULT/RECOVERY event and keeps every
        fault hook a dead check, so a fault-free run is bit-identical to a
        build without fault injection (the same ladder rung contract as
        :attr:`recorder`)."""
        self.fault_groups: dict[int, str | None] = {}
        """Initial replica index -> spec group name, for ``FaultSpec``
        group scoping (populated by ``api.build_engine``; irrelevant when
        the injector covers all groups).  Scale-up replicas are scoped by
        their scaled group's name directly."""
        self._failed_pressure = 0
        """Crashed replicas not yet replaced — the brownout pressure
        numerator.  Incremented per crash, decremented when a scale-up
        replica joins routing."""

    def _normalize_membership(
        self,
        scalable_indices: (
            Sequence[int] | Mapping[str | None, Sequence[int]] | None
        ),
    ) -> dict[str | None, tuple[int, ...]]:
        """``{scaled group name: initial replica positions}``, validated."""
        if self.autoscaler is None:
            return {}
        groups = self.autoscaler.groups
        if scalable_indices is None:
            if len(groups) > 1:
                raise ValueError(
                    "a multi-group autoscaler needs scalable_indices as a "
                    "mapping {group name: positions}"
                )
            membership = {groups[0].name: tuple(range(len(self.replicas)))}
        elif isinstance(scalable_indices, Mapping):
            missing = [g.name for g in groups if g.name not in scalable_indices]
            if missing:
                raise ValueError(
                    f"scalable_indices misses scaled groups {missing}"
                )
            extra = set(scalable_indices) - {g.name for g in groups}
            if extra:
                raise ValueError(
                    f"scalable_indices names unknown groups {sorted(map(str, extra))}"
                )
            membership = {
                g.name: tuple(scalable_indices[g.name]) for g in groups
            }
        else:
            if len(groups) > 1:
                raise ValueError(
                    "a multi-group autoscaler needs scalable_indices as a "
                    "mapping {group name: positions}"
                )
            membership = {groups[0].name: tuple(scalable_indices)}
        seen: set[int] = set()
        for name, indices in membership.items():
            for i in indices:
                if not (0 <= i < len(self.replicas)):
                    raise ValueError(
                        f"scalable index {i} outside the initial pool "
                        f"[0, {len(self.replicas)})"
                    )
                if i in seen:
                    raise ValueError(
                        f"replica position {i} belongs to two scaled groups"
                    )
                seen.add(i)
        return membership

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    def _routable(self) -> list[AcceleratorReplica]:
        """Replicas the router may choose from (everything, if static)."""
        if self.autoscaler is None and self.faults is None:
            return self.replicas
        return [r for r in self.replicas if r.is_routable]

    def _group_pool(self, name: str | None) -> list[AcceleratorReplica]:
        """Live members of one scaled group (initial + engine-created)."""
        return [
            self.replicas[i]
            for i in self._group_indices[name]
            if not self.replicas[i].is_retired
        ]

    def _scalable_pool(self) -> list[AcceleratorReplica]:
        """Live members of every autoscaled group, in group order."""
        return [
            replica
            for name in self._group_indices
            for replica in self._group_pool(name)
        ]

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Fresh replica, router and backend state for a new run.

        Replicas created by a previous run's scale-ups are discarded — a
        provisioning replica pending at the end of one run never leaks into
        the next — and the pool returns to its construction-time
        composition.
        """
        self.replicas = list(self._initial_replicas)
        for replica in self.replicas:
            replica.reset()
        self.router.reset()
        if self.autoscaler is not None:
            self.autoscaler.reset()
        if self.faults is not None:
            self.faults.reset()
        self._failed_pressure = 0
        self._group_indices = {
            name: list(indices) for name, indices in self._initial_membership.items()
        }
        self._scalable_set = {
            i for indices in self._group_indices.values() for i in indices
        }
        self._run_end_ms = 0.0

    # ------------------------------------------------------------- open loop
    def run(
        self,
        trace: QueryTrace,
        arrivals: np.ndarray,
        *,
        arrival_rate_per_ms: float | None = None,
        reset: bool = True,
        fast_path: bool = False,
        shard: bool = False,
        shard_workers: int | None = None,
    ) -> SimulationResult:
        """Simulate ``trace`` with explicit per-query arrival times.

        ``fast_path`` swaps the Event/EventHeap loop for the cursor-based
        fast loop (:func:`_fast_drain`; with an autoscaler or fault
        injection, the :class:`ArrayEventQueue` mirror
        :meth:`_drain_array`).  ``shard`` simulates each replica
        independently — requires round-robin routing, no autoscaler and no
        fault injection, see :meth:`_run_sharded` — optionally across
        ``shard_workers`` processes.  All three are pure execution
        strategies: results and per-replica stats are bit-identical to the
        reference loop (``shard`` implies the fast loop per shard).
        """
        arrivals = np.asarray(arrivals, dtype=np.float64)
        if arrivals.shape != (len(trace),):
            raise ValueError(
                f"arrivals shape {arrivals.shape} does not match trace length "
                f"({len(trace)},)"
            )
        if reset:
            self.reset()
        recorder = self.recorder
        if recorder is not None:
            recorder.begin_run((r.index, r.name) for r in self.replicas)
        if self.autoscaler is not None:
            self.autoscaler.recorder = recorder
        if shard:
            outcomes, dropped = self._run_sharded(trace, arrivals, shard_workers)
        elif fast_path and self.autoscaler is None and self.faults is None:
            outcomes, dropped, run_end = _fast_drain(
                self.replicas,
                self.router.select,
                self.admission,
                self.dispatch_time_scheduling,
                self._needs_estimates,
                _query_getter(trace),
                arrivals.tolist(),
                recorder=recorder,
            )
            self._run_end_ms = run_end
            outcomes.sort(key=_by_query_index)
            dropped.sort(key=_by_query_index)
        elif fast_path:
            outcomes, dropped = self._drain_array(trace, arrivals)
        else:
            heap = EventHeap()
            for query, arrival in zip(trace, arrivals):
                heap.push(Event(float(arrival), EventKind.ARRIVAL, query))
            if self.autoscaler is not None:
                heap.push(
                    Event(self.autoscaler.control_interval_ms, EventKind.CONTROL, None)
                )
            if self.faults is not None:
                self._arm_faults(arrivals, heap.push)
            outcomes, dropped = self._drain(heap)
        return self._build_result(
            outcomes, dropped, arrival_rate_per_ms=arrival_rate_per_ms
        )

    def run_open_loop(
        self,
        trace: QueryTrace,
        *,
        arrival_rate_per_ms: float,
        seed: int = 0,
        reset: bool = True,
    ) -> SimulationResult:
        """Simulate ``trace`` arriving on a Poisson process (queries/ms)."""
        rng = np.random.default_rng(seed)
        arrivals = poisson_arrivals(len(trace), arrival_rate_per_ms, rng=rng)
        return self.run(
            trace, arrivals, arrival_rate_per_ms=arrival_rate_per_ms, reset=reset
        )

    # ----------------------------------------------------------- closed loop
    def run_closed_loop(
        self, trace: QueryTrace, *, reset: bool = True
    ) -> SimulationResult:
        """Serve one query at a time: query ``i+1`` arrives as ``i`` completes.

        This is the rho → 0 limit of the open loop — no query ever waits, so
        every backend sees its full latency budget and the records are
        identical to serving the trace sequentially.  A closed loop keeps
        exactly one query in flight, so it is defined for a single replica
        only (the offered load is 1 by construction); routing and admission
        are no-ops at zero wait and are skipped.

        Backends with a vectorized ``serve(trace)`` (SushiStack batches
        SubNet selection one caching window at a time) are handed the whole
        stream; others are driven per query via ``serve_query`` — the record
        sequence is identical by contract.
        """
        if self.num_replicas != 1:
            raise ValueError(
                "closed-loop serving keeps one query in flight; "
                f"use a single replica (got {self.num_replicas})"
            )
        if reset:
            self.reset()
        replica = self.replicas[0]
        recorder = self.recorder
        if recorder is not None:
            recorder.begin_run((r.index, r.name) for r in self.replicas)
        stream_serve = getattr(replica.server, "serve", None)
        if callable(stream_serve):
            records = list(stream_serve(trace))
        else:
            records = [replica.server.serve_query(query) for query in trace]
        outcomes: list[SimulatedQueryOutcome] = []
        now = 0.0
        for query, record in zip(trace, records):
            service = float(record.served_latency_ms)
            outcomes.append(
                SimulatedQueryOutcome(
                    query_index=query.index,
                    arrival_ms=now,
                    start_ms=now,
                    service_ms=service,
                    latency_constraint_ms=query.latency_constraint_ms,
                    served_accuracy=record.served_accuracy,
                    replica_index=0,
                    record=record,
                )
            )
            if recorder is not None:
                recorder.on_served(outcomes[-1])
            replica.stats.num_served += 1
            replica.stats.num_batches += 1
            replica.stats.busy_ms += service
            now += service
        replica.busy_until_ms = now
        self._run_end_ms = now
        return self._build_result(outcomes, [], offered_load=1.0)

    # ------------------------------------------------------------ event loop
    def _drain(
        self, heap: EventHeap
    ) -> tuple[list[SimulatedQueryOutcome], list[DroppedQuery]]:
        outcomes: list[SimulatedQueryOutcome] = []
        dropped: list[DroppedQuery] = []
        bus = None if self.autoscaler is None else self.autoscaler.bus
        # Hot-path hoists: these attribute chains are invariant across the
        # run, and the loop body runs once per event on 10k+ query traces.
        router_select = self.router.select
        needs_estimates = self._needs_estimates
        scalable = self._scalable_set
        heap_pop = heap.pop
        fi = self.faults
        ARRIVAL, COMPLETION, FAULT, RECOVERY, PROVISIONING, CONTROL = (
            EventKind.ARRIVAL,
            EventKind.COMPLETION,
            EventKind.FAULT,
            EventKind.RECOVERY,
            EventKind.PROVISIONING,
            EventKind.CONTROL,
        )
        seq = 0
        while heap:
            event = heap_pop()
            now = event.time_ms
            kind = event.kind
            if kind == ARRIVAL:
                # Only data-plane events define the run's duration: a
                # trailing control tick (or provisioning hand-over) after
                # the last completion must not inflate the cost accounting
                # relative to a static run of the same trace.
                self._run_end_ms = now
                query = event.payload
                item = QueuedQuery(query=query, arrival_ms=now, seq=seq)
                seq += 1
                candidates = self._routable()
                if fi is not None and not candidates:
                    # Every replica crashed (and no replacement is serving
                    # yet): the arrival has nowhere to go and is shed.
                    self._shed_arrival(item, now, dropped, bus)
                    continue
                ridx = router_select(candidates, item, now)
                replica = candidates[ridx]
                if bus is not None and replica.index in scalable:
                    bus.on_arrival(now)
                if needs_estimates:
                    # The estimate is replica-specific (it consults the
                    # backend's cache state), so it is attached after routing
                    # — and only when a discipline or router will read it,
                    # since it costs a latency-table lookup per arrival.
                    # Rebuilt directly (not dataclasses.replace): field
                    # introspection per arrival is measurable on long traces.
                    item = QueuedQuery(
                        query=query,
                        arrival_ms=now,
                        seq=item.seq,
                        service_estimate_ms=float(replica.service_estimator(query)),
                    )
                replica.enqueue(item)
                if replica.in_service is None:
                    self._dispatch(replica, now, heap, dropped)
            elif kind == COMPLETION:
                replica = self.replicas[event.payload]
                if fi is not None and replica.failed:
                    # The crash already swept this pickup into the retry
                    # path; its COMPLETION is stale and defines nothing
                    # (not even the run end — the work never finished).
                    continue
                self._run_end_ms = now
                self._complete(replica, outcomes, now)
                self._dispatch(replica, now, heap, dropped)
            elif kind == FAULT:
                self._handle_fault(now, event.payload, heap, dropped)
            elif kind == RECOVERY:
                self._handle_recovery(now, event.payload, heap, dropped)
            elif kind == PROVISIONING:
                replica = self.replicas[event.payload]
                # A scale-down during the cold start cancelled (retired)
                # the replica; its stale hand-over event is a no-op.
                if not replica.is_retired and replica.provisioning:
                    replica.finish_provisioning()
                    if fi is not None:
                        self._on_capacity_joined()
            else:  # CONTROL
                self._control(now, heap)
        outcomes.sort(key=_by_query_index)
        dropped.sort(key=_by_query_index)
        return outcomes, dropped

    def _drain_array(
        self, trace, arrivals: np.ndarray
    ) -> tuple[list[SimulatedQueryOutcome], list[DroppedQuery]]:
        """The fast path with dynamics (autoscaler and/or fault injection).

        Mirrors :meth:`_drain` event for event — same handlers, same
        telemetry feed, same timestamp tie-breaks (enforced by
        :class:`ArrayEventQueue`) — but arrivals never become ``Event``
        objects and queries materialize lazily, so the per-arrival constant
        factor drops while scaling and fault decisions stay bit-identical.
        """
        outcomes: list[SimulatedQueryOutcome] = []
        dropped: list[DroppedQuery] = []
        bus = None if self.autoscaler is None else self.autoscaler.bus
        router_select = self.router.select
        needs_estimates = self._needs_estimates
        scalable = self._scalable_set
        get_query = _query_getter(trace)
        queue = ArrayEventQueue(arrivals.tolist())
        if self.autoscaler is not None:
            queue.push(
                Event(self.autoscaler.control_interval_ms, EventKind.CONTROL, None)
            )
        fi = self.faults
        if fi is not None:
            self._arm_faults(arrivals, queue.push)
        queue_pop = queue.pop
        ARRIVAL, COMPLETION, FAULT, RECOVERY, PROVISIONING = (
            int(EventKind.ARRIVAL),
            int(EventKind.COMPLETION),
            int(EventKind.FAULT),
            int(EventKind.RECOVERY),
            int(EventKind.PROVISIONING),
        )
        while queue:
            now, kind, payload = queue_pop()
            if kind == ARRIVAL:
                # Only data-plane events define the run's duration (see
                # _drain).  The payload is the arrival index, which doubles
                # as the queue-entry sequence number: the cursor yields
                # arrivals in buffer order, exactly the reference loop's
                # seq counter.
                self._run_end_ms = now
                query = get_query(payload)
                item = QueuedQuery(query=query, arrival_ms=now, seq=payload)
                candidates = self._routable()
                if fi is not None and not candidates:
                    self._shed_arrival(item, now, dropped, bus)
                    continue
                ridx = router_select(candidates, item, now)
                replica = candidates[ridx]
                if bus is not None and replica.index in scalable:
                    bus.on_arrival(now)
                if needs_estimates:
                    item = QueuedQuery(
                        query=query,
                        arrival_ms=now,
                        seq=payload,
                        service_estimate_ms=float(replica.service_estimator(query)),
                    )
                replica.enqueue(item)
                if replica.in_service is None:
                    self._dispatch(replica, now, queue, dropped)
            elif kind == COMPLETION:
                replica = self.replicas[payload]
                if fi is not None and replica.failed:
                    # Stale completion of a crashed replica's lost pickup
                    # (see _drain).
                    continue
                self._run_end_ms = now
                self._complete(replica, outcomes, now)
                self._dispatch(replica, now, queue, dropped)
            elif kind == FAULT:
                self._handle_fault(now, payload, queue, dropped)
            elif kind == RECOVERY:
                self._handle_recovery(now, payload, queue, dropped)
            elif kind == PROVISIONING:
                replica = self.replicas[payload]
                if not replica.is_retired and replica.provisioning:
                    replica.finish_provisioning()
                    if fi is not None:
                        self._on_capacity_joined()
            else:  # CONTROL
                self._control(now, queue)
        outcomes.sort(key=_by_query_index)
        dropped.sort(key=_by_query_index)
        return outcomes, dropped

    # ------------------------------------------------------------- sharding
    def _run_sharded(
        self, trace, arrivals: np.ndarray, workers: int | None
    ) -> tuple[list[SimulatedQueryOutcome], list[DroppedQuery]]:
        """Simulate each replica's arrival sub-stream independently.

        Round-robin routing is state-independent — arrival ``i`` goes to
        replica ``i mod N`` regardless of pool load — and without an
        autoscaler the replicas share no state at all, so the simulation
        decomposes exactly: each replica sees the arrival subsequence
        ``arrivals[r::N]`` with its global indices, and the merged,
        query-index-sorted outcomes are bit-identical to the unsharded fast
        path (which sorts the same way).  Load-aware routers and autoscaled
        pools couple replicas through routing/telemetry state and are
        rejected.

        With ``workers > 1`` the shards run in forked worker processes and
        the children's replica stats are mirrored back onto the parent's
        objects; note that backend-internal state (e.g. Persistent Buffer
        caches) then advances in the children only.  Platforms without
        ``fork`` fall back to sequential in-process sharding.
        """
        if self.autoscaler is not None:
            raise ValueError("sharded simulation is incompatible with an autoscaler")
        if self.faults is not None:
            raise ValueError(
                "sharded simulation is incompatible with fault injection: "
                "retries re-route lost queries across replicas, which "
                "couples the shards"
            )
        if not isinstance(self.router, RoundRobinRouter):
            raise ValueError(
                "sharded simulation needs state-independent routing "
                "(round_robin): a load-aware router couples replicas, which "
                "cannot then be simulated independently"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"shard_workers must be >= 1, got {workers}")
        replicas = self.replicas
        num = len(replicas)
        arr_list = arrivals.tolist()
        jobs = [
            (replicas[r], arr_list[r::num], list(range(r, len(arr_list), num)))
            for r in range(num)
        ]
        results = None
        # A recorded run keeps its shards in-process: forked workers would
        # feed child-process recorder copies whose spans never come back.
        # Sequential sharding is bit-identical to the mp path, so forcing
        # it changes no record.
        if workers is not None and workers > 1 and num > 1 and self.recorder is None:
            results = self._run_shard_jobs_mp(trace, jobs, workers)
        if results is None:
            get_query = _query_getter(trace)
            results = [
                _fast_drain(
                    [replica],
                    None,
                    self.admission,
                    self.dispatch_time_scheduling,
                    self._needs_estimates,
                    get_query,
                    sub_arr,
                    seqs=seqs,
                    fixed_replica=replica,
                    recorder=self.recorder,
                )
                for replica, sub_arr, seqs in jobs
            ]
        outcomes: list[SimulatedQueryOutcome] = []
        dropped: list[DroppedQuery] = []
        run_end = 0.0
        for shard_outcomes, shard_dropped, shard_end in results:
            outcomes.extend(shard_outcomes)
            dropped.extend(shard_dropped)
            if shard_end > run_end:
                run_end = shard_end
        self._run_end_ms = run_end
        outcomes.sort(key=_by_query_index)
        dropped.sort(key=_by_query_index)
        return outcomes, dropped

    def _run_shard_jobs_mp(self, trace, jobs, workers: int):
        """Run shard jobs in forked workers; ``None`` → caller falls back."""
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            # No fork on this platform.  Spawn would need every backend,
            # policy and trace to be importable-picklable, which test
            # doubles often are not — fall back to in-process sharding.
            return None
        payloads = [
            (
                replica,
                self.admission,
                self.dispatch_time_scheduling,
                self._needs_estimates,
                trace,
                sub_arr,
                seqs,
            )
            for replica, sub_arr, seqs in jobs
        ]
        with ctx.Pool(processes=min(workers, len(jobs))) as pool:
            shard_results = pool.map(_shard_worker, payloads)
        for (replica, _, _), result in zip(jobs, shard_results):
            # The child advanced a copy-on-write copy of the replica; mirror
            # the observable end-of-run state back onto the parent's object.
            replica.stats = result[2]
            replica.busy_until_ms = result[3]
        return [(outcomes, dropped, end) for outcomes, dropped, _, _, end in shard_results]

    # --------------------------------------------------------- control plane
    def _control(self, now: float, heap: EventHeap | ArrayEventQueue) -> None:
        """One autoscaler tick: snapshot the pool, enact the policy's delta."""
        ctl = self.autoscaler
        # All signals describe the scaled groups only (matching the event
        # feed); draining replicas still serve their queues, so they count
        # toward the utilization capacity but not toward the policy's
        # notion of the pool size; provisioning replicas cannot serve and
        # are excluded from the capacity denominator.
        loads: list[GroupLoad] = []
        members: dict[str | None, list[AcceleratorReplica]] = {}
        fi = self.faults
        for group in ctl.groups:
            pool = self._group_pool(group.name)
            members[group.name] = pool
            loads.append(
                GroupLoad(
                    name=group.name,
                    num_active=sum(
                        1 for r in pool if not r.draining and not r.provisioning
                    ),
                    num_provisioning=sum(1 for r in pool if r.provisioning),
                    num_draining=sum(1 for r in pool if r.draining),
                    queue_depth=sum(r.queue_length() for r in pool),
                    # Crashed replicas left the pool (crash retires), so
                    # num_active already excludes them: the min_replicas
                    # clamp is what lifts `desired` back up and provisions
                    # the replacement.  The failed count is telemetry.
                    num_failed=(
                        0
                        if fi is None
                        else sum(
                            1
                            for i in self._group_indices[group.name]
                            if self.replicas[i].failed
                        )
                    ),
                )
            )
        snapshot = ctl.bus.snapshot(
            now,
            num_active=sum(load.num_active for load in loads),
            num_draining=sum(load.num_draining for load in loads),
            queue_depth=sum(load.queue_depth for load in loads),
            capacity_replicas=sum(
                load.num_active + load.num_draining for load in loads
            ),
            num_provisioning=sum(load.num_provisioning for load in loads),
            num_failed_replicas=sum(load.num_failed for load in loads),
        )
        desired_map = ctl.decide_pool(snapshot, loads)
        for group, load in zip(ctl.groups, loads):
            self._resize_group(
                group, load, desired_map[group.name], members[group.name], now, heap
            )
        # Keep ticking while the simulation still has work in flight; once
        # the heap is empty and every queue is drained the run is over and
        # the control loop stops with it.
        if heap or any(
            r.is_busy or len(r.queue) for r in self.replicas if not r.is_retired
        ):
            heap.push(Event(now + ctl.control_interval_ms, EventKind.CONTROL, None))

    def _resize_group(
        self,
        group,
        load: GroupLoad,
        desired: int,
        pool: list[AcceleratorReplica],
        now: float,
        heap: EventHeap | ArrayEventQueue,
    ) -> None:
        """Enact one group's desired-size delta against its incoming count."""
        incoming = load.num_incoming
        if desired > incoming:
            # Reclaim draining replicas first (their Persistent Buffers are
            # still warm and they serve instantly), newest drain first; then
            # clone fresh replicas, which provision for the group's
            # startup delay before joining routing.
            needed = desired - incoming
            for replica in reversed([r for r in pool if r.draining]):
                if needed == 0:
                    break
                replica.undrain()
                needed -= 1
            ctl = self.autoscaler
            recorder = self.recorder
            fi = self.faults
            for _ in range(needed):
                index = len(self.replicas)
                replica = ctl.make_replica(index, group=group.name)
                replica.assign_index(index)
                replica.activated_ms = now
                if recorder is not None:
                    recorder.on_replica_created(index, replica.name, now)
                if group.startup_delay_ms > 0:
                    replica.start_provisioning(now, now + group.startup_delay_ms)
                    if recorder is not None:
                        recorder.on_provisioning(
                            index, now, now + group.startup_delay_ms
                        )
                    heap.push(
                        Event(
                            now + group.startup_delay_ms,
                            EventKind.PROVISIONING,
                            index,
                        )
                    )
                self.replicas.append(replica)
                self._group_indices[group.name].append(index)
                self._scalable_set.add(index)
                if fi is not None:
                    if fi.covers_group(group.name):
                        # The replacement lives under the same fault
                        # processes as the replica it replaces; its crash
                        # clock starts at its own creation.
                        fi.schedule_replica(index, now, heap.push)
                    if group.startup_delay_ms <= 0:
                        # No cold start: the replica joined routing above,
                        # so failure pressure eases immediately (a delayed
                        # one eases at its PROVISIONING hand-over).
                        self._on_capacity_joined()
        elif desired < incoming:
            # Cancel provisioning replicas first (they never served — the
            # cheapest capacity to shed), newest request first; then drain
            # serving replicas from the end of the pool, keeping the
            # long-lived (warm) ones serving.
            excess = incoming - desired
            recorder = self.recorder
            for replica in reversed([r for r in pool if r.provisioning]):
                if excess == 0:
                    break
                replica.retire(now)
                if recorder is not None:
                    recorder.on_provisioning_cancelled(replica.index, now)
                    recorder.on_replica_retired(replica.index, now)
                excess -= 1
            # is_retired filters the provisioning replicas cancelled just
            # above (retire() cleared their provisioning flag).
            active = [
                r
                for r in pool
                if not r.draining and not r.provisioning and not r.is_retired
            ]
            for replica in reversed(active[len(active) - excess:]):
                replica.start_draining()
                self._maybe_retire(replica, now)

    def _maybe_retire(self, replica: AcceleratorReplica, now: float) -> None:
        """Retire a draining replica once it is idle with an empty queue."""
        if replica.draining and not replica.is_busy and not len(replica.queue):
            replica.retire(now)
            if self.recorder is not None:
                self.recorder.on_replica_retired(replica.index, now)

    # ------------------------------------------------------------ fault plane
    def _arm_faults(self, arrivals: np.ndarray, push) -> None:
        """Sample and schedule the fault processes for the initial pool.

        Runs once per ``run()``, in replica-index order, before the first
        event pops — the injector's draw sequence is a pure function of the
        pool composition, so repeated runs replay the same faults.
        """
        fi = self.faults
        fi.horizon_ms = float(arrivals[-1]) if len(arrivals) else 0.0
        group_of = dict(self.fault_groups)
        for name, indices in self._group_indices.items():
            for i in indices:
                group_of.setdefault(i, name)
        for replica in self.replicas:
            if fi.covers_group(group_of.get(replica.index)):
                fi.schedule_replica(replica.index, 0.0, push)

    def _handle_fault(
        self,
        now: float,
        payload,
        heap: EventHeap | ArrayEventQueue,
        dropped: list[DroppedQuery],
    ) -> None:
        """One FAULT event: a replica crash or a straggle onset."""
        fi = self.faults
        tag = payload[0]
        replica = self.replicas[payload[1]]
        if tag == "straggle":
            # A retired/crashed replica picks nothing up, so a stale
            # straggle onset is inert either way; skipping it keeps the
            # factor from leaking into a later pool state.
            if not replica.is_retired and not replica.failed:
                replica.straggle_factor = payload[2]
                if self.recorder is not None:
                    self.recorder.on_fault(
                        now, "straggle", replica.index, detail=payload[2]
                    )
            return
        # tag == "crash"
        if replica.is_retired or replica.failed:
            # Already drained away by a scale-down (or double event):
            # whichever of retire and crash processed first won, the loser
            # sees a retired replica and no-ops — deterministically.
            return
        lost = replica.crash(now)
        fi.on_crash()
        self._failed_pressure += 1
        if self.recorder is not None:
            self.recorder.on_fault(now, "crash", replica.index)
            self.recorder.on_replica_retired(replica.index, now)
        bus = None if self.autoscaler is None else self.autoscaler.bus
        if bus is not None and replica.index in self._scalable_set:
            bus.on_failure(now)
        for item in lost:
            self._retry_or_fail(item, replica, now, heap, dropped)
        fi.update_brownout(self._failed_pressure, len(self._routable()))

    def _handle_recovery(
        self,
        now: float,
        payload,
        heap: EventHeap | ArrayEventQueue,
        dropped: list[DroppedQuery],
    ) -> None:
        """One RECOVERY event: a straggle interval ends, or a retry fires."""
        if payload[0] == "straggle_end":
            replica = self.replicas[payload[1]]
            if not replica.is_retired and not replica.failed:
                replica.straggle_factor = 1.0
                if self.recorder is not None:
                    self.recorder.on_fault(now, "straggle_end", replica.index)
            return
        # ("retry", item): the backed-off query re-enters routing.  Its
        # arrival_ms (and deadline) stay original — a retry buys another
        # attempt, not more slack — and it does not feed bus.on_arrival:
        # demand telemetry counted it when it first arrived.
        item = payload[1]
        candidates = self._routable()
        bus = None if self.autoscaler is None else self.autoscaler.bus
        if not candidates:
            drop = DroppedQuery(
                query_index=item.query.index,
                arrival_ms=item.arrival_ms,
                dropped_at_ms=now,
                latency_constraint_ms=item.query.latency_constraint_ms,
                replica_index=-1,
                reason=FAILED,
            )
            dropped.append(drop)
            if bus is not None:
                bus.on_drop(now)
            if self.recorder is not None:
                self.recorder.on_dropped(drop)
            return
        ridx = self.router.select(candidates, item, now)
        replica = candidates[ridx]
        if self._needs_estimates:
            item = QueuedQuery(
                query=item.query,
                arrival_ms=item.arrival_ms,
                seq=item.seq,
                service_estimate_ms=float(replica.service_estimator(item.query)),
            )
        replica.enqueue(item)
        if replica.in_service is None:
            self._dispatch(replica, now, heap, dropped)

    def _retry_or_fail(
        self,
        item: QueuedQuery,
        replica: AcceleratorReplica,
        now: float,
        heap: EventHeap | ArrayEventQueue,
        dropped: list[DroppedQuery],
    ) -> None:
        """Back off a lost query for a retry, or fail it for good."""
        retry_ms = self.faults.next_retry_ms(item, now)
        if retry_ms is None:
            replica.stats.num_dropped += 1
            drop = DroppedQuery(
                query_index=item.query.index,
                arrival_ms=item.arrival_ms,
                dropped_at_ms=now,
                latency_constraint_ms=item.query.latency_constraint_ms,
                replica_index=replica.index,
                reason=FAILED,
            )
            dropped.append(drop)
            bus = None if self.autoscaler is None else self.autoscaler.bus
            if bus is not None and replica.index in self._scalable_set:
                bus.on_drop(now)
            if self.recorder is not None:
                self.recorder.on_dropped(drop)
        else:
            heap.push(Event(retry_ms, EventKind.RECOVERY, ("retry", item)))

    def _shed_arrival(
        self,
        item: QueuedQuery,
        now: float,
        dropped: list[DroppedQuery],
        bus,
    ) -> None:
        """Drop an arrival that found no routable replica (fault mode only).

        The demand still feeds the telemetry bus — arrivals shed because
        the whole pool crashed are exactly the signal the self-healing
        controller must see to provision replacements.
        """
        drop = DroppedQuery(
            query_index=item.query.index,
            arrival_ms=item.arrival_ms,
            dropped_at_ms=now,
            latency_constraint_ms=item.query.latency_constraint_ms,
            replica_index=-1,
            reason=SHED,
        )
        dropped.append(drop)
        if bus is not None:
            bus.on_arrival(now)
            bus.on_drop(now)
        if self.recorder is not None:
            self.recorder.on_dropped(drop)

    def _on_capacity_joined(self) -> None:
        """A scale-up replica joined routing: failure pressure eases."""
        if self._failed_pressure > 0:
            self._failed_pressure -= 1
        self.faults.update_brownout(self._failed_pressure, len(self._routable()))

    def _dispatch(
        self,
        replica: AcceleratorReplica,
        now: float,
        heap: EventHeap | ArrayEventQueue,
        dropped: list[DroppedQuery],
    ) -> None:
        """Start the replica's next pickup and schedule its COMPLETION.

        The serving semantics live in the shared :func:`_serve_pickup`
        helper (see its docstring for the batching behaviour); this wrapper
        adds the engine-level concerns — telemetry scoping, drain-retirement
        of an empty draining replica, and the COMPLETION event.
        """
        bus = None if self.autoscaler is None else self.autoscaler.bus
        if bus is not None and replica.index not in self._scalable_set:
            bus = None  # telemetry covers the scaled group only
        fi = self.faults
        if fi is None:
            completion_ms = _serve_pickup(
                replica,
                now,
                dropped,
                admission=self.admission,
                dts=self.dispatch_time_scheduling,
                bus=bus,
                recorder=self.recorder,
            )
        else:
            sink: list[QueuedQuery] = []
            while True:
                completion_ms = _serve_pickup(
                    replica,
                    now,
                    dropped,
                    admission=self.admission,
                    dts=self.dispatch_time_scheduling,
                    bus=bus,
                    recorder=self.recorder,
                    faults=fi,
                    fault_sink=sink,
                )
                if not sink:
                    break
                # The whole pickup errored transiently: its members enter
                # the retry path and the (healthy) replica pulls the next
                # batch, so queued work never starves behind a blip.
                if self.recorder is not None:
                    self.recorder.on_fault(now, "dispatch_failure", replica.index)
                for item in sink:
                    self._retry_or_fail(item, replica, now, heap, dropped)
                sink.clear()
        if completion_ms is None:
            # A draining replica with nothing left to serve leaves the
            # pool here — the natural end of its drain.
            if self.autoscaler is not None:
                self._maybe_retire(replica, now)
            return
        heap.push(Event(completion_ms, EventKind.COMPLETION, replica.index))

    def _complete(
        self,
        replica: AcceleratorReplica,
        outcomes: list[SimulatedQueryOutcome],
        now: float,
    ) -> None:
        if self.autoscaler is not None and replica.index in self._scalable_set:
            current = replica.in_service
            if current is not None:
                # One completion per batch: the bus pairs it with the
                # pickup's dispatch start, so windowed busy time stays exact.
                self.autoscaler.bus.on_completion(
                    now, replica_index=replica.index, service_ms=current.total_ms
                )
        _complete_inservice(replica, outcomes, self.recorder)

    # -------------------------------------------------------------- helpers
    def _drop(
        self, item: QueuedQuery, replica: AcceleratorReplica, now: float
    ) -> DroppedQuery:
        return _drop_item(item, replica, now)

    def _build_result(
        self,
        outcomes: list[SimulatedQueryOutcome],
        dropped: list[DroppedQuery],
        *,
        arrival_rate_per_ms: float | None = None,
        offered_load: float | None = None,
    ) -> SimulationResult:
        makespan = max((o.completion_ms for o in outcomes), default=0.0)
        duration = max(self._run_end_ms, makespan)
        # Per-replica provisioned time: live replicas accrue until the last
        # data-plane event; a retirement decided on a control tick *after*
        # that is capped at the duration, so autoscaled and static runs of
        # the same trace are charged over the same clock.
        for replica in self.replicas:
            end = duration
            if replica.is_retired:
                end = min(replica.retired_at_ms, duration)
            replica.stats.active_ms = max(0.0, end - replica.activated_ms)
        mean_active = (
            sum(r.stats.active_ms for r in self.replicas) / duration
            if duration > 0
            else float(self.num_replicas)
        )
        if offered_load is None:
            if arrival_rate_per_ms is not None and outcomes:
                mean_service = float(np.mean([o.service_ms for o in outcomes]))
                # rho against the capacity actually provisioned: the static
                # replica count, or the time-weighted mean pool size when
                # the run was autoscaled.
                capacity = (
                    self.num_replicas
                    if self.autoscaler is None
                    else max(mean_active, 1e-12)
                )
                offered_load = arrival_rate_per_ms * mean_service / capacity
            else:
                offered_load = 0.0
        throughput = len(outcomes) / makespan if makespan > 0 else 0.0
        if self.autoscaler is None:
            report = None
        else:
            final_by_group = tuple(
                (
                    name,
                    sum(
                        1
                        for r in self._group_pool(name)
                        if not r.draining and not r.provisioning
                    ),
                )
                for name in self._group_indices
            )
            report = self.autoscaler.report(
                final_replicas=sum(n for _, n in final_by_group),
                final_by_group=final_by_group,
            )
        trace = None
        if self.recorder is not None:
            trace = self.recorder.finish(
                duration_ms=duration,
                scaling_events=() if report is None else report.events,
            )
        metrics = ()
        if self.autoscaler is not None and self.autoscaler.keep_metrics:
            metrics = tuple(self.autoscaler.metrics_history)
        return SimulationResult(
            outcomes=tuple(outcomes),
            offered_load=offered_load,
            dropped=tuple(dropped),
            replica_stats=tuple(r.stats for r in self.replicas),
            achieved_throughput_per_ms=throughput,
            duration_ms=duration,
            autoscale=report,
            trace=trace,
            metrics=metrics,
            num_crashes=0 if self.faults is None else self.faults.num_crashes,
        )


def build_stack_engine(
    stack,
    *,
    num_replicas: int = 1,
    discipline: str | QueueDiscipline = "fifo",
    router: str | RoutingPolicy = "round_robin",
    admission: str | AdmissionPolicy = "admit_all",
    dispatch_time_scheduling: bool = True,
    max_batch: int = 1,
    batch_policy: str = "shared_subnet",
) -> ServingEngine:
    """An engine over ``num_replicas`` independent clones of a SUSHI stack.

    Each replica gets its own scheduler and Persistent Buffer state (cloned
    via :meth:`~repro.serving.stack.SushiStack.clone`, sharing the immutable
    SuperNet/table) so replicas evolve their caches independently; the
    passed stack itself is left untouched.  ``max_batch`` / ``batch_policy``
    configure batched dispatch per replica (``max_batch=1`` keeps the
    pre-batching per-query pickup).
    """
    if num_replicas <= 0:
        raise ValueError("num_replicas must be positive")
    replicas = [
        AcceleratorReplica(
            stack.clone(seed=stack.config.seed + i),
            discipline=discipline,
            max_batch=max_batch,
            batch_policy=batch_policy,
        )
        for i in range(num_replicas)
    ]
    return ServingEngine(
        replicas,
        router=router,
        admission=admission,
        dispatch_time_scheduling=dispatch_time_scheduling,
    )
