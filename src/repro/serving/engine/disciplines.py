"""Pluggable queue disciplines for replica queues.

A discipline decides *which waiting query a replica serves next*.  Three are
provided:

* ``fifo`` — arrival order (the classic M/G/1 queue; matches the original
  single-server simulator).
* ``edf`` — earliest deadline first, where a query's deadline is its arrival
  time plus its latency constraint.  Serving the most urgent query first is
  the canonical SLO-aware discipline.
* ``priority_by_slack`` — least slack first, where slack is the deadline
  minus the query's *estimated service time*: a query with a tight deadline
  and a long expected service is more urgent than one with the same deadline
  that will finish quickly.

All orderings break ties by arrival sequence number, so every run is
deterministic.
"""

from __future__ import annotations

import abc
import heapq
from collections import deque
from dataclasses import dataclass

from repro.serving.query import Query


@dataclass(frozen=True, slots=True)
class QueuedQuery:
    """A query waiting in a replica queue, with its arrival-time context.

    ``slots=True``: one of these is allocated per arrival, so the instance
    layout sits on the event loop's hot path for long traces.
    """

    query: Query
    arrival_ms: float
    seq: int
    """Global arrival sequence number (deterministic tie-breaker)."""
    service_estimate_ms: float = 0.0
    """Estimated service time, used by slack ordering and load estimation."""

    @property
    def deadline_ms(self) -> float:
        """Absolute time by which the response must complete to meet the SLO."""
        return self.arrival_ms + self.query.latency_constraint_ms

    @property
    def slack_key_ms(self) -> float:
        """Deadline minus estimated service: when service must *start* by."""
        return self.deadline_ms - self.service_estimate_ms


class QueueDiscipline(abc.ABC):
    """Order in which a replica drains its waiting queries."""

    name: str
    needs_service_estimates: bool = False
    """True when ordering reads ``service_estimate_ms`` (engine computes it
    lazily — estimating costs a latency-table lookup per arrival)."""

    @abc.abstractmethod
    def push(self, item: QueuedQuery) -> None:
        """Add a waiting query."""

    @abc.abstractmethod
    def pop(self) -> QueuedQuery | None:
        """Remove and return the next query to serve (None when empty)."""

    @abc.abstractmethod
    def __len__(self) -> int: ...

    def clear(self) -> None:
        while self.pop() is not None:
            pass


class FIFOQueue(QueueDiscipline):
    """First-in first-out (arrival order)."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: deque[QueuedQuery] = deque()

    def push(self, item: QueuedQuery) -> None:
        self._queue.append(item)

    def pop(self) -> QueuedQuery | None:
        return self._queue.popleft() if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)


class _HeapQueue(QueueDiscipline):
    """Shared heap machinery for priority disciplines."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, QueuedQuery]] = []

    def _key(self, item: QueuedQuery) -> float:
        raise NotImplementedError

    def push(self, item: QueuedQuery) -> None:
        heapq.heappush(self._heap, (self._key(item), item.seq, item))

    def pop(self) -> QueuedQuery | None:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class EDFQueue(_HeapQueue):
    """Earliest (absolute) deadline first."""

    name = "edf"

    def _key(self, item: QueuedQuery) -> float:
        return item.deadline_ms


class SlackPriorityQueue(_HeapQueue):
    """Least slack first: deadline minus estimated service time.

    Because the candidates in a queue share the same "now", ordering by
    remaining slack at pop time equals ordering by this static key, so a
    heap suffices.
    """

    name = "priority_by_slack"
    needs_service_estimates = True

    def _key(self, item: QueuedQuery) -> float:
        return item.slack_key_ms


_DISCIPLINES = {
    FIFOQueue.name: FIFOQueue,
    EDFQueue.name: EDFQueue,
    SlackPriorityQueue.name: SlackPriorityQueue,
}

#: Names of the registered queue disciplines.
DISCIPLINE_NAMES: tuple[str, ...] = tuple(sorted(_DISCIPLINES))


def make_discipline(spec: str | QueueDiscipline) -> QueueDiscipline:
    """Build a fresh discipline from a name, or pass an instance through."""
    if isinstance(spec, QueueDiscipline):
        return spec
    try:
        return _DISCIPLINES[spec]()
    except KeyError as exc:
        raise ValueError(
            f"unknown queue discipline {spec!r}; available: {sorted(_DISCIPLINES)}"
        ) from exc
