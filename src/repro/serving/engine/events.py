"""Discrete-event machinery: the event heap of the serving engine.

The engine advances simulated time through a priority queue of timestamped
events.  Four event kinds exist: a query *arrival* (it enters the system
and is routed to a replica's queue), a replica *completion* (a replica
finishes its in-service query and pulls the next one), a replica
*provisioning* hand-over (a cold scale-up replica finishes its
``startup_delay_ms`` and joins routing), and an autoscaler *control* tick
(the scaling policy observes the pool and may resize it).

Tie-breaking at equal timestamps (the engine's determinism contract):
completions are processed before arrivals so a replica freed at time ``t``
is visible to routing decisions made at ``t``; provisioning hand-overs run
after the data plane but before control so a replica warm at ``t`` is
active in the tick's snapshot at ``t``; control ticks run last so the
policy sees every data-plane event up to and including ``t``.  Remaining
ties resolve by insertion order, which keeps every run deterministic.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any


class EventKind(enum.IntEnum):
    """Event kinds, ordered by processing priority at equal timestamps."""

    COMPLETION = 0
    ARRIVAL = 1
    PROVISIONING = 2
    CONTROL = 3


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped event in the simulation.

    ``slots=True`` keeps the event loop's per-query allocations small: one
    event is created per arrival and per batch completion, so the instance
    layout is on the hot path for long traces.
    """

    time_ms: float
    kind: EventKind
    payload: Any
    """ARRIVAL: the arriving :class:`Query`.  COMPLETION / PROVISIONING: the
    replica index.  CONTROL: unused (None)."""


class EventHeap:
    """Min-heap of events ordered by (time, kind, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = 0

    def push(self, event: Event) -> None:
        heapq.heappush(
            self._heap, (event.time_ms, int(event.kind), self._counter, event)
        )
        self._counter += 1

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event heap")
        return heapq.heappop(self._heap)[3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
