"""Discrete-event machinery: the event heap of the serving engine.

The engine advances simulated time through a priority queue of timestamped
events.  Six event kinds exist: a query *arrival* (it enters the system
and is routed to a replica's queue), a replica *completion* (a replica
finishes its in-service query and pulls the next one), a *fault* onset
(a sampled crash or straggle interval from the fault-injection layer hits
a replica), a *recovery* (a straggle interval ends, or a retried query
re-enters routing after its backoff), a replica *provisioning* hand-over
(a cold scale-up replica finishes its ``startup_delay_ms`` and joins
routing), and an autoscaler *control* tick (the scaling policy observes
the pool and may resize it).

Tie-breaking at equal timestamps (the engine's determinism contract):
completions are processed before arrivals so a replica freed at time ``t``
is visible to routing decisions made at ``t``; faults and recoveries run
after the data plane (a completion or arrival at exactly ``t`` still sees
the pre-fault pool, so a crash never races a same-instant completion) but
before provisioning and control, so the control plane's view at ``t`` is
always the *post*-fault pool; provisioning hand-overs run next so a
replica warm at ``t`` is active in the tick's snapshot at ``t``; control
ticks run last so the policy sees every data-plane and fault event up to
and including ``t``.  Remaining ties resolve by insertion order, which
keeps every run deterministic.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any, Sequence


class EventKind(enum.IntEnum):
    """Event kinds, ordered by processing priority at equal timestamps."""

    COMPLETION = 0
    ARRIVAL = 1
    FAULT = 2
    RECOVERY = 3
    PROVISIONING = 4
    CONTROL = 5


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped event in the simulation.

    ``slots=True`` keeps the event loop's per-query allocations small: one
    event is created per arrival and per batch completion, so the instance
    layout is on the hot path for long traces.
    """

    time_ms: float
    kind: EventKind
    payload: Any
    """ARRIVAL: the arriving :class:`Query`.  COMPLETION / PROVISIONING: the
    replica index.  FAULT / RECOVERY: a ``(tag, ...)`` tuple from the fault
    layer (see :mod:`repro.serving.engine.faults`).  CONTROL: unused
    (None)."""


class EventHeap:
    """Min-heap of events ordered by (time, kind, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = 0

    def push(self, event: Event) -> None:
        heapq.heappush(
            self._heap, (event.time_ms, int(event.kind), self._counter, event)
        )
        self._counter += 1

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event heap")
        return heapq.heappop(self._heap)[3]

    def pop_batch(self) -> list[Event]:
        """Every event sharing the earliest timestamp, in tie-break order.

        Equivalent to popping one at a time while the head's time does not
        change: the returned list is ordered by (kind, insertion order), the
        documented determinism contract at equal timestamps.
        """
        heap = self._heap
        if not heap:
            raise IndexError("pop from an empty event heap")
        time_ms = heap[0][0]
        batch: list[Event] = []
        pop = heapq.heappop
        while heap and heap[0][0] == time_ms:
            batch.append(pop(heap)[3])
        return batch

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


_ARRIVAL = int(EventKind.ARRIVAL)


class ArrayEventQueue:
    """Array-backed event queue: an arrival cursor merged with a small heap.

    The engine's arrival buffer is already time-sorted (arrival processes
    are cumulative), so the fast path keeps arrivals as a plain cursor over
    the buffer and heaps only the *dynamic* events — COMPLETION, FAULT,
    RECOVERY, PROVISIONING and CONTROL — of which only a handful are ever
    in flight.
    This removes one ``Event`` allocation plus a heap push *and* pop per
    arrival while preserving :class:`EventHeap`'s exact ordering contract:

    * time first;
    * at equal timestamps, :class:`EventKind` order (completions before
      arrivals before faults/recoveries before provisioning hand-overs
      before control ticks);
    * remaining ties by insertion order.  Dynamic events are never
      ARRIVAL-kind, so (time, kind) fully orders a dynamic event against
      the cursor, and same-kind dynamic ties fall back to this queue's own
      insertion counter — the same relative order ``run()`` would have
      pushed them into an :class:`EventHeap`.

    ``pop`` returns ``(time_ms, kind, payload)`` where an ARRIVAL's payload
    is the *arrival index* into the buffer (the caller materializes the
    query lazily); dynamic payloads are the pushed event's payload.
    """

    def __init__(self, arrival_times_ms: Sequence[float]) -> None:
        # A plain Python list: float comparisons against heap entries are
        # several times faster than indexing a numpy array per event.
        self._arrivals = list(arrival_times_ms)
        self._cursor = 0
        self._heap: list[tuple[float, int, int, Any]] = []
        self._counter = 0

    def push(self, event: Event) -> None:
        """Schedule a dynamic (non-ARRIVAL) event."""
        heapq.heappush(
            self._heap,
            (event.time_ms, int(event.kind), self._counter, event.payload),
        )
        self._counter += 1

    def pop(self) -> tuple[float, int, Any]:
        heap = self._heap
        i = self._cursor
        if i < len(self._arrivals):
            arrival_ms = self._arrivals[i]
            if heap:
                head = heap[0]
                # The dynamic event wins on a strictly earlier time, or on
                # a tie when its kind precedes ARRIVAL (i.e. COMPLETION).
                if head[0] < arrival_ms or (
                    head[0] == arrival_ms and head[1] < _ARRIVAL
                ):
                    heapq.heappop(heap)
                    return head[0], head[1], head[3]
            self._cursor = i + 1
            return arrival_ms, _ARRIVAL, i
        if heap:
            time_ms, kind, _, payload = heapq.heappop(heap)
            return time_ms, kind, payload
        raise IndexError("pop from an empty event queue")

    def __len__(self) -> int:
        return (len(self._arrivals) - self._cursor) + len(self._heap)

    def __bool__(self) -> bool:
        return self._cursor < len(self._arrivals) or bool(self._heap)
