"""Discrete-event machinery: the event heap of the serving engine.

The engine advances simulated time through a priority queue of timestamped
events.  Three event kinds exist: a query *arrival* (it enters the system
and is routed to a replica's queue), a replica *completion* (a replica
finishes its in-service query and pulls the next one), and an autoscaler
*control* tick (the scaling policy observes the pool and may resize it).
At equal timestamps completions are processed before arrivals so a replica
freed at time ``t`` is visible to routing decisions made at ``t``, and
control ticks run last so the policy sees every data-plane event up to and
including ``t``; remaining ties resolve by insertion order, which keeps
every run deterministic.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any


class EventKind(enum.IntEnum):
    """Event kinds, ordered by processing priority at equal timestamps."""

    COMPLETION = 0
    ARRIVAL = 1
    CONTROL = 2


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped event in the simulation.

    ``slots=True`` keeps the event loop's per-query allocations small: one
    event is created per arrival and per batch completion, so the instance
    layout is on the hot path for long traces.
    """

    time_ms: float
    kind: EventKind
    payload: Any
    """ARRIVAL: the arriving :class:`Query`.  COMPLETION: the replica index.
    CONTROL: unused (None)."""


class EventHeap:
    """Min-heap of events ordered by (time, kind, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = 0

    def push(self, event: Event) -> None:
        heapq.heappush(
            self._heap, (event.time_ms, int(event.kind), self._counter, event)
        )
        self._counter += 1

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event heap")
        return heapq.heappop(self._heap)[3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
