"""Fault injection: crashes, stragglers, transient dispatch failures.

The :class:`FaultInjector` is the runtime side of the declarative
``FaultSpec`` (see :mod:`repro.serving.spec`): a seeded, per-replica fault
process sampled into FAULT/RECOVERY events plus the retry/brownout
bookkeeping the engine consults at dispatch time.  Like the flight
recorder, it hangs off the engine as a nullable attribute — every hot-loop
hook is a dead ``is None`` check when fault injection is off, so
``faults: null`` stays bit-identical to the fault-free engine (a rung of
the record-identity ladder).

Three fault processes, all drawn from one decorrelated seeded
``numpy.random.Generator`` (RPR001: no unseeded randomness in the fault
layer):

* **Crashes** — each covered replica dies at an exponentially sampled
  time (``crash_mtbf_ms``).  The in-flight batch and the queued backlog
  are lost; each lost query goes through the retry policy.  A crashed
  replica never recovers — self-healing is the autoscaler's job
  (replacements provision through the existing cold-start lifecycle).
* **Stragglers** — each covered replica alternates healthy and straggle
  intervals (onset gaps ~ Exp(``straggler_mtbf_ms``), durations ~
  Exp(``straggler_duration_ms``)); while straggling, every batch it picks
  up runs ``straggler_factor`` times slower.
* **Transient dispatch failures** — each pickup errors with probability
  ``dispatch_failure_prob``; the batch's queries go through the retry
  policy, the replica stays healthy.

Retry semantics (``max_attempts`` / ``backoff_base_ms`` /
``backoff_multiplier``): a lost query re-enters routing after an
exponential backoff, but only while the backoff still fits the query's
remaining deadline slack — a retry that would land after the deadline, or
a query out of attempts, is dropped with the ``"failed"`` reason.

Brownout (``brownout_threshold`` …): when the failed fraction of the pool
crosses the threshold, the engine relaxes every dispatched query's
accuracy floor stepwise (``level x brownout_accuracy_step``) so smaller,
faster SubNets absorb the lost capacity instead of deadline drops.  The
level is recomputed whenever the pool changes (crash, replacement ready).
"""

from __future__ import annotations

from typing import Callable, Iterable

from numpy.random import default_rng

from repro.serving.engine.disciplines import QueuedQuery
from repro.serving.engine.events import Event, EventKind

#: Drop reason for queries that exhausted their retry budget (or whose
#: backoff no longer fits the deadline) after a crash / dispatch failure.
FAILED = "failed"
#: Drop reason for arrivals shed because no routable replica existed.
SHED = "shed"


class FaultInjector:
    """Seeded per-replica fault processes plus retry/brownout state.

    Built once per engine (by ``api.build_engine`` from a ``FaultSpec``,
    or directly in tests), attached as ``engine.faults``.  ``reset()``
    restores the constructor state — including the RNG — so repeated runs
    of the same engine replay the same faults.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        crash_mtbf_ms: float | None = None,
        straggler_mtbf_ms: float | None = None,
        straggler_duration_ms: float = 0.0,
        straggler_factor: float = 1.0,
        dispatch_failure_prob: float = 0.0,
        max_attempts: int = 3,
        backoff_base_ms: float = 1.0,
        backoff_multiplier: float = 2.0,
        brownout_threshold: float | None = None,
        brownout_accuracy_step: float = 0.01,
        brownout_max_steps: int = 3,
        groups: Iterable[str] | None = None,
    ) -> None:
        if crash_mtbf_ms is not None and crash_mtbf_ms <= 0:
            raise ValueError("crash_mtbf_ms must be positive")
        if straggler_mtbf_ms is not None:
            if straggler_mtbf_ms <= 0:
                raise ValueError("straggler_mtbf_ms must be positive")
            if straggler_duration_ms <= 0:
                raise ValueError(
                    "straggler_duration_ms must be positive when stragglers "
                    "are enabled"
                )
            if straggler_factor < 1.0:
                raise ValueError("straggler_factor must be >= 1.0")
        if not (0.0 <= dispatch_failure_prob < 1.0):
            raise ValueError("dispatch_failure_prob must be in [0, 1)")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff_base_ms <= 0:
            raise ValueError("backoff_base_ms must be positive")
        if backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")
        if brownout_threshold is not None:
            if not (0.0 < brownout_threshold <= 1.0):
                raise ValueError("brownout_threshold must be in (0, 1]")
            if brownout_accuracy_step <= 0:
                raise ValueError("brownout_accuracy_step must be positive")
            if brownout_max_steps < 1:
                raise ValueError("brownout_max_steps must be >= 1")
        self.seed = seed
        self.crash_mtbf_ms = crash_mtbf_ms
        self.straggler_mtbf_ms = straggler_mtbf_ms
        self.straggler_duration_ms = straggler_duration_ms
        self.straggler_factor = straggler_factor
        self.dispatch_failure_prob = dispatch_failure_prob
        self.max_attempts = max_attempts
        self.backoff_base_ms = backoff_base_ms
        self.backoff_multiplier = backoff_multiplier
        self.brownout_threshold = brownout_threshold
        self.brownout_accuracy_step = brownout_accuracy_step
        self.brownout_max_steps = brownout_max_steps
        self.groups = None if groups is None else frozenset(groups)
        self._rng = default_rng(seed)
        self._covered: set[int] = set()
        self._attempts: dict[int, int] = {}
        self.brownout_level = 0
        self.accuracy_relax = 0.0
        self.num_crashes = 0
        self.num_dispatch_failures = 0
        self.num_retries = 0

    # ------------------------------------------------------------- lifecycle
    def reset(self) -> None:
        """Back to the constructor state: same seed, same sampled faults."""
        self._rng = default_rng(self.seed)
        self._covered.clear()
        self._attempts.clear()
        self.brownout_level = 0
        self.accuracy_relax = 0.0
        self.num_crashes = 0
        self.num_dispatch_failures = 0
        self.num_retries = 0

    def covers_group(self, group: str | None) -> bool:
        """Whether a replica group's name falls under the fault processes."""
        if self.groups is None:
            return True
        return group is not None and group in self.groups

    def covers(self, replica_index: int) -> bool:
        return replica_index in self._covered

    # -------------------------------------------------------------- sampling
    def schedule_replica(
        self, replica_index: int, now_ms: float, push: Callable[[Event], None]
    ) -> None:
        """Arm the fault processes for one covered replica.

        Called for every initial replica at run start and for every
        scale-up replica at creation, in replica-index order — the draw
        order is a pure function of the event order, so runs replay
        exactly.  The crash time is one exponential draw (a replica dies
        at most once; its replacement gets its own draw).  Every fault is
        sampled against ``self.horizon_ms`` (the last arrival time, set by
        the engine before scheduling): a fault past the last arrival is
        never scheduled.  This is what terminates the run — without the
        horizon, a crash after the trace ends would provision a
        replacement, whose own crash draw would provision another, forever.
        """
        self._covered.add(replica_index)
        rng = self._rng
        if self.crash_mtbf_ms is not None:
            crash_ms = now_ms + float(rng.exponential(self.crash_mtbf_ms))
            if crash_ms <= self.horizon_ms:
                push(Event(crash_ms, EventKind.FAULT, ("crash", replica_index)))
        if self.straggler_mtbf_ms is not None:
            t = now_ms
            horizon = self.horizon_ms
            while True:
                t += float(rng.exponential(self.straggler_mtbf_ms))
                if t > horizon:
                    break
                duration = float(rng.exponential(self.straggler_duration_ms))
                push(
                    Event(
                        t,
                        EventKind.FAULT,
                        ("straggle", replica_index, self.straggler_factor),
                    )
                )
                push(
                    Event(
                        t + duration,
                        EventKind.RECOVERY,
                        ("straggle_end", replica_index),
                    )
                )
                t += duration

    horizon_ms: float = 0.0
    """Straggle-sampling horizon (the last arrival time); the engine sets
    it at run start, before any :meth:`schedule_replica` call."""

    def dispatch_fails(self) -> bool:
        """One per-pickup Bernoulli draw of the transient-failure process."""
        if self.dispatch_failure_prob <= 0.0:
            return False
        failed = bool(self._rng.random() < self.dispatch_failure_prob)
        if failed:
            self.num_dispatch_failures += 1
        return failed

    # ---------------------------------------------------------------- retry
    def next_retry_ms(self, item: QueuedQuery, now_ms: float) -> float | None:
        """When a lost query should re-enter routing; ``None`` = give up.

        Exponential backoff (``base x multiplier^attempt``) checked against
        the query's remaining deadline slack: a retry that cannot possibly
        complete in time is pointless, so it is refused and the query drops
        with the ``"failed"`` reason.
        """
        attempt = self._attempts.get(item.query.index, 1)
        if attempt >= self.max_attempts:
            return None
        retry_ms = now_ms + self.backoff_base_ms * (
            self.backoff_multiplier ** (attempt - 1)
        )
        if retry_ms >= item.deadline_ms:
            return None
        self._attempts[item.query.index] = attempt + 1
        self.num_retries += 1
        return retry_ms

    # -------------------------------------------------------------- brownout
    def update_brownout(self, num_failed: int, num_routable: int) -> None:
        """Recompute the degradation level from the pool's failure pressure.

        Pressure is the failed fraction of the pool the router can see
        (crashed and not yet replaced).  Below the threshold the ladder is
        at level 0 (no degradation); at the threshold it steps to 1, and
        each further threshold-multiple of pressure steps once more, up to
        ``brownout_max_steps``.  Replacement replicas joining the pool
        lower the pressure, stepping the ladder back down — degradation is
        always proportional to the *current* capacity loss.
        """
        if self.brownout_threshold is None:
            return
        total = num_failed + num_routable
        pressure = num_failed / total if total else 1.0
        if pressure < self.brownout_threshold:
            level = 0
        else:
            level = min(
                self.brownout_max_steps, int(pressure / self.brownout_threshold)
            )
        self.brownout_level = level
        self.accuracy_relax = level * self.brownout_accuracy_step

    def on_crash(self) -> None:
        self.num_crashes += 1
