"""Accelerator replicas: one serving endpoint each, with its own queue.

An :class:`AcceleratorReplica` wraps any per-query server — a
:class:`~repro.serving.stack.SushiStack`, a baseline server, or a
:class:`PrecomputedServer` — behind the engine's dispatch interface.  Each
replica owns a queue discipline, its busy/idle state, and running statistics
(served, dropped, busy time, queueing delay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.core.metrics import QueryRecord
from repro.serving.engine.disciplines import QueueDiscipline, QueuedQuery, make_discipline
from repro.serving.query import Query


@runtime_checkable
class QueryServer(Protocol):
    """Anything that can serve one query at dispatch time."""

    def serve_query(
        self, query: Query, *, effective_latency_constraint_ms: float | None = None
    ) -> QueryRecord: ...


class PrecomputedServer:
    """Replays per-query records computed ahead of time.

    Used by the legacy open-loop mode, where the whole trace is served
    closed-loop first and only the *queueing* is simulated: service times and
    quality are fixed regardless of when each query is dispatched.
    """

    def __init__(self, records: Sequence[QueryRecord]) -> None:
        self._by_index = {r.query_index: r for r in records}
        if len(self._by_index) != len(records):
            raise ValueError("precomputed records contain duplicate query indices")

    def serve_query(
        self, query: Query, *, effective_latency_constraint_ms: float | None = None
    ) -> QueryRecord:
        try:
            return self._by_index[query.index]
        except KeyError as exc:
            raise KeyError(f"no precomputed record for query {query.index}") from exc


def _constraint_estimate(query: Query) -> float:
    """Default service estimate for servers without ``estimate_service_ms``:
    the query's own latency budget (an upper bound on admissible service)."""
    return query.latency_constraint_ms


@dataclass(slots=True)
class ReplicaStats:
    """Running statistics of one replica over a simulation run."""

    replica_index: int
    name: str
    num_served: int = 0
    num_dropped: int = 0
    num_batches: int = 0
    """Dispatch pickups: ``num_served / num_batches`` is the replica's mean
    batch occupancy (1.0 without batching)."""
    busy_ms: float = 0.0
    queueing_ms_total: float = 0.0
    active_ms: float = 0.0
    """Provisioned time: creation until retirement (or end of run).  The
    unit of the replica-seconds cost metric — a replica costs while it
    exists, busy, idle or still cold-starting."""
    cost_weight: float = 1.0
    """Replica-seconds cost weight of the replica's group (1.0 for
    homogeneous pools): ``active_ms x cost_weight`` is what the replica
    charges against a tier-aware cost budget."""

    @property
    def mean_queueing_ms(self) -> float:
        return self.queueing_ms_total / self.num_served if self.num_served else 0.0

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean queries served per dispatch pickup (1.0 without batching)."""
        return self.num_served / self.num_batches if self.num_batches else 0.0

    def utilization(self, makespan_ms: float) -> float:
        """Fraction of the run the replica spent serving."""
        return self.busy_ms / makespan_ms if makespan_ms > 0 else 0.0


@dataclass(slots=True)
class _InService:
    """The batch a replica is currently serving (one query without batching).

    Parallel tuples (member ``i`` of the batch is ``items[i]`` / ``records[i]``
    / ``starts[i]`` / ``services[i]``): under the ``shared_subnet`` batching
    policy every member starts at the pickup time and spans the whole batch
    evaluation; under ``per_query`` members run back to back, so their starts
    are cumulative.  ``slots=True``: one of these lives per in-flight batch.
    """

    items: tuple[QueuedQuery, ...]
    records: tuple[QueryRecord, ...]
    starts: tuple[float, ...]
    services: tuple[float, ...]
    total_ms: float
    """Busy time of the whole pickup (one evaluation under ``shared_subnet``,
    the members' sum under ``per_query``)."""

    @property
    def start_ms(self) -> float:
        """When the batch pickup happened (the first member's start)."""
        return self.starts[0]

    @property
    def size(self) -> int:
        return len(self.items)


class AcceleratorReplica:
    """One accelerator serving endpoint with its own queue and state.

    Parameters
    ----------
    server:
        The per-query serving backend (``serve_query`` interface).
    discipline:
        Queue discipline name or instance (``fifo`` / ``edf`` /
        ``priority_by_slack``).
    index, name:
        Identity of the replica in engine results.  ``index=None`` (the
        default) means *unassigned*: the :class:`ServingEngine` assigns each
        replica its position at construction time.  Passing an explicit
        index pins it — the engine then rejects a mismatch with its position
        rather than silently misattributing per-replica stats.
    service_estimator:
        Maps a query to an estimated service time (ms), used for slack
        ordering and least-loaded routing.  Defaults to the server's own
        ``estimate_service_ms`` when it has one, else the query's latency
        constraint (a conservative proxy).
    max_batch:
        Maximum queries pulled per dispatch pickup.  ``1`` (the default) is
        the classic one-query-at-a-time dispatch, record-identical to the
        pre-batching engine.
    batch_policy:
        ``shared_subnet`` — the whole batch is served with one shared SubNet
        decision and one accelerator evaluation (weight traffic amortized;
        backends need ``serve_dispatch_batch``, others fall back to
        ``per_query``).  ``per_query`` — members keep their own decisions and
        run back to back within the pickup (amortizes only the dispatch
        overhead).
    cost_weight:
        Replica-seconds cost weight (the group's tier price; 1.0 for
        homogeneous pools), recorded on :class:`ReplicaStats` for weighted
        cost accounting.
    """

    def __init__(
        self,
        server: QueryServer,
        *,
        discipline: str | QueueDiscipline = "fifo",
        index: int | None = None,
        name: str | None = None,
        service_estimator: Callable[[Query], float] | None = None,
        max_batch: int = 1,
        batch_policy: str = "shared_subnet",
        cost_weight: float = 1.0,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if batch_policy not in ("shared_subnet", "per_query"):
            raise ValueError(
                f"unknown batch_policy {batch_policy!r}; expected "
                "'shared_subnet' or 'per_query'"
            )
        if cost_weight <= 0:
            raise ValueError(f"cost_weight must be positive, got {cost_weight}")
        self.server = server
        self.max_batch = max_batch
        self.batch_policy = batch_policy
        self.cost_weight = cost_weight
        self.queue = make_discipline(discipline)
        self.index = index
        self._explicit_name = name
        self.name = name or f"replica{index if index is not None else '?'}"
        if service_estimator is None:
            estimate = getattr(server, "estimate_service_ms", None)
            # A module-level default (not a lambda) keeps replicas picklable
            # for the engine's multiprocessing sharded mode.
            service_estimator = (
                estimate if callable(estimate) else _constraint_estimate
            )
        self.service_estimator = service_estimator
        self.busy_until_ms = 0.0
        self.in_service: _InService | None = None
        self._queued_work_ms = 0.0
        self.activated_ms = 0.0
        self.draining = False
        self.provisioning = False
        self.provision_ready_ms: float | None = None
        self.retired_at_ms: float | None = None
        self.failed = False
        self.failed_at_ms: float | None = None
        self.straggle_factor = 1.0
        """Service-time multiplier while a straggle interval is active
        (1.0 = healthy; set and cleared by the fault layer's FAULT/RECOVERY
        events)."""
        self.stats = ReplicaStats(
            replica_index=-1 if index is None else index,
            name=self.name,
            cost_weight=cost_weight,
        )

    def assign_index(self, index: int) -> None:
        """Pin this replica's engine position (called by the engine).

        Updates the default name and the stats identity along with the
        index; an explicitly passed name is preserved.
        """
        self.index = index
        if self._explicit_name is None:
            self.name = f"replica{index}"
        self.stats.replica_index = index
        self.stats.name = self.name

    # ------------------------------------------------------------ queue ops
    def enqueue(self, item: QueuedQuery) -> None:
        self.queue.push(item)
        self._queued_work_ms += item.service_estimate_ms

    def pop_next(self) -> QueuedQuery | None:
        item = self.queue.pop()
        if item is not None:
            self._queued_work_ms -= item.service_estimate_ms
        return item

    def pop_batch(
        self, max_batch: int, *, now_ms: float, admission
    ) -> tuple[list[QueuedQuery], list[QueuedQuery]]:
        """Pull up to ``max_batch`` admissible queries for one dispatch pickup.

        Queries leave the queue in discipline order; each is checked against
        the admission policy at pop time (only then is its actual wait
        known).  Returns ``(admitted, shed)`` — shed queries were popped but
        refused service (their deadline expired), exactly as the one-at-a-time
        dispatch loop would have shed them.  ``max_batch=1`` reproduces the
        pre-batching pop-admit-serve sequence.
        """
        admitted: list[QueuedQuery] = []
        shed: list[QueuedQuery] = []
        admit = admission.admit
        pop = self.pop_next
        while len(admitted) < max_batch:
            item = pop()
            if item is None:
                break
            if admit(item, now_ms):
                admitted.append(item)
            else:
                shed.append(item)
        return admitted, shed

    # ------------------------------------------------------------ load view
    @property
    def is_busy(self) -> bool:
        return self.in_service is not None

    def queue_length(self) -> int:
        """Waiting queries plus the in-service batch (what JSQ compares)."""
        current = self.in_service
        return len(self.queue) + (current.size if current is not None else 0)

    def backlog_ms(self, now_ms: float) -> float:
        """Estimated work in the system: remaining service plus queued work."""
        remaining = max(0.0, self.busy_until_ms - now_ms) if self.is_busy else 0.0
        return remaining + self._queued_work_ms

    # ------------------------------------------------------- scaling lifecycle
    @property
    def is_retired(self) -> bool:
        return self.retired_at_ms is not None

    @property
    def is_routable(self) -> bool:
        """Whether the router may send new arrivals here."""
        return (
            not self.draining
            and not self.is_retired
            and not self.provisioning
            and not self.failed
        )

    def start_provisioning(self, now_ms: float, ready_ms: float) -> None:
        """Begin the cold start: cost accrues now, routing waits for ready.

        Between ``now_ms`` and ``ready_ms`` the replica exists (and is paid
        for) but serves nothing; :meth:`finish_provisioning` hands it to the
        router.  A scale-down during the window cancels it via
        :meth:`retire` — cheapest capacity to shed, it never served.
        """
        self.provisioning = True
        self.provision_ready_ms = ready_ms
        self.activated_ms = now_ms

    def finish_provisioning(self) -> None:
        """The startup delay elapsed: join the routable pool."""
        self.provisioning = False
        self.provision_ready_ms = None

    def start_draining(self) -> None:
        """Stop accepting arrivals; finish the queue, then retire."""
        self.draining = True

    def undrain(self) -> None:
        """Cancel a drain in progress (scale-up reclaims a warm replica)."""
        if self.is_retired:
            raise RuntimeError(f"{self.name} is retired and cannot be reactivated")
        self.draining = False

    def retire(self, now_ms: float) -> None:
        """Leave the pool for good; accrue the final active time.

        Also how a provisioning replica is *cancelled*: retiring before
        ``provision_ready_ms`` charges the cold-start time spent so far and
        leaves the pending hand-over event to find a retired replica.
        """
        if self.is_retired:  # pragma: no cover - engine invariant
            raise RuntimeError(f"{self.name} is already retired")
        self.provisioning = False
        self.provision_ready_ms = None
        self.retired_at_ms = now_ms
        self.stats.active_ms = now_ms - self.activated_ms

    def crash(self, now_ms: float) -> list[QueuedQuery]:
        """The replica dies: every query it held is lost to the caller.

        Returns the lost queries — the in-flight batch first (its pending
        COMPLETION event will find the replica failed and be ignored), then
        the queued backlog in discipline order — for the engine to retry or
        drop.  A crashed replica retires immediately (downtime starts now;
        a draining or provisioning replica that crashes is simply dead, so
        the drain/warm-up is abandoned), which keeps retire-vs-crash races
        deterministic: whichever event processes first wins, the other sees
        a retired replica and stands down.
        """
        lost: list[QueuedQuery] = []
        current = self.in_service
        if current is not None:
            lost.extend(current.items)
            self.in_service = None
        while True:
            item = self.pop_next()
            if item is None:
                break
            lost.append(item)
        self.busy_until_ms = now_ms
        self.failed = True
        self.failed_at_ms = now_ms
        self.straggle_factor = 1.0
        self.draining = False
        if not self.is_retired:
            self.retire(now_ms)
        return lost

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Fresh state for a new run (also resets the wrapped server)."""
        self.queue.clear()
        self._queued_work_ms = 0.0
        self.busy_until_ms = 0.0
        self.in_service = None
        self.activated_ms = 0.0
        self.draining = False
        self.provisioning = False
        self.provision_ready_ms = None
        self.retired_at_ms = None
        self.failed = False
        self.failed_at_ms = None
        self.straggle_factor = 1.0
        self.stats = ReplicaStats(
            replica_index=-1 if self.index is None else self.index,
            name=self.name,
            cost_weight=self.cost_weight,
        )
        reset = getattr(self.server, "reset", None)
        if callable(reset):
            reset()
