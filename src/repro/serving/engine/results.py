"""Engine results: per-query outcomes, drops, and run-level aggregates.

These generalize the original single-server simulator's result types to N
replicas and admission control: an outcome knows which replica served it and
carries the full :class:`~repro.core.metrics.QueryRecord`; a run additionally
accounts for shed queries and exposes offered load, achieved throughput, and
per-replica statistics — the numbers that make overload runs interpretable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import QueryRecord
from repro.serving.autoscale.controller import AutoscaleReport
from repro.serving.autoscale.telemetry import MetricsSnapshot
from repro.serving.engine.replica import ReplicaStats
from repro.serving.obs.recorder import RecordedTrace


@dataclass(frozen=True)
class SimulatedQueryOutcome:  # repro-lint: disable=RPR002 -- _fast_drain stamps outcome.__dict__; slots=True would remove the __dict__ the fast path fills
    """Timing of one served query in the simulation (all in ms)."""

    query_index: int
    arrival_ms: float
    start_ms: float
    service_ms: float
    latency_constraint_ms: float
    served_accuracy: float
    replica_index: int = 0
    record: QueryRecord | None = None
    """The full serving record, when the backend produced one."""
    batch_size: int = 1
    """Size of the dispatch pickup this query was served in (1 when the
    engine runs without batching)."""

    @property
    def completion_ms(self) -> float:
        return self.start_ms + self.service_ms

    @property
    def queueing_ms(self) -> float:
        return self.start_ms - self.arrival_ms

    @property
    def response_ms(self) -> float:
        """Queueing delay plus service time — what the SLO is judged against."""
        return self.completion_ms - self.arrival_ms

    @property
    def meets_slo(self) -> bool:
        return self.response_ms <= self.latency_constraint_ms


@dataclass(frozen=True, slots=True)
class DroppedQuery:
    """A query dropped instead of served.

    ``reason`` says why: ``deadline_expired`` (admission control shed it at
    dispatch), ``failed`` (the fault layer gave up after a crash or
    transient dispatch failure), or ``shed`` (no routable replica existed
    when it arrived).  ``replica_index`` is the replica the drop is charged
    to, or ``-1`` when no replica was involved (a pool-wide shed, or a
    retry that found the pool empty).
    """

    query_index: int
    arrival_ms: float
    dropped_at_ms: float
    latency_constraint_ms: float
    replica_index: int
    reason: str = "deadline_expired"

    @property
    def waited_ms(self) -> float:
        return self.dropped_at_ms - self.arrival_ms


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Aggregate outcome of one simulation run.

    ``slo_attainment`` counts dropped queries as SLO violations, so the
    denominator is everything that was *offered*, not just what was served;
    the response-time statistics describe served queries only.
    """

    outcomes: tuple[SimulatedQueryOutcome, ...]
    offered_load: float
    """Mean arrival rate x mean service time / replicas (rho); > 1 is overload.

    The mean service time is estimated from the queries actually *served*,
    so under admission shedding or dispatch-time adaptation (which steer
    overloaded runs toward faster SubNets) this understates the nominal
    demand — compare cells together with ``drop_rate`` and
    ``achieved_throughput_per_ms`` when reading overload sweeps.
    """
    dropped: tuple[DroppedQuery, ...] = ()
    replica_stats: tuple[ReplicaStats, ...] = ()
    achieved_throughput_per_ms: float = 0.0
    """Served queries per ms of makespan (the goodput actually delivered)."""
    duration_ms: float = 0.0
    """Simulated run length (time of the last processed event)."""
    autoscale: AutoscaleReport | None = None
    """Control-plane summary when the run was autoscaled (None otherwise)."""
    trace: RecordedTrace | None = None
    """Flight-recorder trace when the run was observed (None otherwise)."""
    metrics: tuple[MetricsSnapshot, ...] = ()
    """Per-control-tick telemetry snapshots when ``ObservabilitySpec``
    asked to keep them (empty otherwise)."""
    num_crashes: int = 0
    """Replica crashes injected during the run (0 without fault injection)."""

    @property
    def num_served(self) -> int:
        return len(self.outcomes)

    @property
    def num_dropped(self) -> int:
        return len(self.dropped)

    @property
    def drop_reasons(self) -> dict[str, int]:
        """Dropped-query counts keyed by drop reason.

        ``deadline_expired`` is admission shedding; ``failed`` is the fault
        layer giving up on a query (retry budget or deadline slack
        exhausted); ``shed`` is an arrival that found no routable replica.
        """
        counts: dict[str, int] = {}
        for d in self.dropped:
            counts[d.reason] = counts.get(d.reason, 0) + 1
        return counts

    @property
    def num_offered(self) -> int:
        return self.num_served + self.num_dropped

    @property
    def drop_rate(self) -> float:
        return self.num_dropped / self.num_offered if self.num_offered else 0.0

    @property
    def slo_attainment(self) -> float:
        if not self.num_offered:
            return 0.0
        met = sum(o.meets_slo for o in self.outcomes)
        return met / self.num_offered

    @property
    def mean_response_ms(self) -> float:
        if not self.outcomes:
            return 0.0
        return float(np.mean([o.response_ms for o in self.outcomes]))

    @property
    def p99_response_ms(self) -> float:
        if not self.outcomes:
            return 0.0
        return float(np.percentile([o.response_ms for o in self.outcomes], 99))

    @property
    def mean_queueing_ms(self) -> float:
        if not self.outcomes:
            return 0.0
        return float(np.mean([o.queueing_ms for o in self.outcomes]))

    @property
    def goodput_per_ms(self) -> float:
        """Queries served *within their SLO* per ms of run — what batched
        dispatch trades per-query latency for."""
        if self.duration_ms <= 0:
            return 0.0
        return sum(o.meets_slo for o in self.outcomes) / self.duration_ms

    @property
    def num_batches(self) -> int:
        """Dispatch pickups across the run (each served 1..B queries)."""
        # Each pickup of size b contributes b outcomes of batch_size b, so
        # the 1/b shares sum back to one per pickup.
        if not self.outcomes:
            return 0
        return round(sum(1.0 / o.batch_size for o in self.outcomes))

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean queries served per dispatch pickup (1.0 without batching)."""
        batches = self.num_batches
        return self.num_served / batches if batches else 0.0

    @property
    def mean_accuracy(self) -> float:
        if not self.outcomes:
            return 0.0
        return float(np.mean([o.served_accuracy for o in self.outcomes]))

    # ------------------------------------------------------------------ cost
    @property
    def total_replica_active_ms(self) -> float:
        """Summed provisioned time across replicas — the run's capacity cost.

        For a static pool this is ``num_replicas x duration``; under
        autoscaling each replica accrues only between its activation and
        retirement, so bursty traffic served by an elastic pool costs less
        than the static pool sized for its peak.
        """
        return float(sum(s.active_ms for s in self.replica_stats))

    @property
    def replica_seconds(self) -> float:
        """The cost metric of the SLO-vs-cost frontier, in replica-seconds."""
        return self.total_replica_active_ms / 1000.0

    @property
    def weighted_replica_seconds(self) -> float:
        """Replica-seconds weighted by each replica's tier cost weight.

        Heterogeneous pools price tiers differently (a large-PB replica
        costs more per second than a small-PB one); this is the cost the
        tier-aware autoscaler budgets against.  Equal to
        :attr:`replica_seconds` when every weight is 1.0.
        """
        return (
            sum(s.active_ms * s.cost_weight for s in self.replica_stats) / 1000.0
        )

    @property
    def mean_active_replicas(self) -> float:
        """Time-weighted mean pool size over the run."""
        if self.duration_ms <= 0:
            return float(len(self.replica_stats))
        return self.total_replica_active_ms / self.duration_ms

    @property
    def records(self) -> tuple[QueryRecord, ...]:
        """Serving records of the served queries, in query-index order."""
        return tuple(o.record for o in self.outcomes if o.record is not None)
