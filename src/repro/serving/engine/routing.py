"""Routing policies: which replica an arriving query joins.

* ``round_robin`` — cycle through replicas regardless of state.
* ``jsq`` (join shortest queue) — join the replica with the fewest queries
  in its system (waiting plus in-service); an idle replica always wins, so
  JSQ never queues a query while some replica sits idle.
* ``least_loaded`` — join the replica with the smallest estimated backlog in
  milliseconds (remaining service plus queued work), which beats JSQ when
  service times are heterogeneous.
* ``fastest_expected`` — join the replica with the smallest *expected finish
  time* for this query: backlog plus the query's expected service time on
  that replica, read from its group's latency table at its current cache
  state.  The only router that sees that a small-PB replica serves this
  query slower than a large-PB one, or that a replica's cached SubGraph
  happens to cover the SubNet the query needs.

All ties resolve to the lowest replica index, keeping runs deterministic.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.serving.engine.disciplines import QueuedQuery
from repro.serving.engine.replica import AcceleratorReplica


class RoutingPolicy(abc.ABC):
    """Pick the replica an arriving query is routed to."""

    name: str
    needs_service_estimates: bool = False
    """True when routing reads queued-work estimates (engine computes them
    lazily — estimating costs a latency-table lookup per arrival)."""

    @abc.abstractmethod
    def select(
        self,
        replicas: Sequence[AcceleratorReplica],
        item: QueuedQuery,
        now_ms: float,
    ) -> int:
        """Index of the chosen replica."""

    def reset(self) -> None:
        """Clear any routing state between runs."""


class RoundRobinRouter(RoutingPolicy):
    """Cycle through replicas in order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def select(
        self,
        replicas: Sequence[AcceleratorReplica],
        item: QueuedQuery,
        now_ms: float,
    ) -> int:
        idx = self._next % len(replicas)
        self._next += 1
        return idx

    def reset(self) -> None:
        self._next = 0


class JoinShortestQueueRouter(RoutingPolicy):
    """Join the replica with the fewest queries in its system."""

    name = "jsq"

    def select(
        self,
        replicas: Sequence[AcceleratorReplica],
        item: QueuedQuery,
        now_ms: float,
    ) -> int:
        return min(range(len(replicas)), key=lambda i: (replicas[i].queue_length(), i))


class LeastLoadedRouter(RoutingPolicy):
    """Join the replica with the smallest estimated backlog (ms of work)."""

    name = "least_loaded"
    needs_service_estimates = True

    def select(
        self,
        replicas: Sequence[AcceleratorReplica],
        item: QueuedQuery,
        now_ms: float,
    ) -> int:
        return min(
            range(len(replicas)), key=lambda i: (replicas[i].backlog_ms(now_ms), i)
        )


class FastestExpectedRouter(RoutingPolicy):
    """Join the replica expected to *finish* this query soonest.

    The score per replica is its backlog (remaining service plus queued
    work) plus the arriving query's expected service time there, via the
    replica's service estimator — for SUSHI backends a lookup in the
    group's latency table at the replica's current cache state.  This is
    the latency-table-aware router: on heterogeneous pools it sends tight
    queries to the tier that can actually serve them fast, and among equals
    it prefers the replica whose cache already covers the query.
    """

    name = "fastest_expected"
    needs_service_estimates = True

    def select(
        self,
        replicas: Sequence[AcceleratorReplica],
        item: QueuedQuery,
        now_ms: float,
    ) -> int:
        def finish_ms(i: int) -> float:
            replica = replicas[i]
            return replica.backlog_ms(now_ms) + float(
                replica.service_estimator(item.query)
            )

        return min(range(len(replicas)), key=lambda i: (finish_ms(i), i))


_ROUTERS = {
    RoundRobinRouter.name: RoundRobinRouter,
    JoinShortestQueueRouter.name: JoinShortestQueueRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    FastestExpectedRouter.name: FastestExpectedRouter,
}

#: Names of the registered routing policies.
ROUTER_NAMES: tuple[str, ...] = tuple(sorted(_ROUTERS))


def make_router(spec: str | RoutingPolicy) -> RoutingPolicy:
    """Build a routing policy from a name, or pass an instance through."""
    if isinstance(spec, RoutingPolicy):
        return spec
    try:
        return _ROUTERS[spec]()
    except KeyError as exc:
        raise ValueError(
            f"unknown routing policy {spec!r}; available: {sorted(_ROUTERS)}"
        ) from exc
