"""Opt-in flight recorder for the serving engine (zero overhead when off).

``repro.serving.obs`` records per-query lifecycle spans, replica busy /
PROVISIONING timelines, and autoscaler decision explanations, and exports
them as Chrome trace-event JSON (Perfetto-loadable), metrics timeseries
(CSV/JSON), or a text summary.  Enabled declaratively via
``ObservabilitySpec`` on a scenario or ``repro serve --trace``.
"""

from repro.serving.obs.exporters import (
    chrome_trace,
    metrics_rows,
    snapshot_rows,
    summarize_chrome_trace,
    summarize_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.serving.obs.recorder import (
    DecisionRecord,
    FaultEvent,
    ProvisioningSegment,
    QuerySpan,
    RecordedTrace,
    ReplicaTimeline,
    TraceRecorder,
)

__all__ = [
    "DecisionRecord",
    "FaultEvent",
    "ProvisioningSegment",
    "QuerySpan",
    "RecordedTrace",
    "ReplicaTimeline",
    "TraceRecorder",
    "chrome_trace",
    "metrics_rows",
    "snapshot_rows",
    "summarize_chrome_trace",
    "summarize_trace",
    "write_chrome_trace",
    "write_metrics",
]
