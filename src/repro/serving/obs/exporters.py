"""Render a :class:`RecordedTrace` for external tools.

Three formats:

* :func:`chrome_trace` — Chrome trace-event JSON (the ``traceEvents``
  array format) loadable in Perfetto / ``chrome://tracing``: one track
  (thread) per replica carrying service and PROVISIONING intervals, one
  async span per query, one instant event per scaling action with its
  control-tick decision explanation attached as args, and (for
  fault-injected runs) a ``faults`` track of crash / straggle /
  dispatch-failure instants.
* :func:`metrics_rows` / :func:`snapshot_rows` — a metrics timeseries
  (queue depth, utilization, drop rate, batch occupancy) as rows of
  plain dicts, written as CSV or JSON by :func:`write_metrics`.
* :func:`summarize_trace` / :func:`summarize_chrome_trace` — a compact
  text summary for humans (``repro trace summarize``).

Trace-event timestamps (``ts``/``dur``) are microseconds per the format
spec; the recorder's millisecond clock is scaled by 1000 on export.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import asdict
from typing import Any, Mapping, Sequence

from repro.serving.obs.recorder import RecordedTrace

_US_PER_MS = 1000.0
_PID = 0


def _decision_args(decision: Any) -> dict[str, Any]:
    # asdict recurses: the attached MetricsSnapshot (a dataclass) becomes
    # a plain JSON-safe dict alongside the stage-by-stage desired sizes.
    return asdict(decision)


def chrome_trace(trace: RecordedTrace) -> dict[str, Any]:
    """The run as a Chrome trace-event JSON object (``traceEvents`` format)."""
    meta: list[dict[str, Any]] = [
        {
            "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
            "args": {"name": "serving-engine"},
        }
    ]
    events: list[dict[str, Any]] = []
    control_tid = 1 + max(
        (r.replica_index for r in trace.replicas), default=-1
    )
    for replica in trace.replicas:
        meta.append(
            {
                "ph": "M", "pid": _PID, "tid": replica.replica_index,
                "name": "thread_name",
                "args": {
                    "name": f"replica {replica.replica_index} ({replica.name})"
                },
            }
        )
    meta.append(
        {
            "ph": "M", "pid": _PID, "tid": control_tid,
            "name": "thread_name", "args": {"name": "autoscaler"},
        }
    )
    fault_tid = control_tid + 1
    if trace.faults:
        meta.append(
            {
                "ph": "M", "pid": _PID, "tid": fault_tid,
                "name": "thread_name", "args": {"name": "faults"},
            }
        )
    for span in trace.spans:
        args = {
            "status": span.status,
            "deadline_slack_ms": span.deadline_slack_ms,
            "latency_constraint_ms": span.latency_constraint_ms,
            "batch_size": span.batch_size,
        }
        if span.subnet_name is not None:
            args["subnet"] = span.subnet_name
        if span.drop_reason is not None:
            args["drop_reason"] = span.drop_reason
        common = {
            "cat": "query",
            "id": span.query_index,
            "pid": _PID,
            "tid": span.replica_index,
            "name": f"query-{span.query_index}",
        }
        events.append(
            {**common, "ph": "b", "ts": span.arrival_ms * _US_PER_MS, "args": args}
        )
        events.append(
            {**common, "ph": "e", "ts": span.completion_ms * _US_PER_MS, "args": {}}
        )
        if span.status == "served" and span.start_ms is not None:
            events.append(
                {
                    "ph": "X", "cat": "service",
                    "name": span.subnet_name or "service",
                    "pid": _PID, "tid": span.replica_index,
                    "ts": span.start_ms * _US_PER_MS,
                    "dur": (span.completion_ms - span.start_ms) * _US_PER_MS,
                    "args": {"query_index": span.query_index,
                             "batch_size": span.batch_size},
                }
            )
    for seg in trace.provisioning:
        events.append(
            {
                "ph": "X", "cat": "lifecycle", "name": "PROVISIONING",
                "pid": _PID, "tid": seg.replica_index,
                "ts": seg.start_ms * _US_PER_MS,
                "dur": (seg.end_ms - seg.start_ms) * _US_PER_MS,
                "args": {"cancelled": seg.cancelled_ms is not None},
            }
        )
    decisions = {(d.time_ms, d.group): d for d in trace.decisions}
    for event in trace.scaling_events:
        args = {
            "group": event.group,
            "from_replicas": event.from_replicas,
            "to_replicas": event.to_replicas,
            "reason": event.reason,
        }
        decision = decisions.get((event.time_ms, event.group))
        if decision is not None:
            args["decision"] = _decision_args(decision)
        events.append(
            {
                "ph": "i", "s": "g", "cat": "autoscaler",
                "name": f"{event.action} {event.group or 'pool'} "
                        f"{event.from_replicas}->{event.to_replicas}",
                "pid": _PID, "tid": control_tid,
                "ts": event.time_ms * _US_PER_MS,
                "args": args,
            }
        )
    for fault in trace.faults:
        fault_args: dict[str, Any] = {"replica_index": fault.replica_index}
        if fault.detail is not None:
            fault_args["detail"] = fault.detail
        events.append(
            {
                "ph": "i", "s": "g", "cat": "fault",
                "name": f"{fault.kind} replica {fault.replica_index}",
                "pid": _PID, "tid": fault_tid,
                "ts": fault.time_ms * _US_PER_MS,
                "args": fault_args,
            }
        )
    events.sort(key=lambda e: (e["ts"], e["tid"]))
    return {"displayTimeUnit": "ms", "traceEvents": meta + events}


def write_chrome_trace(path: str, trace: RecordedTrace) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(trace), handle, indent=1)
        handle.write("\n")


# ------------------------------------------------------------------ metrics
def metrics_rows(
    trace: RecordedTrace, *, interval_ms: float | None = None
) -> list[dict[str, float]]:
    """Timeseries rows sampled from the trace on a fixed interval.

    Each row covers the half-open window ``(time_ms - interval, time_ms]``:
    arrival rate, end-of-window queue depth (arrived but not yet dispatched
    or dropped), busy-time utilization over live replicas, drop rate among
    resolutions, and mean batch occupancy of the window's pickups.
    """
    duration = trace.duration_ms
    if duration <= 0 or not trace.spans:
        return []
    if interval_ms is None:
        interval_ms = duration / 100.0
    num_buckets = max(1, math.ceil(duration / interval_ms - 1e-9))
    arrivals = [0] * num_buckets
    drops = [0] * num_buckets
    pickups = [0.0] * num_buckets
    dispatched = [0] * num_buckets
    busy = [0.0] * num_buckets

    def bucket_of(t: float) -> int:
        return min(num_buckets - 1, max(0, math.ceil(t / interval_ms) - 1))

    for span in trace.spans:
        arrivals[bucket_of(span.arrival_ms)] += 1
        if span.status == "dropped":
            drops[bucket_of(span.completion_ms)] += 1
        elif span.start_ms is not None:
            b = bucket_of(span.start_ms)
            dispatched[b] += 1
            pickups[b] += 1.0 / span.batch_size
            # Spread the service interval's busy time across the buckets
            # it overlaps (each batch member contributes its 1/B share so
            # a full pickup counts once).
            share = 1.0 / span.batch_size
            lo, hi = span.start_ms, span.completion_ms
            for b in range(bucket_of(lo), bucket_of(max(lo, hi - 1e-12)) + 1):
                w_lo, w_hi = b * interval_ms, (b + 1) * interval_ms
                busy[b] += share * max(0.0, min(hi, w_hi) - max(lo, w_lo))

    rows: list[dict[str, float]] = []
    cum_arrived = cum_resolved = 0
    resolutions = sorted(
        (s.completion_ms if s.status == "dropped" else s.start_ms, 1)
        for s in trace.spans
        if s.status == "dropped" or s.start_ms is not None
    )
    arrival_times = sorted(s.arrival_ms for s in trace.spans)
    a_idx = r_idx = 0
    for b in range(num_buckets):
        t_end = min(duration, (b + 1) * interval_ms)
        while a_idx < len(arrival_times) and arrival_times[a_idx] <= t_end:
            cum_arrived += 1
            a_idx += 1
        while r_idx < len(resolutions) and resolutions[r_idx][0] <= t_end:
            cum_resolved += 1
            r_idx += 1
        live = sum(
            1
            for r in trace.replicas
            if r.created_ms <= t_end
            and (r.retired_ms is None or r.retired_ms > t_end - interval_ms)
        )
        window = min(interval_ms, t_end - b * interval_ms) or interval_ms
        resolved = dispatched[b] + drops[b]
        rows.append(
            {
                "time_ms": t_end,
                "queue_depth": float(cum_arrived - cum_resolved),
                "arrival_rate_per_ms": arrivals[b] / window,
                "utilization": (
                    busy[b] / (window * live) if live else 0.0
                ),
                "drop_rate": drops[b] / resolved if resolved else 0.0,
                "batch_occupancy": (
                    dispatched[b] / pickups[b] if pickups[b] else 0.0
                ),
            }
        )
    return rows


def snapshot_rows(snapshots: Sequence[Any]) -> list[dict[str, float]]:
    """The autoscaler's :class:`MetricsSnapshot` history as timeseries rows."""
    return [asdict(s) for s in snapshots]


def write_metrics(path: str, rows: Sequence[Mapping[str, float]]) -> None:
    """Write timeseries rows as CSV (``.csv`` path) or JSON (otherwise)."""
    if str(path).endswith(".csv"):
        with open(path, "w", encoding="utf-8", newline="") as handle:
            if rows:
                writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
                writer.writeheader()
                writer.writerows(rows)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(list(rows), handle, indent=1)
            handle.write("\n")


# ------------------------------------------------------------------ summary
def summarize_trace(trace: RecordedTrace) -> str:
    """A human-readable text summary of a recorded run."""
    lines = [
        f"duration: {trace.duration_ms:.1f} ms",
        f"queries: {len(trace.spans)} offered, "
        f"{trace.num_served} served, {trace.num_dropped} dropped",
        f"replicas: {len(trace.replicas)} "
        f"({sum(1 for r in trace.replicas if r.retired_ms is None)} live at end)",
    ]
    if trace.provisioning:
        cancelled = sum(1 for p in trace.provisioning if p.cancelled_ms is not None)
        lines.append(
            f"provisioning segments: {len(trace.provisioning)} "
            f"({cancelled} cancelled)"
        )
    by_reason: dict[str, int] = {}
    for span in trace.spans:
        if span.status == "dropped":
            reason = span.drop_reason or "deadline_expired"
            by_reason[reason] = by_reason.get(reason, 0) + 1
    if by_reason:
        reasons = ", ".join(f"{k}={v}" for k, v in sorted(by_reason.items()))
        lines.append(f"drops by reason: {reasons}")
    if trace.scaling_events:
        by_action: dict[str, int] = {}
        for event in trace.scaling_events:
            by_action[event.action] = by_action.get(event.action, 0) + 1
        actions = ", ".join(f"{k}={v}" for k, v in sorted(by_action.items()))
        lines.append(f"scaling events: {len(trace.scaling_events)} ({actions})")
    if trace.decisions:
        lines.append(f"control decisions: {len(trace.decisions)}")
    if trace.faults:
        by_kind: dict[str, int] = {}
        for fault in trace.faults:
            by_kind[fault.kind] = by_kind.get(fault.kind, 0) + 1
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
        lines.append(f"faults: {len(trace.faults)} ({kinds})")
        # Crashed replicas never recover, so downtime runs to the end of
        # the trace (replacements are new replicas, not the crashed one).
        for fault in trace.faults:
            if fault.kind == "crash":
                down = max(0.0, trace.duration_ms - fault.time_ms)
                lines.append(
                    f"  replica {fault.replica_index}: crashed at "
                    f"{fault.time_ms:.1f} ms ({down:.1f} ms down)"
                )
    return "\n".join(lines)


def summarize_chrome_trace(payload: Mapping[str, Any]) -> str:
    """Summarize an exported Chrome trace JSON (``repro trace summarize``)."""
    events = payload.get("traceEvents", [])
    tracks = sorted(
        e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    )
    opens = [e for e in events if e.get("ph") == "b"]
    drops = sum(
        1 for e in opens if e.get("args", {}).get("status") == "dropped"
    )
    instants = [
        e for e in events if e.get("ph") == "i" and e.get("cat") != "fault"
    ]
    faults = [
        e for e in events if e.get("ph") == "i" and e.get("cat") == "fault"
    ]
    timestamps = [e["ts"] for e in events if "ts" in e and e.get("ph") != "M"]
    span_ms = (max(timestamps) - min(timestamps)) / _US_PER_MS if timestamps else 0.0
    end_ms = max(timestamps) / _US_PER_MS if timestamps else 0.0
    lines = [
        f"events: {len(events)} over {span_ms:.1f} ms",
        f"tracks: {len(tracks)}",
        *(f"  - {name}" for name in tracks),
        f"query spans: {len(opens)} ({drops} dropped)",
    ]
    by_reason: dict[str, int] = {}
    for e in opens:
        args = e.get("args", {})
        if args.get("status") == "dropped":
            reason = args.get("drop_reason", "deadline_expired")
            by_reason[reason] = by_reason.get(reason, 0) + 1
    if by_reason:
        reasons = ", ".join(f"{k}={v}" for k, v in sorted(by_reason.items()))
        lines.append(f"drops by reason: {reasons}")
    lines.append(f"scaling instants: {len(instants)}")
    for e in instants:
        lines.append(f"  - {e['ts'] / _US_PER_MS:.1f} ms: {e['name']}")
    if faults:
        lines.append(f"fault instants: {len(faults)}")
        for e in faults:
            t_ms = e["ts"] / _US_PER_MS
            line = f"  - {t_ms:.1f} ms: {e['name']}"
            if str(e.get("name", "")).startswith("crash "):
                line += f" ({max(0.0, end_ms - t_ms):.1f} ms down)"
            lines.append(line)
    return "\n".join(lines)
