"""Flight recorder: per-query spans, replica timelines, control decisions.

:class:`TraceRecorder` is the opt-in observability hook the serving engine
and the autoscale controller feed while a run executes.  It is deliberately
duck-typed against the engine's result objects (outcomes, drops) so this
package imports nothing from ``repro.serving.engine`` — the engine can
attach a recorder without creating an import cycle, and every hook site in
the hot loops stays a single ``recorder is not None`` check: with no
recorder attached the engine's behaviour and records are bit-identical to
a build without this package.

The recorder accumulates raw events during the run; :meth:`TraceRecorder.finish`
freezes them into a :class:`RecordedTrace` of derived, immutable spans and
timelines.  Every timestamp is simulated milliseconds from the engine's
clock — never wall-clock — so traces are deterministic and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True, slots=True)
class QuerySpan:
    """Lifecycle of one offered query: arrival -> queued -> served/dropped."""

    query_index: int
    arrival_ms: float
    start_ms: float | None
    """Dispatch time (None for queries dropped before dispatch)."""
    completion_ms: float
    """Service completion for served queries, drop time for dropped ones."""
    replica_index: int
    latency_constraint_ms: float
    deadline_slack_ms: float
    """Constraint minus response time; negative means the deadline was
    missed (always negative for deadline-expired drops)."""
    batch_size: int
    """Dispatch pickup size the query was served in (0 for drops)."""
    subnet_name: str | None
    """SubNet the stack chose, when the backend produced a record."""
    status: str
    """``served`` or ``dropped``."""
    drop_reason: str | None = None

    @property
    def queueing_ms(self) -> float:
        end = self.completion_ms if self.start_ms is None else self.start_ms
        return end - self.arrival_ms

    @property
    def response_ms(self) -> float:
        return self.completion_ms - self.arrival_ms


@dataclass(frozen=True, slots=True)
class ProvisioningSegment:
    """One PROVISIONING interval of a scale-up replica."""

    replica_index: int
    start_ms: float
    ready_ms: float
    """Scheduled readiness time (cold start complete)."""
    cancelled_ms: float | None = None
    """Set when a scale-down reclaimed the replica before it went ready."""

    @property
    def end_ms(self) -> float:
        return self.ready_ms if self.cancelled_ms is None else self.cancelled_ms


@dataclass(frozen=True, slots=True)
class ReplicaTimeline:
    """Creation-to-retirement lifetime of one replica."""

    replica_index: int
    name: str
    created_ms: float
    retired_ms: float | None = None
    """None when the replica was still live at the end of the run."""


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """Why one control tick did what it did, for one scaled group.

    The desired-size pipeline is recorded stage by stage: what the policy
    asked for raw (``policy_desired``), after the min/max clamp
    (``clamped_desired``), after the cost-budget trim (``budget_desired``),
    and what survived cooldowns (``final_desired``).  ``snapshot`` is the
    :class:`~repro.serving.autoscale.telemetry.MetricsSnapshot` the policy
    saw — the full inputs of the decision.
    """

    time_ms: float
    group: str | None
    policy: str
    reason: str
    num_active: int
    num_provisioning: int
    num_draining: int
    queue_depth: int
    policy_desired: int
    clamped_desired: int
    budget_desired: int
    final_desired: int
    action: str
    """``scale_up`` / ``scale_down`` / ``held`` (cooldown) / ``hold``."""
    snapshot: Any = None


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One injected fault (or recovery) the fault layer reported.

    ``kind`` is ``crash`` (replica died; it never serves again),
    ``straggle`` / ``straggle_end`` (a slow interval opened / closed;
    ``detail`` carries the service-time multiplier on ``straggle``), or
    ``dispatch_failure`` (one pickup errored transiently).
    """

    time_ms: float
    kind: str
    replica_index: int
    detail: float | None = None


@dataclass(frozen=True, slots=True)
class RecordedTrace:
    """Everything the flight recorder saw during one run, frozen."""

    spans: tuple[QuerySpan, ...]
    """Per-query lifecycle spans, sorted by query index."""
    replicas: tuple[ReplicaTimeline, ...]
    provisioning: tuple[ProvisioningSegment, ...]
    decisions: tuple[DecisionRecord, ...]
    scaling_events: tuple[Any, ...]
    """The controller's :class:`ScalingEvent` log (duck-typed)."""
    duration_ms: float
    faults: tuple[FaultEvent, ...] = ()
    """Injected faults in event order (empty without fault injection)."""

    @property
    def num_served(self) -> int:
        return sum(1 for s in self.spans if s.status == "served")

    @property
    def num_dropped(self) -> int:
        return sum(1 for s in self.spans if s.status == "dropped")


class TraceRecorder:
    """Mutable sink the engine and controller feed during a traced run.

    Hook methods are grouped by caller:

    * engine data plane: :meth:`on_served`, :meth:`on_dropped`
    * engine fault plane: :meth:`on_fault`
    * engine control plane: :meth:`on_replica_created`,
      :meth:`on_provisioning`, :meth:`on_provisioning_cancelled`,
      :meth:`on_replica_retired`
    * autoscale controller: :meth:`on_decision`

    A recorder records the engine's most recent run: :meth:`begin_run`
    clears any prior state and registers the starting pool.
    """

    def __init__(self) -> None:
        self._served: list[Any] = []
        self._dropped: list[Any] = []
        self._replicas: dict[int, dict[str, Any]] = {}
        self._provisioning: list[dict[str, Any]] = []
        self._decisions: list[DecisionRecord] = []
        self._faults: list[FaultEvent] = []

    # ------------------------------------------------------------- lifecycle
    def reset(self) -> None:
        self._served.clear()
        self._dropped.clear()
        self._replicas.clear()
        self._provisioning.clear()
        self._decisions.clear()
        self._faults.clear()

    def begin_run(self, replicas: Iterable[tuple[int, str]]) -> None:
        """Start recording a run whose initial pool is ``(index, name)``s."""
        self.reset()
        for index, name in replicas:
            self._replicas[index] = {
                "name": name, "created_ms": 0.0, "retired_ms": None,
            }

    # ------------------------------------------------------------ data plane
    def on_served(self, outcome: Any) -> None:
        """Record a completed query (a ``SimulatedQueryOutcome``)."""
        self._served.append(outcome)

    def on_dropped(self, drop: Any) -> None:
        """Record a shed query (a ``DroppedQuery``)."""
        self._dropped.append(drop)

    # ------------------------------------------------------------ fault plane
    def on_fault(
        self,
        time_ms: float,
        kind: str,
        replica_index: int,
        detail: float | None = None,
    ) -> None:
        """Record one injected fault / recovery (the fault layer's feed)."""
        self._faults.append(FaultEvent(time_ms, kind, replica_index, detail))

    # --------------------------------------------------------- control plane
    def on_replica_created(self, index: int, name: str, now_ms: float) -> None:
        self._replicas[index] = {
            "name": name, "created_ms": now_ms, "retired_ms": None,
        }

    def on_provisioning(self, index: int, start_ms: float, ready_ms: float) -> None:
        self._provisioning.append(
            {"index": index, "start_ms": start_ms,
             "ready_ms": ready_ms, "cancelled_ms": None}
        )

    def on_provisioning_cancelled(self, index: int, now_ms: float) -> None:
        # A replica provisions at most once per lifetime; scan from the
        # newest segment (reclaim cancels the most recent provision).
        for seg in reversed(self._provisioning):
            if seg["index"] == index and seg["cancelled_ms"] is None:
                seg["cancelled_ms"] = now_ms
                return

    def on_replica_retired(self, index: int, now_ms: float) -> None:
        entry = self._replicas.get(index)
        if entry is not None:
            entry["retired_ms"] = now_ms

    def on_decision(self, **kwargs: Any) -> None:
        """Record one per-group control-tick explanation (controller hook).

        Keyword-only so the controller never imports :class:`DecisionRecord`
        (which would cycle through this package's typing imports).
        """
        self._decisions.append(DecisionRecord(**kwargs))

    # ---------------------------------------------------------------- finish
    def finish(
        self, *, duration_ms: float, scaling_events: Iterable[Any] = ()
    ) -> RecordedTrace:
        """Freeze the recorded run into an immutable :class:`RecordedTrace`."""
        spans: list[QuerySpan] = []
        for o in self._served:
            completion = o.start_ms + o.service_ms
            spans.append(
                QuerySpan(
                    query_index=o.query_index,
                    arrival_ms=o.arrival_ms,
                    start_ms=o.start_ms,
                    completion_ms=completion,
                    replica_index=o.replica_index,
                    latency_constraint_ms=o.latency_constraint_ms,
                    deadline_slack_ms=(
                        o.latency_constraint_ms - (completion - o.arrival_ms)
                    ),
                    batch_size=o.batch_size,
                    subnet_name=getattr(o.record, "subnet_name", None),
                    status="served",
                )
            )
        for d in self._dropped:
            spans.append(
                QuerySpan(
                    query_index=d.query_index,
                    arrival_ms=d.arrival_ms,
                    start_ms=None,
                    completion_ms=d.dropped_at_ms,
                    replica_index=d.replica_index,
                    latency_constraint_ms=d.latency_constraint_ms,
                    deadline_slack_ms=(
                        d.latency_constraint_ms - (d.dropped_at_ms - d.arrival_ms)
                    ),
                    batch_size=0,
                    subnet_name=None,
                    status="dropped",
                    drop_reason=d.reason,
                )
            )
        spans.sort(key=lambda s: s.query_index)
        replicas = tuple(
            ReplicaTimeline(
                replica_index=index,
                name=entry["name"],
                created_ms=entry["created_ms"],
                retired_ms=entry["retired_ms"],
            )
            for index, entry in sorted(self._replicas.items())
        )
        provisioning = tuple(
            ProvisioningSegment(
                replica_index=seg["index"],
                start_ms=seg["start_ms"],
                ready_ms=seg["ready_ms"],
                cancelled_ms=seg["cancelled_ms"],
            )
            for seg in self._provisioning
        )
        return RecordedTrace(
            spans=tuple(spans),
            replicas=replicas,
            provisioning=provisioning,
            decisions=tuple(self._decisions),
            scaling_events=tuple(scaling_events),
            duration_ms=float(duration_ms),
            faults=tuple(self._faults),
        )
