"""Queries and query traces.

Each inference query arrives annotated with an (accuracy, latency) constraint
pair ``(A_t, L_t)`` — the interface the whole paper assumes.  A
:class:`QueryTrace` is an ordered stream of such queries, optionally with
arrival times for open-loop experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence


@dataclass(frozen=True)
class Query:
    """One inference query with its service constraints.

    Attributes
    ----------
    index:
        Position in the stream.
    accuracy_constraint:
        Minimum acceptable top-1 accuracy, as a fraction (e.g. ``0.78``).
    latency_constraint_ms:
        Maximum acceptable serving latency in milliseconds.
    arrival_ms:
        Arrival timestamp (0 for closed-loop streams).
    """

    index: int
    accuracy_constraint: float
    latency_constraint_ms: float
    arrival_ms: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 < self.accuracy_constraint < 1.0):
            raise ValueError(
                f"query {self.index}: accuracy constraint must be in (0, 1), "
                f"got {self.accuracy_constraint}"
            )
        if self.latency_constraint_ms <= 0:
            raise ValueError(
                f"query {self.index}: latency constraint must be positive, "
                f"got {self.latency_constraint_ms}"
            )
        if self.arrival_ms < 0:
            raise ValueError(f"query {self.index}: arrival time must be >= 0")

    def latency_budget_ms(self, override: float | None = None) -> float:
        """The latency budget a scheduler should plan against.

        ``override`` is the *effective* (remaining) budget once queueing
        delay is known — dispatch-time servers pass it through; ``None``
        means the nominal constraint applies.
        """
        return self.latency_constraint_ms if override is None else override


@dataclass(frozen=True)
class QueryTrace:
    """An ordered stream of queries."""

    queries: tuple[Query, ...]
    name: str = "trace"

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError("a query trace needs at least one query")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __getitem__(self, idx: int) -> Query:
        return self.queries[idx]

    @property
    def accuracy_constraints(self) -> list[float]:
        return [q.accuracy_constraint for q in self.queries]

    @property
    def latency_constraints_ms(self) -> list[float]:
        return [q.latency_constraint_ms for q in self.queries]

    @classmethod
    def from_constraints(
        cls,
        accuracy_constraints: Sequence[float],
        latency_constraints_ms: Sequence[float],
        *,
        name: str = "trace",
    ) -> "QueryTrace":
        """Build a trace from parallel constraint lists."""
        if len(accuracy_constraints) != len(latency_constraints_ms):
            raise ValueError("constraint lists must have equal length")
        queries = tuple(
            Query(index=i, accuracy_constraint=a, latency_constraint_ms=l)
            for i, (a, l) in enumerate(zip(accuracy_constraints, latency_constraints_ms))
        )
        return cls(queries=queries, name=name)
