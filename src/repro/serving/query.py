"""Queries and query traces.

Each inference query arrives annotated with an (accuracy, latency) constraint
pair ``(A_t, L_t)`` — the interface the whole paper assumes.  A
:class:`QueryTrace` is an ordered stream of such queries, optionally with
arrival times for open-loop experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class Query:
    """One inference query with its service constraints.

    Attributes
    ----------
    index:
        Position in the stream.
    accuracy_constraint:
        Minimum acceptable top-1 accuracy, as a fraction (e.g. ``0.78``).
    latency_constraint_ms:
        Maximum acceptable serving latency in milliseconds.
    arrival_ms:
        Arrival timestamp (0 for closed-loop streams).
    """

    index: int
    accuracy_constraint: float
    latency_constraint_ms: float
    arrival_ms: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 < self.accuracy_constraint < 1.0):
            raise ValueError(
                f"query {self.index}: accuracy constraint must be in (0, 1), "
                f"got {self.accuracy_constraint}"
            )
        if self.latency_constraint_ms <= 0:
            raise ValueError(
                f"query {self.index}: latency constraint must be positive, "
                f"got {self.latency_constraint_ms}"
            )
        if self.arrival_ms < 0:
            raise ValueError(f"query {self.index}: arrival time must be >= 0")

    def latency_budget_ms(self, override: float | None = None) -> float:
        """The latency budget a scheduler should plan against.

        ``override`` is the *effective* (remaining) budget once queueing
        delay is known — dispatch-time servers pass it through; ``None``
        means the nominal constraint applies.
        """
        return self.latency_constraint_ms if override is None else override


@dataclass(frozen=True)
class QueryTrace:
    """An ordered stream of queries."""

    queries: tuple[Query, ...]
    name: str = "trace"

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError("a query trace needs at least one query")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __getitem__(self, idx: int) -> Query:
        return self.queries[idx]

    @property
    def accuracy_constraints(self) -> list[float]:
        return [q.accuracy_constraint for q in self.queries]

    @property
    def latency_constraints_ms(self) -> list[float]:
        return [q.latency_constraint_ms for q in self.queries]

    @classmethod
    def from_constraints(
        cls,
        accuracy_constraints: Sequence[float],
        latency_constraints_ms: Sequence[float],
        *,
        name: str = "trace",
    ) -> "QueryTrace":
        """Build a trace from parallel constraint lists."""
        if len(accuracy_constraints) != len(latency_constraints_ms):
            raise ValueError("constraint lists must have equal length")
        queries = tuple(
            Query(index=i, accuracy_constraint=a, latency_constraint_ms=l)
            for i, (a, l) in enumerate(zip(accuracy_constraints, latency_constraints_ms))
        )
        return cls(queries=queries, name=name)


class ArrayQueryTrace:
    """An array-backed query stream for long (10M+) traces.

    Duck-type compatible with :class:`QueryTrace` — ``len``, iteration,
    indexing and the constraint-list properties — but the constraints live
    in numpy buffers and :class:`Query` objects are materialized *lazily*,
    one at a time at dispatch, instead of eagerly up front.  Validation is
    vectorized once at construction (the same checks ``Query.__post_init__``
    applies per query), so materialization can skip per-object checks; the
    materialized queries are bit-identical to an eager
    :meth:`QueryTrace.from_constraints` build of the same arrays.
    """

    __slots__ = ("name", "_accuracy", "_latency_ms", "_acc_list", "_lat_list")

    def __init__(
        self,
        accuracy_constraints,
        latency_constraints_ms,
        *,
        name: str = "trace",
    ) -> None:
        acc = np.asarray(accuracy_constraints, dtype=np.float64)
        lat = np.asarray(latency_constraints_ms, dtype=np.float64)
        if acc.ndim != 1 or lat.ndim != 1:
            raise ValueError("constraint arrays must be one-dimensional")
        if acc.shape != lat.shape:
            raise ValueError("constraint lists must have equal length")
        if acc.size == 0:
            raise ValueError("a query trace needs at least one query")
        acc_ok = (acc > 0.0) & (acc < 1.0)
        if not acc_ok.all():
            i = int(np.argmin(acc_ok))
            raise ValueError(
                f"query {i}: accuracy constraint must be in (0, 1), "
                f"got {acc[i]}"
            )
        lat_ok = lat > 0.0
        if not lat_ok.all():
            i = int(np.argmin(lat_ok))
            raise ValueError(
                f"query {i}: latency constraint must be positive, "
                f"got {lat[i]}"
            )
        self.name = name
        self._accuracy = acc
        self._latency_ms = lat
        # Python-float views for the hot path: indexing a list of floats is
        # much cheaper than converting numpy scalars per materialization,
        # and tolist() round-trips IEEE doubles exactly.
        self._acc_list = acc.tolist()
        self._lat_list = lat.tolist()

    def query_at(self, index: int) -> Query:
        """Materialize one query (validation already done array-wide).

        Bypasses the dataclass constructor: ``__post_init__`` re-checks per
        field, and on a 10M-query trace that is the difference between a
        bounds check per query and a vectorized one per run.
        """
        query = Query.__new__(Query)
        d = query.__dict__
        d["index"] = index
        d["accuracy_constraint"] = self._acc_list[index]
        d["latency_constraint_ms"] = self._lat_list[index]
        d["arrival_ms"] = 0.0
        return query

    def materialize(self, *, name: str | None = None) -> QueryTrace:
        """The equivalent eager :class:`QueryTrace` (for reference runs)."""
        return QueryTrace(
            queries=tuple(self.query_at(i) for i in range(len(self._acc_list))),
            name=self.name if name is None else name,
        )

    def __len__(self) -> int:
        return len(self._acc_list)

    def __iter__(self) -> Iterator[Query]:
        return (self.query_at(i) for i in range(len(self._acc_list)))

    def __getitem__(self, idx: int) -> Query:
        return self.query_at(idx)

    @property
    def accuracy_constraints(self) -> list[float]:
        return list(self._acc_list)

    @property
    def latency_constraints_ms(self) -> list[float]:
        return list(self._lat_list)
