"""Experiment runner: serve identical streams through SUSHI and its baselines.

Provides the harness used by the end-to-end experiments (Fig. 15/16/17/18,
Table 5, and the headline numbers of Section 5.7): build the three systems
(No-SUSHI, SUSHI w/o scheduler, SUSHI) over the same SuperNet family and
platform, push the same query trace through each, and compare the resulting
latency / accuracy / energy metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.core.metrics import (
    QueryRecord,
    ServingMetrics,
    accuracy_improvement_points,
    energy_saving_percent,
    latency_improvement_percent,
    summarize_records,
)
from repro.core.policies import Policy
from repro.serving.api import build_engine
from repro.serving.baselines import NoSushiServer, StateUnawareCachingServer
from repro.serving.engine import (
    AcceleratorReplica,
    QueryServer,
    ServingEngine,
)
from repro.serving.query import QueryTrace
from repro.serving.spec import ArrivalSpec, ReplicaGroupSpec, ScenarioSpec
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.workload import WorkloadGenerator, WorkloadSpec, feasible_ranges_from_table
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.zoo import load_supernet, paper_pareto_subnets


@dataclass(frozen=True)
class StreamResult:
    """Records and summary metrics of one system serving one stream."""

    system: str
    records: tuple[QueryRecord, ...]
    metrics: ServingMetrics

    @classmethod
    def from_records(cls, system: str, records: Sequence[QueryRecord]) -> "StreamResult":
        return cls(system=system, records=tuple(records), metrics=summarize_records(records))


@dataclass(frozen=True)
class ComparisonSummary:
    """Headline comparison of SUSHI against the No-SUSHI baseline."""

    latency_improvement_vs_no_sushi_percent: float
    latency_improvement_vs_state_unaware_percent: float
    accuracy_improvement_points: float
    energy_saving_vs_no_sushi_percent: float
    sushi_cache_hit_ratio: float

    def as_dict(self) -> dict[str, float]:
        return {
            "latency_improvement_vs_no_sushi_percent": self.latency_improvement_vs_no_sushi_percent,
            "latency_improvement_vs_state_unaware_percent": self.latency_improvement_vs_state_unaware_percent,
            "accuracy_improvement_points": self.accuracy_improvement_points,
            "energy_saving_vs_no_sushi_percent": self.energy_saving_vs_no_sushi_percent,
            "sushi_cache_hit_ratio": self.sushi_cache_hit_ratio,
        }


class ExperimentRunner:
    """Builds the three systems over one SuperNet family and runs streams."""

    def __init__(
        self,
        supernet_name: str = "ofa_resnet50",
        *,
        platform: PlatformConfig = ANALYTIC_DEFAULT,
        policy: Policy = Policy.STRICT_ACCURACY,
        cache_update_period: int = 4,
        candidate_set_size: int | None = None,
        seed: int = 0,
    ) -> None:
        self.supernet = load_supernet(supernet_name)
        self.subnets = paper_pareto_subnets(self.supernet)
        self.platform = platform
        self.policy = policy
        self.cache_update_period = cache_update_period
        self.seed = seed
        self.accuracy_model = AccuracyModel(self.supernet)

        self.accel_with_pb = SushiAccelModel(platform, with_pb=True)
        self.accel_without_pb = SushiAccelModel(platform, with_pb=False)

        self.sushi = SushiStack(
            SushiStackConfig(
                supernet_name=self.supernet.name,
                platform=platform,
                policy=policy,
                cache_update_period=cache_update_period,
                candidate_set_size=candidate_set_size,
                seed=seed,
            ),
            supernet=self.supernet,
            subnets=self.subnets,
            accel=self.accel_with_pb,
            accuracy_model=self.accuracy_model,
        )
        self.no_sushi = NoSushiServer(
            self.supernet,
            self.subnets,
            self.accel_without_pb,
            self.accuracy_model,
            policy=policy,
        )
        self.state_unaware = StateUnawareCachingServer(
            self.supernet,
            self.subnets,
            self.accel_with_pb,
            self.accuracy_model,
            policy=policy,
            cache_update_period=cache_update_period,
        )

    # ------------------------------------------------------------ workload
    def default_workload(
        self, *, num_queries: int = 200, pattern: str = "uniform", seed: int | None = None
    ) -> QueryTrace:
        """A query trace whose constraints span this family's feasible ranges."""
        acc_range, lat_range = feasible_ranges_from_table(self.sushi.table)
        spec = WorkloadSpec(
            num_queries=num_queries,
            accuracy_range=acc_range,
            latency_range_ms=lat_range,
            pattern=pattern,  # type: ignore[arg-type]
        )
        return WorkloadGenerator(spec, seed=self.seed if seed is None else seed).generate()

    # ------------------------------------------------------------- running
    @staticmethod
    def _closed_loop(server: QueryServer, trace: QueryTrace) -> list:
        """Serve ``trace`` closed-loop through the discrete-event engine.

        The closed loop is the rho → 0 configuration of the engine: one
        replica, FIFO, admit-all, with query ``i+1`` injected as ``i``
        completes — so every query sees its full latency budget and the
        records match serving the trace sequentially, query for query.
        """
        engine = ServingEngine(
            [AcceleratorReplica(server, discipline="fifo")],
            router="round_robin",
            admission="admit_all",
        )
        # State (scheduler history, PB warmth) is managed by the caller, not
        # reset here, to preserve each system's cross-run cache semantics.
        result = engine.run_closed_loop(trace, reset=False)
        return list(result.records)

    def run(self, trace: QueryTrace) -> dict[str, StreamResult]:
        """Serve ``trace`` on all three systems (fresh state per run)."""
        self.sushi.reset()
        self.state_unaware.begin_stream()
        results = {
            "no_sushi": StreamResult.from_records(
                "no_sushi", self._closed_loop(self.no_sushi, trace)
            ),
            "sushi_wo_sched": StreamResult.from_records(
                "sushi_wo_sched", self._closed_loop(self.state_unaware, trace)
            ),
            "sushi": StreamResult.from_records("sushi", self._closed_loop(self.sushi, trace)),
        }
        return results

    def scenario(
        self,
        *,
        num_replicas: int = 1,
        discipline: str = "fifo",
        router: str = "round_robin",
        admission: str = "admit_all",
        arrival_rate_per_ms: float = 0.1,
        num_queries: int = 200,
        arrival_seed: int | None = None,
    ) -> ScenarioSpec:
        """A declarative spec of this runner's SUSHI pool (serializable)."""
        config = self.sushi.config
        return ScenarioSpec(
            name=f"{config.supernet_name}-{num_replicas}x",
            supernet_name=config.supernet_name,
            policy=config.policy,
            cache_update_period=config.cache_update_period,
            replica_groups=(
                ReplicaGroupSpec(
                    count=num_replicas,
                    platform=config.platform,
                    candidate_set_size=config.candidate_set_size,
                    seed=config.seed,
                    discipline=discipline,
                ),
            ),
            router=router,
            admission=admission,
            workload=WorkloadSpec(
                num_queries=num_queries, accuracy_range=None, latency_range_ms=None
            ),
            arrivals=ArrivalSpec(
                kind="poisson",
                rate_per_ms=arrival_rate_per_ms,
                seed=self.seed if arrival_seed is None else arrival_seed,
            ),
            seed=self.seed,
        )

    def open_loop_engine(
        self,
        *,
        num_replicas: int = 1,
        discipline: str = "fifo",
        router: str = "round_robin",
        admission: str = "admit_all",
    ) -> ServingEngine:
        """A dispatch-time engine over clones of this runner's SUSHI stack."""
        spec = self.scenario(
            num_replicas=num_replicas,
            discipline=discipline,
            router=router,
            admission=admission,
        )
        return build_engine(spec, stack_cache={self.sushi.config: self.sushi})

    def compare(self, trace: QueryTrace) -> tuple[dict[str, StreamResult], ComparisonSummary]:
        """Run all systems and compute the headline comparison summary."""
        results = self.run(trace)
        summary = compare_systems(results, sushi_hit_ratio=self.sushi.cache_hit_ratio)
        return results, summary


def compare_systems(
    results: dict[str, StreamResult], *, sushi_hit_ratio: float = 0.0
) -> ComparisonSummary:
    """Headline improvements of SUSHI over the baselines."""
    required = {"no_sushi", "sushi_wo_sched", "sushi"}
    missing = required - set(results)
    if missing:
        raise ValueError(f"results missing systems: {sorted(missing)}")
    no_sushi = results["no_sushi"].metrics
    wo_sched = results["sushi_wo_sched"].metrics
    sushi = results["sushi"].metrics
    return ComparisonSummary(
        latency_improvement_vs_no_sushi_percent=latency_improvement_percent(no_sushi, sushi),
        latency_improvement_vs_state_unaware_percent=latency_improvement_percent(
            wo_sched, sushi
        ),
        accuracy_improvement_points=accuracy_improvement_points(no_sushi, sushi),
        energy_saving_vs_no_sushi_percent=energy_saving_percent(no_sushi, sushi),
        sushi_cache_hit_ratio=sushi_hit_ratio,
    )
