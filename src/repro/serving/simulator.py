"""Open-loop serving simulator: arrivals, queueing and SLO attainment.

The paper motivates SUSHI with latency-SLO attainment under *variable query
traffic* (Section 1): during transient overloads a high-accuracy model drops
queries, while a low-accuracy model wastes quality headroom when load is low.
The closed-loop experiments of Fig. 15/16 serve one query at a time; this
module adds the open-loop view on top of the discrete-event engine
(:mod:`repro.serving.engine`): queries arrive on a Poisson process, wait in a
replica queue, and attain their latency SLO only if queueing delay plus
serving latency stays within the constraint.

Two modes exist:

* ``OpenLoopSimulator(serve_fn)`` — *precomputed* mode: the whole trace is
  served closed-loop first and only the queueing is simulated (service times
  are fixed regardless of dispatch time).  This keeps the original
  single-server semantics and works for any ``trace -> records`` callable.
* ``OpenLoopSimulator.from_stack(stack, num_replicas=...)`` — *dispatch-time*
  mode: every query is scheduled when a replica actually picks it up, so the
  scheduler sees the arrival order and the remaining latency slack, across
  one or many replicas with pluggable disciplines, routing and admission.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.metrics import QueryRecord
from repro.serving.engine import (
    AcceleratorReplica,
    PrecomputedServer,
    ServingEngine,
    SimulatedQueryOutcome,
    SimulationResult,
    build_stack_engine,
    poisson_arrivals,
)
from repro.serving.engine.results import DroppedQuery
from repro.serving.query import QueryTrace
from repro.serving.stack import SushiStack

__all__ = [
    "DroppedQuery",
    "OpenLoopSimulator",
    "SimulatedQueryOutcome",
    "SimulationResult",
    "poisson_arrivals",
]


class OpenLoopSimulator:
    """Open-loop simulation of a serving system over the event engine.

    Parameters
    ----------
    serve_fn:
        Maps a :class:`QueryTrace` to per-query records whose
        ``served_latency_ms`` / ``served_accuracy`` are used as the service
        time and quality of each query (precomputed mode).  Both the SUSHI
        stack and the baselines satisfy this interface.  Pass ``engine``
        instead for dispatch-time simulation.
    engine:
        A pre-built :class:`ServingEngine` (dispatch-time mode).
    """

    def __init__(
        self,
        serve_fn: Callable[[QueryTrace], Sequence[QueryRecord]] | None = None,
        *,
        engine: ServingEngine | None = None,
    ) -> None:
        if (serve_fn is None) == (engine is None):
            raise ValueError("pass exactly one of serve_fn or engine")
        self.serve_fn = serve_fn
        self.engine = engine

    @classmethod
    def from_stack(
        cls,
        stack: SushiStack,
        *,
        num_replicas: int = 1,
        discipline: str = "fifo",
        router: str = "round_robin",
        admission: str = "admit_all",
    ) -> "OpenLoopSimulator":
        """Dispatch-time simulator over clones of ``stack`` (one per replica)."""
        engine = build_stack_engine(
            stack,
            num_replicas=num_replicas,
            discipline=discipline,
            router=router,
            admission=admission,
            dispatch_time_scheduling=True,
        )
        return cls(engine=engine)

    def run(
        self,
        trace: QueryTrace,
        *,
        arrival_rate_per_ms: float,
        seed: int = 0,
    ) -> SimulationResult:
        """Simulate ``trace`` arriving at ``arrival_rate_per_ms`` (queries/ms)."""
        if self.engine is not None:
            return self.engine.run_open_loop(
                trace, arrival_rate_per_ms=arrival_rate_per_ms, seed=seed
            )
        records = list(self.serve_fn(trace))
        if len(records) != len(trace):
            raise ValueError(
                f"serve_fn returned {len(records)} records for {len(trace)} queries"
            )
        engine = ServingEngine(
            [AcceleratorReplica(PrecomputedServer(records))],
            router="round_robin",
            admission="admit_all",
            dispatch_time_scheduling=False,
        )
        return engine.run_open_loop(
            trace, arrival_rate_per_ms=arrival_rate_per_ms, seed=seed
        )

    def load_sweep(
        self,
        trace: QueryTrace,
        arrival_rates_per_ms: Sequence[float],
        *,
        seed: int = 0,
    ) -> dict[float, SimulationResult]:
        """Run the same trace at several arrival rates (a load curve)."""
        return {
            rate: self.run(trace, arrival_rate_per_ms=rate, seed=seed)
            for rate in arrival_rates_per_ms
        }
