"""Open-loop serving simulator: arrivals, queueing and SLO attainment.

The paper motivates SUSHI with latency-SLO attainment under *variable query
traffic* (Section 1): during transient overloads a high-accuracy model drops
queries, while a low-accuracy model wastes quality headroom when load is low.
The closed-loop experiments of Fig. 15/16 serve one query at a time; this
module adds the open-loop view: queries arrive on a Poisson process, wait in a
FIFO queue for the single accelerator, and attain their latency SLO only if
queueing delay plus serving latency stays within the constraint.

This is an extension beyond the paper's plotted results, but it exercises the
same stack end to end and quantifies the intro's motivating claim: a
latency/accuracy-navigating scheduler attains more SLOs across load levels
than any single static model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.metrics import QueryRecord
from repro.serving.query import Query, QueryTrace
from repro.serving.stack import SushiStack


@dataclass(frozen=True)
class SimulatedQueryOutcome:
    """Timing of one query in the open-loop simulation (all in ms)."""

    query_index: int
    arrival_ms: float
    start_ms: float
    service_ms: float
    latency_constraint_ms: float
    served_accuracy: float

    @property
    def completion_ms(self) -> float:
        return self.start_ms + self.service_ms

    @property
    def queueing_ms(self) -> float:
        return self.start_ms - self.arrival_ms

    @property
    def response_ms(self) -> float:
        """Queueing delay plus service time — what the SLO is judged against."""
        return self.completion_ms - self.arrival_ms

    @property
    def meets_slo(self) -> bool:
        return self.response_ms <= self.latency_constraint_ms


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate outcome of one open-loop run."""

    outcomes: tuple[SimulatedQueryOutcome, ...]
    offered_load: float
    """Mean arrival rate x mean service time (rho); > 1 means overload."""

    @property
    def slo_attainment(self) -> float:
        return float(np.mean([o.meets_slo for o in self.outcomes]))

    @property
    def mean_response_ms(self) -> float:
        return float(np.mean([o.response_ms for o in self.outcomes]))

    @property
    def p99_response_ms(self) -> float:
        return float(np.percentile([o.response_ms for o in self.outcomes], 99))

    @property
    def mean_queueing_ms(self) -> float:
        return float(np.mean([o.queueing_ms for o in self.outcomes]))

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean([o.served_accuracy for o in self.outcomes]))


def poisson_arrivals(
    num_queries: int, rate_per_ms: float, *, rng: np.random.Generator
) -> np.ndarray:
    """Cumulative arrival timestamps (ms) of a Poisson process."""
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    if rate_per_ms <= 0:
        raise ValueError("rate_per_ms must be positive")
    gaps = rng.exponential(scale=1.0 / rate_per_ms, size=num_queries)
    return np.cumsum(gaps)


class OpenLoopSimulator:
    """Single-server FIFO simulation of a serving system.

    Parameters
    ----------
    serve_fn:
        Maps a :class:`QueryTrace` to per-query records whose
        ``served_latency_ms`` / ``served_accuracy`` are used as the service
        time and quality of each query.  Both the SUSHI stack and the
        baselines satisfy this interface.
    """

    def __init__(self, serve_fn: Callable[[QueryTrace], Sequence[QueryRecord]]) -> None:
        self.serve_fn = serve_fn

    @classmethod
    def from_stack(cls, stack: SushiStack) -> "OpenLoopSimulator":
        def _serve(trace: QueryTrace) -> Sequence[QueryRecord]:
            stack.reset()
            return stack.serve(trace)

        return cls(_serve)

    def run(
        self,
        trace: QueryTrace,
        *,
        arrival_rate_per_ms: float,
        seed: int = 0,
    ) -> SimulationResult:
        """Simulate ``trace`` arriving at ``arrival_rate_per_ms`` (queries/ms)."""
        rng = np.random.default_rng(seed)
        arrivals = poisson_arrivals(len(trace), arrival_rate_per_ms, rng=rng)
        records = list(self.serve_fn(trace))
        if len(records) != len(trace):
            raise ValueError(
                f"serve_fn returned {len(records)} records for {len(trace)} queries"
            )

        outcomes: list[SimulatedQueryOutcome] = []
        server_free_at = 0.0
        for query, arrival, record in zip(trace, arrivals, records):
            start = max(arrival, server_free_at)
            service = record.served_latency_ms
            server_free_at = start + service
            outcomes.append(
                SimulatedQueryOutcome(
                    query_index=query.index,
                    arrival_ms=float(arrival),
                    start_ms=float(start),
                    service_ms=float(service),
                    latency_constraint_ms=query.latency_constraint_ms,
                    served_accuracy=record.served_accuracy,
                )
            )
        mean_service = float(np.mean([r.served_latency_ms for r in records]))
        offered_load = arrival_rate_per_ms * mean_service
        return SimulationResult(outcomes=tuple(outcomes), offered_load=offered_load)

    def load_sweep(
        self,
        trace: QueryTrace,
        arrival_rates_per_ms: Sequence[float],
        *,
        seed: int = 0,
    ) -> dict[float, SimulationResult]:
        """Run the same trace at several arrival rates (a load curve)."""
        return {
            rate: self.run(trace, arrival_rate_per_ms=rate, seed=seed)
            for rate in arrival_rates_per_ms
        }
