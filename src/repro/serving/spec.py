"""Declarative serving scenario specifications.

Everything needed to run a serving scenario — which replicas exist, what
hardware each runs on, how queries arrive and what constraints they carry —
is captured in frozen, JSON-serializable dataclasses:

* :class:`ReplicaGroupSpec` — a homogeneous group of replicas (count, backend
  kind, platform / Persistent Buffer size, policy, queue discipline).  A
  scenario may mix several groups, giving heterogeneous replica pools
  (e.g. two large-PB plus two small-PB replicas).
* :class:`ArrivalSpec` — the arrival process: ``poisson``, ``deterministic``
  (evenly spaced), ``time_varying`` (piecewise-constant-rate Poisson for
  diurnal / flash-crowd traces) or ``trace`` (replay of a recorded request
  log, from a CSV/JSONL file or inline timestamps; see
  :mod:`repro.serving.trace_io`).
* :class:`ScenarioSpec` — the whole experiment: replica groups, router,
  admission policy, workload (query constraints) and arrival process.

Contracts every consumer relies on:

* **Exact round-trip** — ``from_dict(to_dict(spec)) == spec`` for every
  valid spec, through plain JSON types only (lists become tuples on the way
  back in), so scenarios can live in version-controlled ``.json`` files
  (see ``examples/scenarios/``) and be run from the command line with
  ``python -m repro serve --scenario <file>``.  ``python -m repro schema``
  prints the full field/default/enum reference
  (:func:`scenario_schema`; prose version in ``docs/scenario-schema.md``).
* **Validation at construction** — every spec validates its fields in
  ``__post_init__``; an invalid scenario fails when parsed, never mid-run.
* **Neutral defaults are inert** — fields added after PR 2 default to
  values that leave earlier behavior bit-identical: ``autoscaler: null``
  matches the fixed-pool engine path, ``batching.max_batch = 1`` the
  pre-batching dispatch, ``startup_delay_ms = 0`` the instant-scale-up
  control plane, ``cost_weight = 1.0`` unweighted cost accounting,
  ``faults: null`` the fault-free engine.  A PR 3
  era JSON file (without the newer keys) parses to the same spec as one
  spelling the defaults out.

The imperative counterpart — actually building stacks, replicas and the
engine from a spec — lives in :mod:`repro.serving.api`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Sequence, TYPE_CHECKING

import numpy as np
import numpy.typing as npt

if TYPE_CHECKING:  # pragma: no cover - trace_io imports nothing from us,
    # but the lazy runtime imports below keep module loading cycle-free.
    from repro.serving.trace_io import TraceLog

from repro.accelerator.platforms import PlatformConfig, platform_by_name
from repro.core.policies import Policy
from repro.serving.autoscale.policies import POLICY_NAMES, ScalingPolicy, make_policy
from repro.serving.engine.admission import ADMISSION_NAMES
from repro.serving.engine.disciplines import DISCIPLINE_NAMES
from repro.serving.engine.routing import ROUTER_NAMES
from repro.serving.workload import PATTERNS, WorkloadSpec

__all__ = [
    "ARRIVAL_KINDS",
    "BACKEND_KINDS",
    "BATCHING_POLICIES",
    "SCALING_POLICY_NAMES",
    "ArrivalSpec",
    "AutoscalerSpec",
    "BatchingSpec",
    "FaultSpec",
    "ObservabilitySpec",
    "ReplicaGroupSpec",
    "RetryPolicy",
    "ScenarioSpec",
    "scenario_schema",
]

#: Scaling policies an :class:`AutoscalerSpec` can name (re-exported).
SCALING_POLICY_NAMES: tuple[str, ...] = POLICY_NAMES

#: Serving backends a replica group can instantiate (see ``api.build_engine``).
BACKEND_KINDS: tuple[str, ...] = (
    "sushi",  # full SUSHI stack: SushiSched + SushiAbs + SushiAccel (+ PB)
    "no_sushi",  # paper baseline: no PB, selection on static latencies
    "state_unaware",  # paper ablation: PB present, caching ignores state
    "static_subnet",  # serve one fixed SubNet for every query
    "precomputed",  # replay records precomputed closed-loop (legacy mode)
)

#: Supported arrival processes.
ARRIVAL_KINDS: tuple[str, ...] = (
    "poisson",
    "deterministic",
    "time_varying",
    "trace",
)

#: Batched-dispatch policies a replica group can run under.
BATCHING_POLICIES: tuple[str, ...] = (
    "shared_subnet",  # one shared SubNet decision + one evaluation per batch
    "per_query",  # per-member decisions, served back to back in one pickup
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _apply_override(data: dict[str, Any], path: str, value: Any) -> None:
    """Set one dotted-path field in a serialized spec dict, in place."""
    node: Any = data
    parts = path.split(".")
    for i, part in enumerate(parts[:-1]):
        node = node[int(part)] if isinstance(node, list) else node[part]
        if not isinstance(node, (dict, list)):
            raise KeyError(
                f"override path {path!r} descends through scalar "
                f"{'.'.join(parts[: i + 1])!r}"
            )
    leaf = parts[-1]
    if isinstance(node, list):
        node[int(leaf)] = value
    else:
        if leaf not in node:
            raise KeyError(
                f"unknown field {leaf!r} in override path {path!r}; "
                f"available: {sorted(node)}"
            )
        node[leaf] = value


def _as_tuple(value: Any) -> Any:
    """Recursively convert lists (as produced by JSON) to tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_as_tuple(v) for v in value)
    return value


@dataclass(frozen=True)
class ArrivalSpec:
    """How queries arrive in an open-loop scenario.

    Attributes
    ----------
    kind:
        ``poisson`` (memoryless arrivals at ``rate_per_ms``),
        ``deterministic`` (evenly spaced at ``rate_per_ms``),
        ``time_varying`` (piecewise-constant-rate Poisson over
        ``segments``), or ``trace`` (replay of a recorded request log —
        exact timestamps from a CSV/JSONL file at ``path`` or the inline
        ``events`` tuple; see :mod:`repro.serving.trace_io`).
    rate_per_ms:
        Mean arrival rate in queries/ms (``poisson`` / ``deterministic``).
    segments:
        ``(duration_ms, rate_per_ms)`` pairs for ``time_varying``.  The
        segment sequence cycles until the stream is exhausted, so a diurnal
        day or a flash-crowd spike repeats naturally over long traces.
    seed:
        Seed of the arrival process (independent of the workload seed).
        ``trace`` replays are deterministic; the seed is inert for them.
    path:
        ``trace`` only: request-log file to replay (``.csv`` / ``.jsonl``;
        relative paths resolve against the working directory).  The file
        is read when arrivals are generated, not at spec validation, so
        scenario files parse anywhere.  Mutually exclusive with ``events``.
    events:
        ``trace`` only: inline arrival timestamps in ms (non-negative,
        non-decreasing).  The self-contained replay form — a scenario
        JSON carrying its own tiny log.  Mutually exclusive with ``path``.
    rate_scale:
        ``trace`` only: arrival-rate multiplier.  Replayed timestamps are
        divided by this, so ``2.0`` replays the same log at twice the
        request rate ("what if traffic doubled?").  Default ``1.0``.
    time_scale:
        ``trace`` only: timestamp multiplier (unit conversion — e.g.
        ``1000.0`` lifts a log recorded in seconds to ms).  Applied
        together with ``rate_scale`` as ``t * time_scale / rate_scale``.
    limit:
        ``trace`` only: replay only the first ``limit`` arrivals of the
        (timestamp-sorted) log.  ``null`` replays everything.
    """

    kind: str = "poisson"
    rate_per_ms: float | None = None
    segments: tuple[tuple[float, float], ...] = ()
    seed: int = 0
    path: str | None = None
    events: tuple[float, ...] = ()
    rate_scale: float = 1.0
    time_scale: float = 1.0
    limit: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "segments", _as_tuple(self.segments))
        object.__setattr__(
            self, "events", tuple(float(e) for e in _as_tuple(self.events))
        )
        _require(
            self.kind in ARRIVAL_KINDS,
            f"unknown arrival kind {self.kind!r}; expected one of {ARRIVAL_KINDS}",
        )
        if self.kind != "trace":
            _require(
                self.path is None and not self.events,
                f"{self.kind} arrivals take no path/events "
                "(use kind=\"trace\" to replay a request log)",
            )
            _require(
                self.rate_scale == 1.0
                and self.time_scale == 1.0
                and self.limit is None,
                f"rate_scale/time_scale/limit only apply to trace arrivals "
                f"(kind={self.kind!r})",
            )
        if self.kind in ("poisson", "deterministic"):
            _require(
                self.rate_per_ms is not None and self.rate_per_ms > 0,
                f"{self.kind} arrivals need a positive rate_per_ms "
                f"(got {self.rate_per_ms})",
            )
            _require(
                not self.segments,
                f"{self.kind} arrivals take no segments (got {self.segments})",
            )
        elif self.kind == "time_varying":
            _require(
                self.rate_per_ms is None,
                "time_varying arrivals are described by segments, not rate_per_ms",
            )
            _require(bool(self.segments), "time_varying arrivals need segments")
            for seg in self.segments:
                _require(
                    isinstance(seg, tuple) and len(seg) == 2,
                    f"each segment must be (duration_ms, rate_per_ms), got {seg!r}",
                )
                duration, rate = seg
                _require(
                    duration > 0 and rate > 0,
                    f"segment durations and rates must be positive, got {seg}",
                )
        else:  # trace
            _require(
                self.rate_per_ms is None and not self.segments,
                "trace arrivals replay a request log; they take no "
                "rate_per_ms or segments",
            )
            _require(
                (self.path is None) != (len(self.events) == 0),
                "trace arrivals need exactly one of path or events",
            )
            _require(
                self.rate_scale > 0, f"rate_scale must be positive, got {self.rate_scale}"
            )
            _require(
                self.time_scale > 0, f"time_scale must be positive, got {self.time_scale}"
            )
            if self.limit is not None:
                _require(
                    self.limit > 0, f"limit must be positive, got {self.limit}"
                )
            if self.events:
                _require(
                    all(t >= 0.0 for t in self.events),
                    "inline trace events must be non-negative timestamps",
                )
                _require(
                    all(
                        a <= b
                        for a, b in zip(self.events, self.events[1:])
                    ),
                    "inline trace events must be non-decreasing",
                )

    # ------------------------------------------------------------- generate
    def generate(self, num_queries: int) -> npt.NDArray[np.float64]:
        """Cumulative arrival timestamps (ms) for ``num_queries`` queries."""
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        if self.kind == "poisson":
            # Exactly the engine's run_open_loop arrivals, so a Poisson
            # ScenarioSpec is record-identical to the hand-wired path.
            rate = self.rate_per_ms
            assert rate is not None  # __post_init__ rejects rateless poisson
            rng = np.random.default_rng(self.seed)
            gaps = rng.exponential(scale=1.0 / rate, size=num_queries)
            return np.asarray(np.cumsum(gaps), dtype=np.float64)
        if self.kind == "deterministic":
            rate = self.rate_per_ms
            assert rate is not None  # __post_init__ rejects rateless arrivals
            spaced = np.arange(1, num_queries + 1, dtype=np.float64) / rate
            return np.asarray(spaced, dtype=np.float64)
        if self.kind == "trace":
            events = self._trace_events()
            if num_queries > events.size:
                raise ValueError(
                    f"trace provides {events.size} arrivals but the "
                    f"scenario needs {num_queries}; lower num_queries "
                    "(or raise/remove the limit)"
                )
            return np.asarray(events[:num_queries].copy(), dtype=np.float64)
        return self._time_varying(num_queries)

    def _trace_events(self) -> npt.NDArray[np.float64]:
        """The replayed log's timestamps, limited and scaled, in ms.

        With ``rate_scale == time_scale == 1.0`` the timestamps pass
        through untouched — an inline ``events`` replay is bit-identical
        to the same timestamps from any other source.
        """
        if self.path is not None:
            from repro.serving.trace_io import load_trace_log

            events = load_trace_log(self.path, limit=self.limit).timestamps_ms
        else:
            arr = np.asarray(self.events, dtype=np.float64)
            events = arr if self.limit is None else arr[: self.limit]
        _require(events.size > 0, "the replayed trace has no arrivals")
        _require(
            float(events[-1]) > 0.0,
            "the replayed trace must span positive time "
            "(its last timestamp is 0)",
        )
        factor = self.time_scale / self.rate_scale
        if factor != 1.0:
            events = events * factor
        return np.asarray(events, dtype=np.float64)

    def _time_varying(self, num_queries: int) -> npt.NDArray[np.float64]:
        """Exact piecewise-constant-rate Poisson process via unit hazards.

        Each inter-arrival draws a unit-rate exponential and burns it down
        through the (cycling) segments: a segment of rate ``r`` and length
        ``d`` absorbs ``r * d`` units of hazard.  This is the inverse
        cumulative-hazard construction, exact for any piecewise rate.
        """
        rng = np.random.default_rng(self.seed)
        # The burn-down runs in pure Python floats (``tolist`` round-trips
        # IEEE doubles exactly, and +,-,*,/ on Python floats produce the
        # same bits as the np.float64 scalar loop) — bit-identical arrivals
        # at a fraction of the per-query cost, which matters because this
        # sampler is the trace-generation bottleneck on 10M-query streams.
        hazards = rng.exponential(scale=1.0, size=num_queries).tolist()
        durations = [float(d) for d, _ in self.segments]
        rates = [float(r) for _, r in self.segments]
        num_segments = len(durations)
        arrivals: list[float] = []
        append = arrivals.append
        t = 0.0
        seg = 0  # current segment in the cycle
        into = 0.0  # time already spent inside the current segment
        for hazard in hazards:
            while True:
                left_ms = durations[seg] - into
                seg_hazard = rates[seg] * left_ms
                if hazard <= seg_hazard:
                    dt = hazard / rates[seg]
                    t += dt
                    into += dt
                    break
                hazard -= seg_hazard
                t += left_ms
                seg += 1
                if seg == num_segments:
                    seg = 0
                into = 0.0
            append(t)
        return np.asarray(arrivals, dtype=np.float64)

    def nominal_rate_per_ms(self) -> float:
        """The long-run mean arrival rate implied by the spec."""
        if self.kind in ("poisson", "deterministic"):
            rate = self.rate_per_ms
            assert rate is not None  # validated in __post_init__
            return float(rate)
        if self.kind == "trace":
            events = self._trace_events()
            return float(events.size / events[-1])
        total_time = sum(d for d, _ in self.segments)
        total_arrivals = sum(d * r for d, r in self.segments)
        return total_arrivals / total_time

    def trace_log(self) -> "TraceLog | None":
        """The replayed request log, when this spec names one by ``path``.

        ``None`` for synthetic kinds and for inline ``events`` replays
        (which carry no annotation columns).  The log is limited but
        *not* time-scaled: its ``slo_ms`` / ``accuracy_floor`` columns
        are constraints, not timestamps (``repro.serving.api`` feeds them
        into the workload).
        """
        if self.kind != "trace" or self.path is None:
            return None
        from repro.serving.trace_io import load_trace_log

        return load_trace_log(self.path, limit=self.limit)

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "rate_per_ms": self.rate_per_ms,
            "segments": [list(seg) for seg in self.segments],
            "seed": self.seed,
            "path": self.path,
            "events": list(self.events),
            "rate_scale": self.rate_scale,
            "time_scale": self.time_scale,
            "limit": self.limit,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalSpec":
        payload: dict[str, Any] = dict(data)
        payload["segments"] = _as_tuple(payload.get("segments", ()))
        payload["events"] = _as_tuple(payload.get("events", ()))
        return cls(**payload)


@dataclass(frozen=True)
class BatchingSpec:
    """Batched dispatch configuration of a replica group.

    Attributes
    ----------
    max_batch:
        Maximum queries a replica pulls per dispatch pickup.  ``1`` (the
        default) disables batching and is record-identical to the
        pre-batching engine path.
    policy:
        ``shared_subnet`` — queries co-scheduled in a pickup share one
        SubNet decision (strictest accuracy constraint, tightest remaining
        latency budget) and one accelerator evaluation, amortizing the
        SubNet's weight traffic and at most one cache load across the batch
        — the amortization SGS weight sharing enables.  ``per_query`` —
        members keep their own decisions and run back to back within the
        pickup (amortizes only the dispatch overhead; the fair non-sharing
        comparison point).
    """

    max_batch: int = 1
    policy: str = "shared_subnet"

    def __post_init__(self) -> None:
        _require(
            self.max_batch >= 1,
            f"max_batch must be >= 1, got {self.max_batch}",
        )
        _require(
            self.policy in BATCHING_POLICIES,
            f"unknown batching policy {self.policy!r}; "
            f"expected one of {BATCHING_POLICIES}",
        )

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {"max_batch": self.max_batch, "policy": self.policy}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchingSpec":
        return cls(**dict(data))


def _platform_to_json(platform: str | PlatformConfig) -> str | dict[str, Any]:
    if isinstance(platform, str):
        return platform
    return dataclasses.asdict(platform)


def _platform_from_json(data: str | Mapping[str, Any]) -> str | PlatformConfig:
    if isinstance(data, str):
        return data
    return PlatformConfig(**dict(data))


@dataclass(frozen=True)
class ReplicaGroupSpec:
    """A homogeneous group of serving replicas inside a scenario.

    Attributes
    ----------
    count:
        Number of replicas in the group.
    kind:
        Backend kind, one of :data:`BACKEND_KINDS`.
    platform:
        Platform name (see :func:`~repro.accelerator.platforms.platform_by_name`)
        or a full inline :class:`PlatformConfig`.
    pb_kb:
        Persistent Buffer size override in KB (None keeps the platform's).
        The knob that makes pools heterogeneous: groups sharing a platform
        but differing in PB size model big/small accelerator tiers.
    policy, cache_update_period, candidate_set_size, seed:
        Per-group overrides of the scenario-level values (None inherits).
    discipline:
        Queue discipline of every replica in the group
        (``fifo`` / ``edf`` / ``priority_by_slack``).
    batching:
        Batched-dispatch configuration (:class:`BatchingSpec`).  The default
        ``max_batch=1`` keeps the classic one-query-at-a-time pickup.
    cost_weight:
        Replica-seconds price of this tier relative to weight 1.0 (e.g. a
        large-PB group at 2.0 costs twice a small-PB group per second).
        What the tier-aware autoscaler ranks groups by and budgets against
        (``AutoscalerSpec.cost_budget``); also weights
        ``SimulationResult.weighted_replica_seconds``.
    startup_delay_ms:
        Cold-start time of a scale-up replica in this group: a new replica
        joins routing only after this much simulated time (it is paid for
        from the moment it is requested).  ``0`` (the default) keeps
        scale-ups instant — record-identical to the pre-cold-start control
        plane.
    subnet_name:
        For ``static_subnet`` backends: which SubNet to pin (None pins the
        most accurate one).
    name:
        Optional group label; replica ``i`` of group ``g`` is named
        ``"{name}-{i}"`` (default names follow the engine's global index).
    """

    count: int = 1
    kind: str = "sushi"
    platform: str | PlatformConfig = "analytic-default"
    pb_kb: float | None = None
    policy: Policy | None = None
    cache_update_period: int | None = None
    candidate_set_size: int | None = None
    seed: int | None = None
    discipline: str = "fifo"
    batching: BatchingSpec = field(default_factory=BatchingSpec)
    cost_weight: float = 1.0
    startup_delay_ms: float = 0.0
    subnet_name: str | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if self.batching is None:
            # ``"batching": null`` in JSON means "no batching", mirroring
            # the nullable autoscaler field.
            object.__setattr__(self, "batching", BatchingSpec())
        elif isinstance(self.batching, Mapping):
            object.__setattr__(self, "batching", BatchingSpec.from_dict(self.batching))
        _require(self.count > 0, f"replica count must be positive, got {self.count}")
        _require(
            self.kind in BACKEND_KINDS,
            f"unknown backend kind {self.kind!r}; expected one of {BACKEND_KINDS}",
        )
        if isinstance(self.policy, str):
            object.__setattr__(self, "policy", Policy(self.policy))
        if self.pb_kb is not None:
            _require(self.pb_kb >= 0, f"pb_kb must be >= 0, got {self.pb_kb}")
        if self.cache_update_period is not None:
            _require(
                self.cache_update_period > 0,
                f"cache_update_period must be positive, got {self.cache_update_period}",
            )
        _require(
            self.cost_weight > 0,
            f"cost_weight must be positive, got {self.cost_weight}",
        )
        _require(
            self.startup_delay_ms >= 0,
            f"startup_delay_ms must be non-negative, got {self.startup_delay_ms}",
        )
        if isinstance(self.platform, str):
            # Fail at spec time, not at build time.
            platform_by_name(self.platform)
        if self.subnet_name is not None:
            _require(
                self.kind == "static_subnet",
                f"subnet_name only applies to static_subnet backends (kind={self.kind!r})",
            )

    def resolved_platform(self) -> PlatformConfig:
        """The concrete platform this group runs on (with the PB override)."""
        platform = (
            platform_by_name(self.platform)
            if isinstance(self.platform, str)
            else self.platform
        )
        if self.pb_kb is not None:
            platform = platform.with_pb(self.pb_kb)
        return platform

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "kind": self.kind,
            "platform": _platform_to_json(self.platform),
            "pb_kb": self.pb_kb,
            "policy": None if self.policy is None else self.policy.value,
            "cache_update_period": self.cache_update_period,
            "candidate_set_size": self.candidate_set_size,
            "seed": self.seed,
            "discipline": self.discipline,
            "batching": self.batching.to_dict(),
            "cost_weight": self.cost_weight,
            "startup_delay_ms": self.startup_delay_ms,
            "subnet_name": self.subnet_name,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReplicaGroupSpec":
        payload: dict[str, Any] = dict(data)
        if "platform" in payload:
            payload["platform"] = _platform_from_json(payload["platform"])
        if payload.get("policy") is not None:
            payload["policy"] = Policy(payload["policy"])
        if payload.get("batching") is not None:
            payload["batching"] = BatchingSpec.from_dict(payload["batching"])
        else:
            payload.pop("batching", None)
        return cls(**payload)


@dataclass(frozen=True)
class AutoscalerSpec:
    """Declarative autoscaler configuration for a scenario.

    Describes the control plane the engine runs on top of the replica pool:
    which :mod:`scaling policy <repro.serving.autoscale.policies>` to
    evaluate, how often, over what telemetry window, within which pool
    bounds, and which replica group it scales.  Policy-specific knobs are
    flat fields; only the ones belonging to ``policy`` are consumed (the
    rest keep their defaults so the JSON form stays stable).

    Attributes
    ----------
    policy:
        ``reactive`` / ``target_utilization`` / ``predictive`` /
        ``scheduled`` / ``tier_aware``.
    control_interval_ms:
        Simulated time between policy evaluations.
    window_ms:
        Telemetry sliding window (None: twice the control interval).
    min_replicas, max_replicas:
        Hard bounds on each scaled group's active replica count.
    up_cooldown_ms, down_cooldown_ms:
        Minimum spacing between scale-ups / scale-downs.
    group:
        Name of the :class:`ReplicaGroupSpec` to scale (None: the first
        group).  Scale-up clones that group's backend (for SUSHI stacks: a
        fresh scheduler and cold Persistent Buffer sharing the group's
        latency table); scale-down drains a replica before retiring it.
    groups:
        Names of *several* replica groups for the ``tier_aware`` policy,
        which chooses the tier to grow (cheapest ``cost_weight`` that fits
        the budget) or shrink (most expensive first).  Mutually exclusive
        with ``group``; every name must match a replica group.
    cost_budget:
        ``tier_aware`` ceiling on the weighted pool size
        (``sum(cost_weight x incoming replicas)`` over the scaled groups).
        None disables the budget.
    max_drop_rate, max_queue_per_replica, min_utilization,
    scale_up_step, scale_down_step:
        ``reactive`` policy thresholds (``tier_aware`` shares the first
        three).
    target_utilization, deadband:
        ``target_utilization`` / ``predictive`` policy set-point.
    horizon_ms:
        ``predictive`` forecast horizon.  None (the default) derives it at
        build time: the scaled group's ``startup_delay_ms`` plus one
        control interval — the soonest a decision made now can serve.
    schedule, period_ms:
        ``scheduled`` policy plan: ``(start_ms, replicas)`` entries, with
        an optional cycle period for diurnal plans.
    """

    policy: str = "reactive"
    control_interval_ms: float = 50.0
    window_ms: float | None = None
    min_replicas: int = 1
    max_replicas: int = 8
    up_cooldown_ms: float = 0.0
    down_cooldown_ms: float = 0.0
    group: str | None = None
    groups: tuple[str, ...] = ()
    cost_budget: float | None = None
    max_drop_rate: float = 0.05
    max_queue_per_replica: float = 4.0
    min_utilization: float = 0.40
    scale_up_step: int = 1
    scale_down_step: int = 1
    target_utilization: float = 0.60
    deadband: float = 0.10
    horizon_ms: float | None = None
    schedule: tuple[tuple[float, int], ...] = ()
    period_ms: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedule", _as_tuple(self.schedule))
        object.__setattr__(self, "groups", tuple(self.groups))
        _require(
            self.policy in SCALING_POLICY_NAMES,
            f"unknown scaling policy {self.policy!r}; "
            f"expected one of {SCALING_POLICY_NAMES}",
        )
        _require(
            self.control_interval_ms > 0, "control_interval_ms must be positive"
        )
        if self.window_ms is not None:
            _require(self.window_ms > 0, "window_ms must be positive")
        _require(self.min_replicas > 0, "min_replicas must be positive")
        _require(
            self.max_replicas >= self.min_replicas,
            f"max_replicas ({self.max_replicas}) must be >= min_replicas "
            f"({self.min_replicas})",
        )
        _require(
            self.up_cooldown_ms >= 0 and self.down_cooldown_ms >= 0,
            "cooldowns must be non-negative",
        )
        if self.policy == "scheduled":
            _require(
                bool(self.schedule), "scheduled autoscalers need a schedule"
            )
        else:
            _require(
                not self.schedule,
                f"{self.policy} autoscalers take no schedule (got {self.schedule})",
            )
        if self.groups:
            _require(
                self.policy == "tier_aware",
                f"groups (multi-tier scaling) needs the tier_aware policy, "
                f"not {self.policy!r}",
            )
            _require(
                self.group is None,
                "pass either group or groups, not both",
            )
            _require(
                len(set(self.groups)) == len(self.groups),
                f"groups must be unique, got {self.groups}",
            )
        if self.cost_budget is not None:
            _require(
                self.policy == "tier_aware",
                f"cost_budget applies to the tier_aware policy, "
                f"not {self.policy!r}",
            )
            _require(self.cost_budget > 0, "cost_budget must be positive")
        if self.horizon_ms is not None:
            _require(
                self.policy == "predictive",
                f"horizon_ms applies to the predictive policy, "
                f"not {self.policy!r}",
            )
            _require(self.horizon_ms >= 0, "horizon_ms must be non-negative")
        # Building the policy validates its knobs at spec time, not at run
        # time; the instance is discarded.
        self.build_policy()

    # ------------------------------------------------------------- building
    def build_policy(self) -> ScalingPolicy:
        """The configured :class:`ScalingPolicy` instance."""
        if self.policy == "reactive":
            return make_policy(
                "reactive",
                max_drop_rate=self.max_drop_rate,
                max_queue_per_replica=self.max_queue_per_replica,
                min_utilization=self.min_utilization,
                scale_up_step=self.scale_up_step,
                scale_down_step=self.scale_down_step,
            )
        if self.policy == "target_utilization":
            return make_policy(
                "target_utilization",
                target_utilization=self.target_utilization,
                deadband=self.deadband,
            )
        if self.policy == "predictive":
            return make_policy(
                "predictive",
                horizon_ms=self.horizon_ms,
                target_utilization=self.target_utilization,
                deadband=self.deadband,
            )
        if self.policy == "tier_aware":
            return make_policy(
                "tier_aware",
                max_drop_rate=self.max_drop_rate,
                max_queue_per_replica=self.max_queue_per_replica,
                min_utilization=self.min_utilization,
            )
        return make_policy(
            "scheduled", schedule=self.schedule, period_ms=self.period_ms
        )

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "control_interval_ms": self.control_interval_ms,
            "window_ms": self.window_ms,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "up_cooldown_ms": self.up_cooldown_ms,
            "down_cooldown_ms": self.down_cooldown_ms,
            "group": self.group,
            "groups": list(self.groups),
            "cost_budget": self.cost_budget,
            "max_drop_rate": self.max_drop_rate,
            "max_queue_per_replica": self.max_queue_per_replica,
            "min_utilization": self.min_utilization,
            "scale_up_step": self.scale_up_step,
            "scale_down_step": self.scale_down_step,
            "target_utilization": self.target_utilization,
            "deadband": self.deadband,
            "horizon_ms": self.horizon_ms,
            "schedule": [list(entry) for entry in self.schedule],
            "period_ms": self.period_ms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AutoscalerSpec":
        payload: dict[str, Any] = dict(data)
        payload["schedule"] = _as_tuple(payload.get("schedule", ()))
        payload["groups"] = tuple(payload.get("groups", ()))
        return cls(**payload)


@dataclass(frozen=True)
class ObservabilitySpec:
    """Opt-in flight-recorder configuration (see :mod:`repro.serving.obs`).

    Absent (``observability: null``), the engine attaches no recorder and
    the run is bit-identical to a build without the obs package — the
    record-identity ladder's observability rung.
    """

    trace: bool = True
    """Attach a ``TraceRecorder``: ``SimulationResult.trace`` carries
    per-query lifecycle spans, replica timelines, provisioning segments
    and autoscaler decision records."""
    keep_metrics: bool = False
    """Keep the autoscaler's per-tick ``MetricsSnapshot`` history on
    ``SimulationResult.metrics`` (autoscaled runs only; a fixed pool has
    no control ticks to snapshot)."""
    metrics_interval_ms: float | None = None
    """Sampling interval of the trace-derived metrics timeseries exporter
    (``null``: one percent of the run's duration)."""

    def __post_init__(self) -> None:
        _require(
            self.trace or self.keep_metrics,
            "an ObservabilitySpec must enable trace or keep_metrics "
            "(use observability: null to turn observability off)",
        )
        if self.metrics_interval_ms is not None:
            _require(
                self.metrics_interval_ms > 0,
                "metrics_interval_ms must be positive",
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace": self.trace,
            "keep_metrics": self.keep_metrics,
            "metrics_interval_ms": self.metrics_interval_ms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObservabilitySpec":
        return cls(**dict(data))


@dataclass(frozen=True)
class RetryPolicy:
    """How the fault layer retries queries lost to crashes and failures.

    A lost query re-enters routing after an exponential backoff
    (``backoff_base_ms x backoff_multiplier^(attempt - 1)``), but only
    while the backoff still fits inside the query's deadline slack and the
    attempt budget — otherwise it drops with the ``"failed"`` reason.
    ``max_attempts: 1`` disables retries entirely (every lost query fails
    immediately), the fault-oblivious baseline configuration.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 1.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        _require(
            self.max_attempts >= 1,
            f"max_attempts must be >= 1, got {self.max_attempts}",
        )
        _require(
            self.backoff_base_ms > 0,
            f"backoff_base_ms must be positive, got {self.backoff_base_ms}",
        )
        _require(
            self.backoff_multiplier >= 1.0,
            f"backoff_multiplier must be >= 1.0, got {self.backoff_multiplier}",
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base_ms": self.backoff_base_ms,
            "backoff_multiplier": self.backoff_multiplier,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault injection (see :mod:`repro.serving.engine.faults`).

    Absent (``faults: null``), the engine attaches no fault injector and
    the run is bit-identical to the fault-free engine — the
    record-identity ladder's fault rung.  When set, seeded fault processes
    run against the replica pool:

    Attributes
    ----------
    seed:
        Seed of the fault processes (independent of the scenario seed —
        the same workload can be replayed under different fault draws).
    crash_mtbf_ms:
        Mean time between crashes per covered replica (exponential).  A
        crashed replica loses its in-flight batch and queued backlog
        (lost queries go through the retry policy) and never recovers;
        replacements provision through the autoscaler, if any.  ``null``
        disables crashes.
    straggler_mtbf_ms, straggler_duration_ms, straggler_factor:
        Straggle intervals per covered replica: onset gaps ~
        Exp(``straggler_mtbf_ms``), durations ~
        Exp(``straggler_duration_ms``); while straggling, every batch the
        replica picks up runs ``straggler_factor`` times slower.
        ``straggler_mtbf_ms: null`` disables stragglers.
    dispatch_failure_prob:
        Probability each dispatch pickup errors transiently (the batch
        goes through the retry policy; the replica stays healthy).
    retry:
        The :class:`RetryPolicy` lost queries go through.
    brownout_threshold:
        Failed fraction of the pool at which brownout degradation starts
        relaxing dispatched queries' accuracy floors (``null`` disables
        brownout).  Each further threshold-multiple of pressure steps the
        ladder once more, up to ``brownout_max_steps`` steps of
        ``brownout_accuracy_step`` relaxation each; replacement capacity
        joining the pool steps the ladder back down.
    brownout_accuracy_step, brownout_max_steps:
        The brownout ladder's per-step accuracy relaxation and cap.
    groups:
        Replica group names the fault processes cover (empty: every
        group).  Every name must match a replica group.
    """

    seed: int = 0
    crash_mtbf_ms: float | None = None
    straggler_mtbf_ms: float | None = None
    straggler_duration_ms: float = 0.0
    straggler_factor: float = 1.0
    dispatch_failure_prob: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    brownout_threshold: float | None = None
    brownout_accuracy_step: float = 0.01
    brownout_max_steps: int = 3
    groups: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.retry is None:
            # ``"retry": null`` in JSON means "default retries", mirroring
            # the nullable batching field.
            object.__setattr__(self, "retry", RetryPolicy())
        elif isinstance(self.retry, Mapping):
            object.__setattr__(self, "retry", RetryPolicy.from_dict(self.retry))
        object.__setattr__(self, "groups", tuple(self.groups))
        if self.crash_mtbf_ms is not None:
            _require(
                self.crash_mtbf_ms > 0,
                f"crash_mtbf_ms must be positive, got {self.crash_mtbf_ms}",
            )
        if self.straggler_mtbf_ms is not None:
            _require(
                self.straggler_mtbf_ms > 0,
                f"straggler_mtbf_ms must be positive, got {self.straggler_mtbf_ms}",
            )
            _require(
                self.straggler_duration_ms > 0,
                "straggler_duration_ms must be positive when stragglers are "
                f"enabled, got {self.straggler_duration_ms}",
            )
            _require(
                self.straggler_factor >= 1.0,
                f"straggler_factor must be >= 1.0, got {self.straggler_factor}",
            )
        _require(
            0.0 <= self.dispatch_failure_prob < 1.0,
            f"dispatch_failure_prob must be in [0, 1), "
            f"got {self.dispatch_failure_prob}",
        )
        if self.brownout_threshold is not None:
            _require(
                0.0 < self.brownout_threshold <= 1.0,
                f"brownout_threshold must be in (0, 1], "
                f"got {self.brownout_threshold}",
            )
            _require(
                self.brownout_accuracy_step > 0,
                "brownout_accuracy_step must be positive, "
                f"got {self.brownout_accuracy_step}",
            )
            _require(
                self.brownout_max_steps >= 1,
                f"brownout_max_steps must be >= 1, got {self.brownout_max_steps}",
            )
        _require(
            len(set(self.groups)) == len(self.groups),
            f"fault groups must be unique, got {self.groups}",
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "crash_mtbf_ms": self.crash_mtbf_ms,
            "straggler_mtbf_ms": self.straggler_mtbf_ms,
            "straggler_duration_ms": self.straggler_duration_ms,
            "straggler_factor": self.straggler_factor,
            "dispatch_failure_prob": self.dispatch_failure_prob,
            "retry": self.retry.to_dict(),
            "brownout_threshold": self.brownout_threshold,
            "brownout_accuracy_step": self.brownout_accuracy_step,
            "brownout_max_steps": self.brownout_max_steps,
            "groups": list(self.groups),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        payload: dict[str, Any] = dict(data)
        if payload.get("retry") is not None:
            payload["retry"] = RetryPolicy.from_dict(payload["retry"])
        else:
            payload.pop("retry", None)
        payload["groups"] = tuple(payload.get("groups", ()))
        return cls(**payload)


def _workload_to_json(spec: WorkloadSpec) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for f in fields(spec):
        value = getattr(spec, f.name)
        if isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def _workload_from_json(data: Mapping[str, Any]) -> WorkloadSpec:
    data = {k: _as_tuple(v) for k, v in dict(data).items()}
    return WorkloadSpec(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable serving scenario.

    The one object :func:`repro.serving.api.run_scenario` needs: replica
    pool(s), routing and admission at the engine level, the constraint
    workload, and the arrival process.

    Attributes
    ----------
    name:
        Scenario name (also names the generated query trace).
    supernet_name:
        SuperNet family every backend serves.
    policy, cache_update_period:
        Scenario-wide defaults, overridable per replica group.
    replica_groups:
        One or more :class:`ReplicaGroupSpec`; mixed groups form a
        heterogeneous pool.
    router, admission:
        Engine-level routing (``round_robin`` / ``jsq`` / ``least_loaded``)
        and admission (``admit_all`` / ``drop_expired``) policies.
    workload:
        Constraint-stream spec.  ``accuracy_range`` / ``latency_range_ms``
        of None are resolved at build time from the pool's feasible ranges.
    arrivals:
        Arrival process spec.
    autoscaler:
        Optional :class:`AutoscalerSpec`.  ``None`` keeps the pool fixed —
        the scenario is record-identical to the pre-autoscaling engine
        path.  When set, the engine runs the control plane over the named
        replica group: telemetry, policy evaluation every control interval,
        replica cloning and drain-then-retire.
    num_queries:
        Stream length override (None keeps ``workload.num_queries``).
    dispatch_time_scheduling:
        Passed through to the engine (False reproduces the legacy
        precomputed open-loop mode).
    seed:
        Scenario seed: the workload seed and the default backend seed.
    fast_path:
        Opt into the engine's fast event loop: the trace stays in numpy
        constraint buffers (queries materialize lazily at dispatch) and
        arrivals are consumed through an array-backed event queue.  Records
        and results are bit-identical to the reference path — ``false``
        (the default) keeps the reference loop.
    shard:
        Opt into sharded simulation: with state-independent routing
        (``round_robin``) and no autoscaler, arrival ``i`` goes to replica
        ``i mod N`` regardless of pool state, so each replica's timeline is
        simulated independently and the per-shard records are merged
        deterministically — bit-identical to the unsharded run.  Rejected
        at validation for routers/autoscalers that couple replicas.
    shard_workers:
        Worker processes for sharded simulation (requires ``shard``).
        ``null``/1 runs shards sequentially in-process; ``N > 1`` fans them
        out via ``multiprocessing`` (backends must be picklable).
    observability:
        Optional :class:`ObservabilitySpec`.  ``None`` (the default)
        attaches no flight recorder and the run is bit-identical to a
        build without observability; when set, ``SimulationResult.trace``
        (and optionally ``.metrics``) carry the recorded run.  Recorded
        sharded runs execute their shards sequentially (still
        bit-identical) so span order stays deterministic.
    faults:
        Optional :class:`FaultSpec`.  ``None`` (the default) attaches no
        fault injector and the run is bit-identical to the fault-free
        engine; when set, seeded crash / straggler / dispatch-failure
        processes run against the pool, lost queries go through the retry
        policy, and (optionally) brownout degradation relaxes accuracy
        floors under capacity loss.  Incompatible with ``shard``: retries
        re-route lost queries across replicas, which couples the shards.
    """

    name: str = "scenario"
    supernet_name: str = "ofa_resnet50"
    policy: Policy = Policy.STRICT_ACCURACY
    cache_update_period: int = 4
    replica_groups: tuple[ReplicaGroupSpec, ...] = (ReplicaGroupSpec(),)
    router: str = "round_robin"
    admission: str = "admit_all"
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    arrivals: ArrivalSpec = field(
        default_factory=lambda: ArrivalSpec(kind="poisson", rate_per_ms=0.1)
    )
    autoscaler: AutoscalerSpec | None = None
    num_queries: int | None = None
    dispatch_time_scheduling: bool = True
    seed: int = 0
    fast_path: bool = False
    shard: bool = False
    shard_workers: int | None = None
    observability: ObservabilitySpec | None = None
    faults: FaultSpec | None = None

    def __post_init__(self) -> None:
        if isinstance(self.policy, str):
            object.__setattr__(self, "policy", Policy(self.policy))
        object.__setattr__(self, "replica_groups", tuple(self.replica_groups))
        _require(bool(self.replica_groups), "a scenario needs at least one replica group")
        named = [g.name for g in self.replica_groups if g.name is not None]
        _require(
            len(set(named)) == len(named),
            f"replica group names must be unique, got {named}",
        )
        _require(self.cache_update_period > 0, "cache_update_period must be positive")
        if self.num_queries is not None:
            _require(self.num_queries > 0, "num_queries must be positive")
        if self.autoscaler is not None:
            names = [g.name for g in self.replica_groups]
            if self.autoscaler.group is not None:
                _require(
                    self.autoscaler.group in names,
                    f"autoscaler.group {self.autoscaler.group!r} names no "
                    f"replica group (groups: {names})",
                )
            for name in self.autoscaler.groups:
                _require(
                    name in names,
                    f"autoscaler.groups entry {name!r} names no replica "
                    f"group (groups: {names})",
                )
        if self.faults is not None:
            names = [g.name for g in self.replica_groups]
            for name in self.faults.groups:
                _require(
                    name in names,
                    f"faults.groups entry {name!r} names no replica "
                    f"group (groups: {names})",
                )
            _require(
                not self.shard,
                "shard is incompatible with fault injection: retries "
                "re-route lost queries across replicas, which couples "
                "the shards",
            )
        if self.shard:
            _require(
                self.router == "round_robin",
                f"shard needs state-independent routing (round_robin), "
                f"not {self.router!r}: sharded replicas cannot see each "
                "other's load",
            )
            _require(
                self.autoscaler is None,
                "shard is incompatible with an autoscaler: the control "
                "plane couples every replica's timeline",
            )
        if self.shard_workers is not None:
            _require(
                self.shard,
                "shard_workers only applies to sharded simulation "
                "(set shard: true)",
            )
            _require(
                self.shard_workers >= 1,
                f"shard_workers must be >= 1, got {self.shard_workers}",
            )

    # ------------------------------------------------------------- derived
    @property
    def num_replicas(self) -> int:
        return sum(g.count for g in self.replica_groups)

    @property
    def effective_num_queries(self) -> int:
        return self.num_queries if self.num_queries is not None else self.workload.num_queries

    def group_policy(self, group: ReplicaGroupSpec) -> Policy:
        return group.policy if group.policy is not None else self.policy

    def group_cache_update_period(self, group: ReplicaGroupSpec) -> int:
        if group.cache_update_period is not None:
            return group.cache_update_period
        return self.cache_update_period

    def group_seed(self, group: ReplicaGroupSpec) -> int:
        return group.seed if group.seed is not None else self.seed

    def scaled_groups(self) -> tuple[ReplicaGroupSpec, ...]:
        """The replica groups the autoscaler manages, in declaration order.

        Multi-tier autoscalers (``autoscaler.groups``) scale several named
        groups; otherwise the single named ``autoscaler.group`` (or the
        first group) is scaled.  Requires an autoscaler.
        """
        if self.autoscaler is None:
            raise ValueError("the scenario has no autoscaler")
        if self.autoscaler.groups:
            wanted = set(self.autoscaler.groups)
            return tuple(g for g in self.replica_groups if g.name in wanted)
        if self.autoscaler.group is None:
            return (self.replica_groups[0],)
        return tuple(
            g for g in self.replica_groups if g.name == self.autoscaler.group
        )

    def scaled_group(self) -> ReplicaGroupSpec:
        """The single replica group the autoscaler manages."""
        groups = self.scaled_groups()
        if len(groups) != 1:
            raise ValueError(
                "the autoscaler scales several groups; use scaled_groups()"
            )
        return groups[0]

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe dict that :meth:`from_dict` inverts exactly."""
        return {
            "name": self.name,
            "supernet_name": self.supernet_name,
            "policy": self.policy.value,
            "cache_update_period": self.cache_update_period,
            "replica_groups": [g.to_dict() for g in self.replica_groups],
            "router": self.router,
            "admission": self.admission,
            "workload": _workload_to_json(self.workload),
            "arrivals": self.arrivals.to_dict(),
            "autoscaler": (
                None if self.autoscaler is None else self.autoscaler.to_dict()
            ),
            "num_queries": self.num_queries,
            "dispatch_time_scheduling": self.dispatch_time_scheduling,
            "seed": self.seed,
            "fast_path": self.fast_path,
            "shard": self.shard,
            "shard_workers": self.shard_workers,
            "observability": (
                None if self.observability is None else self.observability.to_dict()
            ),
            "faults": None if self.faults is None else self.faults.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        payload: dict[str, Any] = dict(data)
        if "policy" in payload:
            payload["policy"] = Policy(payload["policy"])
        if "replica_groups" in payload:
            payload["replica_groups"] = tuple(
                ReplicaGroupSpec.from_dict(g) for g in payload["replica_groups"]
            )
        if "workload" in payload:
            payload["workload"] = _workload_from_json(payload["workload"])
        if "arrivals" in payload:
            payload["arrivals"] = ArrivalSpec.from_dict(payload["arrivals"])
        if payload.get("autoscaler") is not None:
            payload["autoscaler"] = AutoscalerSpec.from_dict(payload["autoscaler"])
        if payload.get("observability") is not None:
            payload["observability"] = ObservabilitySpec.from_dict(
                payload["observability"]
            )
        if payload.get("faults") is not None:
            payload["faults"] = FaultSpec.from_dict(payload["faults"])
        return cls(**payload)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def override(self, path: str, value: Any) -> "ScenarioSpec":
        """A copy with one dotted-path field replaced (CLI ``--override``).

        ``path`` addresses the serialized form, so list indices work:
        ``"arrivals.rate_per_ms"``, ``"replica_groups.0.count"``,
        ``"workload.pattern"``, ``"num_queries"``.
        """
        return self.override_many([(path, value)])

    def override_many(
        self, overrides: "Sequence[tuple[str, Any]]"
    ) -> "ScenarioSpec":
        """A copy with several dotted-path fields replaced *atomically*.

        All overrides are applied to the serialized form before the spec is
        re-validated once, so interdependent fields can change together —
        e.g. switching ``autoscaler.policy`` to ``scheduled`` *and* setting
        ``autoscaler.schedule`` in one step, where either override alone
        would be rejected.
        """
        data = self.to_dict()
        for path, value in overrides:
            _apply_override(data, path, value)
        return type(self).from_dict(data)


def scenario_schema() -> dict[str, Any]:
    """Machine-readable reference of the scenario JSON format.

    Returns the serialized *defaults* of every spec (each key of the
    ``defaults`` sections is exactly a key of the corresponding JSON
    object) plus the closed ``enums`` each string field accepts.  This is
    what ``python -m repro schema`` prints, and what the docs sync test
    holds ``docs/scenario-schema.md`` against — the prose reference cannot
    silently drift from the dataclasses.
    """
    return {
        "defaults": {
            "scenario": ScenarioSpec().to_dict(),
            "replica_group": ReplicaGroupSpec().to_dict(),
            "batching": BatchingSpec().to_dict(),
            "workload": _workload_to_json(WorkloadSpec()),
            "arrivals": ArrivalSpec(kind="poisson", rate_per_ms=0.1).to_dict(),
            "autoscaler": AutoscalerSpec().to_dict(),
            "observability": ObservabilitySpec().to_dict(),
            "faults": FaultSpec().to_dict(),
            "retry": RetryPolicy().to_dict(),
        },
        "enums": {
            "policy": [p.value for p in Policy],
            "router": list(ROUTER_NAMES),
            "admission": list(ADMISSION_NAMES),
            "replica_groups[].kind": list(BACKEND_KINDS),
            "replica_groups[].discipline": list(DISCIPLINE_NAMES),
            "replica_groups[].batching.policy": list(BATCHING_POLICIES),
            "workload.pattern": list(PATTERNS),
            "arrivals.kind": list(ARRIVAL_KINDS),
            "autoscaler.policy": list(SCALING_POLICY_NAMES),
        },
    }
