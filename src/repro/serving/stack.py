"""SUSHI: the vertically integrated serving stack.

Wires the three components together exactly as Fig. 4 describes: queries
enter with (accuracy, latency) constraints, SushiSched consults SushiAbs (the
latency table) to pick the SubNet and — every ``Q`` queries — the next cached
SubGraph; SushiAccel (the analytic accelerator model plus its Persistent
Buffer) then serves the query and enacts the caching decision.

The stack serves *one query at a time* through :meth:`SushiStack.serve_query`
— the interface the discrete-event engine dispatches against, optionally with
the query's remaining latency budget once queueing delay is known.
:meth:`SushiStack.serve` is the closed-loop convenience over a whole trace;
it batches SubNet selection one caching window at a time (a single numpy
feasibility mask per window) while producing records identical to the
per-query path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.persistent_buffer import CachedSubGraph, PersistentBuffer
from repro.accelerator.platforms import ANALYTIC_DEFAULT, PlatformConfig
from repro.core.candidates import CandidateSet, build_candidate_set
from repro.core.latency_table import LatencyTable
from repro.core.metrics import QueryRecord
from repro.core.policies import Policy, select_subnet
from repro.core.scheduler import SchedulerDecision, SushiSched
from repro.serving.query import Query, QueryTrace
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.subnet import SubNet
from repro.supernet.supernet import SuperNet
from repro.supernet.zoo import load_supernet, paper_pareto_subnets


@dataclass(frozen=True)
class SushiStackConfig:
    """Configuration of a SUSHI serving stack instance.

    Attributes
    ----------
    supernet_name:
        Which SuperNet family to serve (``"ofa_resnet50"`` / ``"ofa_mobilenetv3"``).
    platform:
        Accelerator platform configuration.
    policy:
        Scheduling policy (STRICT_ACCURACY or STRICT_LATENCY).
    cache_update_period:
        ``Q``, the number of queries between caching decisions.
    candidate_set_size:
        Target ``|S|`` (None keeps the structural candidates only).
    seed:
        Seed for the scheduler's random initial cache state.
    """

    supernet_name: str = "ofa_resnet50"
    platform: PlatformConfig = ANALYTIC_DEFAULT
    policy: Policy = Policy.STRICT_ACCURACY
    cache_update_period: int = 4
    candidate_set_size: int | None = None
    seed: int = 0


class SushiStack:
    """The full SUSHI stack: SushiSched + SushiAbs + SushiAccel (+ PB)."""

    def __init__(
        self,
        config: SushiStackConfig | None = None,
        *,
        supernet: SuperNet | None = None,
        subnets: Sequence[SubNet] | None = None,
        accel: SushiAccelModel | None = None,
        accuracy_model: AccuracyModel | None = None,
        candidates: CandidateSet | None = None,
        table: LatencyTable | None = None,
    ) -> None:
        self.config = config or SushiStackConfig()
        self.supernet = supernet or load_supernet(self.config.supernet_name)
        self.subnets = list(subnets) if subnets is not None else paper_pareto_subnets(self.supernet)
        self.accel = accel or SushiAccelModel(self.config.platform)
        self.accuracy_model = accuracy_model or AccuracyModel(self.supernet)

        pb_capacity = max(self.accel.pb_capacity_bytes, 1)
        self.candidates = candidates or build_candidate_set(
            self.subnets,
            capacity_bytes=pb_capacity,
            max_size=self.config.candidate_set_size,
        )
        self.table = table or LatencyTable.build(
            self.subnets,
            self.candidates,
            latency_fn=self.accel.subnet_latency_ms,
            accuracy_fn=self.accuracy_model.accuracy,
        )
        rng = np.random.default_rng(self.config.seed)
        self.scheduler = SushiSched(
            self.table,
            self.supernet,
            policy=self.config.policy,
            cache_update_period=self.config.cache_update_period,
            rng=rng,
        )
        self.pb: PersistentBuffer = self.accel.make_persistent_buffer()
        # Per-caching-window memo of (breakdown, hit ratio, hit bytes) by
        # SubNet index: the PB is immutable between caching decisions, so
        # every query of a window served on the same SubNet reuses the first
        # query's accelerator evaluation (bit-identical records and stats).
        self._window_memo: dict[int, tuple] = {}
        self._window_memo_gen = -1
        # Enact the scheduler's initial (random) cache state on the hardware.
        self._enact_cache(self.scheduler.cache_state_idx)

    # ------------------------------------------------------------ serving
    def _enact_cache(self, candidate_idx: int) -> float:
        """Load candidate SubGraph ``candidate_idx`` into the PB; return ms spent."""
        subgraph = self.candidates[candidate_idx]
        fetched = self.pb.load(subgraph)
        return self.accel.cache_load_latency_ms(fetched)

    def _window_breakdown(self, subnet_idx: int) -> tuple:
        """Memoized (breakdown, hit ratio, hit bytes) at the current PB state."""
        if self.pb.generation != self._window_memo_gen:
            self._window_memo.clear()
            self._window_memo_gen = self.pb.generation
        memo = self._window_memo.get(subnet_idx)
        if memo is None:
            subnet = self.subnets[subnet_idx]
            memo = (
                self.accel.subnet_breakdown(subnet, self.pb.cached),
                self.pb.vector_hit_ratio(subnet),
                self.pb.hit_bytes(subnet),
            )
            self._window_memo[subnet_idx] = memo
        return memo

    def _enact(self, query: Query, decision: SchedulerDecision) -> QueryRecord:
        """Serve one scheduled query on the accelerator and enact caching."""
        subnet = self.subnets[decision.subnet_idx]
        breakdown, hit_ratio, hit_bytes = self._window_breakdown(decision.subnet_idx)
        self.pb.record_serve(subnet, hit_bytes=hit_bytes)

        cache_load_ms = 0.0
        if decision.cache_updated:
            # The caching decision is enacted after the query completes;
            # its cost is amortized off the query critical path but
            # recorded for accounting.
            cache_load_ms = self._enact_cache(decision.next_cache_state_idx)

        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name=subnet.name,
            served_accuracy=self.accuracy_model.accuracy(subnet),
            served_latency_ms=breakdown.latency_ms,
            cache_hit_ratio=hit_ratio,
            offchip_energy_mj=breakdown.offchip_energy_mj,
            cache_load_ms=cache_load_ms,
        )

    def serve_query(
        self, query: Query, *, effective_latency_constraint_ms: float | None = None
    ) -> QueryRecord:
        """Serve one query at dispatch time; returns its serving record.

        ``effective_latency_constraint_ms`` is the query's *remaining*
        latency budget once queueing delay is known (passed by the serving
        engine); the scheduler reacts to it, while the record still reports
        the query's nominal constraint for SLO accounting.
        """
        decision = self.scheduler.schedule(
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_budget_ms(
                effective_latency_constraint_ms
            ),
        )
        return self._enact(query, decision)

    def serve_dispatch_batch(
        self,
        queries: Sequence[Query],
        *,
        effective_latency_constraints_ms: Sequence[float] | None = None,
    ) -> list[QueryRecord]:
        """Serve a weight-sharing batch with one shared SubNet decision.

        The scheduler makes a *single* decision satisfying the batch's
        strictest accuracy constraint and its tightest remaining latency
        budget; the whole batch then runs as one accelerator evaluation: the
        SubNet's weight traffic (off-chip fetch + on-chip staging) is paid
        once and reused by every member — exactly the amortization SGS weight
        sharing enables — while compute and activation traffic scale with the
        batch.  Every returned record reports the *batch* evaluation latency
        (members complete together), and at most one cache load is enacted,
        carried by the last member's record.  A one-query batch is identical
        to :meth:`serve_query`.

        Because the latency table stores *single-query* latencies, the shared
        decision plans against the tightest budget divided by the batch size:
        a SubNet whose table latency fits that scaled budget has a batch
        evaluation (weights counted once, not per member) that fits the
        original budget — the conservative, SLO-safe direction.

        Energy is recorded per evaluation as in the per-query path; off-chip
        weight-energy amortization across the batch is not modeled, so
        batched energy totals are conservative (over-) estimates.
        """
        if not queries:
            raise ValueError("a dispatch batch needs at least one query")
        accuracy = max(q.accuracy_constraint for q in queries)
        if effective_latency_constraints_ms is None:
            latency = min(q.latency_constraint_ms for q in queries)
        else:
            if len(effective_latency_constraints_ms) != len(queries):
                raise ValueError(
                    "effective_latency_constraints_ms must match the batch length"
                )
            latency = min(effective_latency_constraints_ms)
        decision = self.scheduler.schedule_shared(
            accuracy_constraint=accuracy,
            latency_constraint_ms=latency / len(queries),
            batch_size=len(queries),
        )

        subnet = self.subnets[decision.subnet_idx]
        breakdown, hit_ratio, hit_bytes = self._window_breakdown(decision.subnet_idx)
        for _ in queries:
            self.pb.record_serve(subnet, hit_bytes=hit_bytes)
        components = breakdown.components
        if len(queries) == 1:
            # Bit-identical to serve_query: total_ms directly, not the
            # algebraically equal shared + 1 x (total - shared).
            batch_ms = components.total_ms
        else:
            shared_ms = components.offchip_weight_ms + components.onchip_weight_ms
            batch_ms = shared_ms + len(queries) * (components.total_ms - shared_ms)

        cache_load_ms = 0.0
        if decision.cache_updated:
            cache_load_ms = self._enact_cache(decision.next_cache_state_idx)

        served_accuracy = self.accuracy_model.accuracy(subnet)
        last = len(queries) - 1
        return [
            QueryRecord(
                query_index=query.index,
                accuracy_constraint=query.accuracy_constraint,
                latency_constraint_ms=query.latency_constraint_ms,
                subnet_name=subnet.name,
                served_accuracy=served_accuracy,
                served_latency_ms=batch_ms,
                cache_hit_ratio=hit_ratio,
                offchip_energy_mj=breakdown.offchip_energy_mj,
                cache_load_ms=cache_load_ms if i == last else 0.0,
            )
            for i, query in enumerate(queries)
        ]

    def serve(self, trace: QueryTrace) -> list[QueryRecord]:
        """Serve a query stream end to end; returns per-query records.

        SubNet selection is batched one caching window at a time (vectorized
        feasibility masks); the records are identical to calling
        :meth:`serve_query` per query.
        """
        decisions = self.scheduler.schedule_batch(
            trace.accuracy_constraints, trace.latency_constraints_ms
        )
        return [self._enact(query, d) for query, d in zip(trace, decisions)]

    def estimate_service_ms(self, query: Query) -> float:
        """Predicted service time of ``query`` at the current cache state.

        Side-effect free: consults the latency table without advancing the
        scheduler, so routers and queue disciplines can use it.
        """
        cache_idx = self.scheduler.cache_state_idx
        subnet_idx = select_subnet(
            self.table,
            self.config.policy,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            cache_state_idx=cache_idx,
        )
        return self.table.latency(subnet_idx, cache_idx)

    # ------------------------------------------------------------- state
    @property
    def cache_hit_ratio(self) -> float:
        """Byte-level PB hit ratio accumulated so far."""
        return self.pb.stats.byte_hit_ratio

    def reset(self) -> None:
        """Reset scheduler history and PB contents (keeps the latency table)."""
        self.scheduler.reset()
        self.pb = self.accel.make_persistent_buffer()
        self._window_memo.clear()
        self._window_memo_gen = -1
        self._enact_cache(self.scheduler.cache_state_idx)

    def clone(self, *, seed: int | None = None) -> "SushiStack":
        """An independent stack sharing this one's immutable substrate.

        The SuperNet, SubNet family, accelerator model, candidate set and
        latency table are shared (they are read-only); the clone gets its own
        scheduler and Persistent Buffer, so it evolves cache state
        independently — one clone per engine replica.
        """
        config = self.config if seed is None else replace(self.config, seed=seed)
        return SushiStack(
            config,
            supernet=self.supernet,
            subnets=self.subnets,
            accel=self.accel,
            accuracy_model=self.accuracy_model,
            candidates=self.candidates,
            table=self.table,
        )
