"""Request-log I/O for trace-replay arrivals (``ArrivalSpec(kind="trace")``).

Production-shaped workloads enter the simulator here: a request log is a
sequence of arrival timestamps (milliseconds), optionally annotated with a
per-request SLO (``slo_ms``) and/or accuracy floor (``accuracy_floor``).
Two on-disk formats are supported, chosen by file extension:

* **CSV** — a header row naming the columns, one request per data row.
* **JSONL** — one JSON object per line, keyed by the same column names.

Contracts:

* **Lossless round-trip** — :func:`write_csv_log` / :func:`write_jsonl_log`
  serialize every float through ``repr`` / ``json.dumps``, which round-trip
  IEEE doubles exactly, so ``read(write(log)) == log`` bit for bit.
* **Canonical order** — logs sort stably by timestamp on load (annotation
  columns travel with their row), so row ``i`` of a loaded log is always
  the ``i``-th arrival.
* **All-or-nothing columns** — an optional column is either present for
  every request or absent entirely; a partially filled column is a data
  error, reported at load time.

The **fitter** (:func:`fit_piecewise_poisson`) estimates a piecewise-Poisson
model plus burstiness statistics from a log's timestamps and emits a
shareable synthetic :class:`~repro.serving.spec.ArrivalSpec` recipe
(``kind="time_varying"``), so a measured trace can be published as a small
parametric workload instead of raw data — the ``repro trace fit`` command.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass
from typing import Any, Mapping, Sequence, TYPE_CHECKING

import numpy as np
import numpy.typing as npt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec imports us)
    from repro.serving.spec import ArrivalSpec

__all__ = [
    "ACCURACY_FIELD",
    "SLO_FIELD",
    "TIMESTAMP_FIELD",
    "TraceFit",
    "TraceLog",
    "fit_piecewise_poisson",
    "load_trace_log",
    "read_csv_log",
    "read_jsonl_log",
    "write_csv_log",
    "write_jsonl_log",
]

#: Required column: arrival timestamp in milliseconds.
TIMESTAMP_FIELD = "timestamp_ms"
#: Optional column: per-request latency SLO in milliseconds.
SLO_FIELD = "slo_ms"
#: Optional column: per-request accuracy floor, as a fraction in (0, 1).
ACCURACY_FIELD = "accuracy_floor"

_OPTIONAL_FIELDS = (SLO_FIELD, ACCURACY_FIELD)

#: Column name -> TraceLog attribute (only the timestamp column differs).
_ATTR_BY_FIELD = {
    TIMESTAMP_FIELD: "timestamps_ms",
    SLO_FIELD: "slo_ms",
    ACCURACY_FIELD: "accuracy_floor",
}


def _as_float64(values: Sequence[float] | npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    return np.asarray(values, dtype=np.float64)


@dataclass(frozen=True, eq=False)
class TraceLog:
    """An in-memory request log: timestamps plus optional annotations.

    Rows are canonicalized on construction: sorted stably by timestamp
    (annotations travel with their row) and validated — timestamps finite
    and non-negative, SLOs positive, accuracy floors in (0, 1).
    """

    timestamps_ms: npt.NDArray[np.float64]
    slo_ms: npt.NDArray[np.float64] | None = None
    accuracy_floor: npt.NDArray[np.float64] | None = None

    def __post_init__(self) -> None:
        ts = _as_float64(self.timestamps_ms)
        if ts.ndim != 1 or ts.size == 0:
            raise ValueError("a trace log needs at least one timestamp")
        if not np.all(np.isfinite(ts)):
            raise ValueError("trace timestamps must be finite")
        if float(ts.min()) < 0.0:
            raise ValueError("trace timestamps must be non-negative")
        order = np.argsort(ts, kind="stable")
        object.__setattr__(self, "timestamps_ms", ts[order])
        for name in _OPTIONAL_FIELDS:
            column = getattr(self, name)
            if column is None:
                continue
            col = _as_float64(column)
            if col.shape != ts.shape:
                raise ValueError(
                    f"{name} column has {col.size} values for {ts.size} "
                    "timestamps"
                )
            if not np.all(np.isfinite(col)):
                raise ValueError(f"{name} values must be finite")
            object.__setattr__(self, name, col[order])
        if self.slo_ms is not None and float(self.slo_ms.min()) <= 0.0:
            raise ValueError("slo_ms values must be positive")
        if self.accuracy_floor is not None:
            lo = float(self.accuracy_floor.min())
            hi = float(self.accuracy_floor.max())
            if not (0.0 < lo and hi < 1.0):
                raise ValueError("accuracy_floor values must lie in (0, 1)")

    def __len__(self) -> int:
        return int(self.timestamps_ms.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceLog):
            return NotImplemented
        for name in ("timestamps_ms",) + _OPTIONAL_FIELDS:
            mine, theirs = getattr(self, name), getattr(other, name)
            if (mine is None) != (theirs is None):
                return False
            if mine is not None and not np.array_equal(mine, theirs):
                return False
        return True

    def head(self, limit: int | None) -> "TraceLog":
        """The first ``limit`` arrivals (``None`` keeps the whole log)."""
        if limit is None or limit >= len(self):
            return self
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        return TraceLog(
            timestamps_ms=self.timestamps_ms[:limit],
            slo_ms=None if self.slo_ms is None else self.slo_ms[:limit],
            accuracy_floor=(
                None
                if self.accuracy_floor is None
                else self.accuracy_floor[:limit]
            ),
        )

    def columns(self) -> tuple[str, ...]:
        """The column names present, in canonical order."""
        names = [TIMESTAMP_FIELD]
        names.extend(f for f in _OPTIONAL_FIELDS if getattr(self, f) is not None)
        return tuple(names)

    def rows(self) -> list[dict[str, float]]:
        """One plain-float dict per request, in arrival order."""
        columns = self.columns()
        arrays = [
            getattr(self, _ATTR_BY_FIELD[name]).tolist() for name in columns
        ]
        return [dict(zip(columns, values)) for values in zip(*arrays)]


# ------------------------------------------------------------------ readers
def _log_from_rows(
    rows: list[Mapping[str, Any]], *, source: str
) -> TraceLog:
    if not rows:
        raise ValueError(f"{source}: empty trace log")
    first = rows[0]
    if TIMESTAMP_FIELD not in first:
        raise ValueError(
            f"{source}: trace logs need a {TIMESTAMP_FIELD!r} column, "
            f"got {sorted(first)}"
        )
    present = [f for f in _OPTIONAL_FIELDS if f in first]
    columns: dict[str, list[float]] = {
        name: [] for name in [TIMESTAMP_FIELD, *present]
    }
    for i, row in enumerate(rows):
        for name, values in columns.items():
            if name not in row or row[name] in (None, ""):
                raise ValueError(
                    f"{source}: row {i} is missing {name!r} (optional "
                    "columns must be present for every request or absent "
                    "entirely)"
                )
            try:
                values.append(float(row[name]))
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"{source}: row {i} field {name!r}: {row[name]!r} is "
                    "not a number"
                ) from exc
        extra = [
            f
            for f in _OPTIONAL_FIELDS
            if f in row and f not in columns
        ]
        if extra:
            raise ValueError(
                f"{source}: row {i} introduces {extra} midway (optional "
                "columns must be present for every request or absent "
                "entirely)"
            )
    return TraceLog(
        timestamps_ms=_as_float64(columns[TIMESTAMP_FIELD]),
        slo_ms=(
            _as_float64(columns[SLO_FIELD]) if SLO_FIELD in columns else None
        ),
        accuracy_floor=(
            _as_float64(columns[ACCURACY_FIELD])
            if ACCURACY_FIELD in columns
            else None
        ),
    )


def read_csv_log(path: str) -> TraceLog:
    """Load a CSV request log (header row + one request per data row)."""
    with open(path, "r", encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty trace log")
        unknown = [
            name
            for name in reader.fieldnames
            if name not in (TIMESTAMP_FIELD, *_OPTIONAL_FIELDS)
        ]
        if unknown:
            raise ValueError(
                f"{path}: unknown trace log columns {unknown}; expected a "
                f"subset of {[TIMESTAMP_FIELD, *_OPTIONAL_FIELDS]}"
            )
        rows: list[Mapping[str, Any]] = list(reader)
    return _log_from_rows(rows, source=path)


def read_jsonl_log(path: str) -> TraceLog:
    """Load a JSONL request log (one JSON object per line)."""
    rows: list[Mapping[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            if not isinstance(row, dict):
                raise ValueError(
                    f"{path}:{lineno}: each line must be a JSON object, "
                    f"got {type(row).__name__}"
                )
            rows.append(row)
    return _log_from_rows(rows, source=path)


def load_trace_log(
    path: str | os.PathLike[str], *, limit: int | None = None
) -> TraceLog:
    """Load a request log, dispatching on extension (.csv / .jsonl).

    ``limit`` keeps only the first ``limit`` arrivals *after* the canonical
    timestamp sort, matching ``ArrivalSpec.limit`` semantics.
    """
    path = os.fspath(path)
    lower = path.lower()
    if lower.endswith(".csv"):
        log = read_csv_log(path)
    elif lower.endswith((".jsonl", ".ndjson")):
        log = read_jsonl_log(path)
    else:
        raise ValueError(
            f"cannot infer trace log format of {path!r}; expected a "
            ".csv, .jsonl or .ndjson extension"
        )
    return log.head(limit)


# ------------------------------------------------------------------ writers
def write_csv_log(path: str, log: TraceLog) -> None:
    """Write a CSV request log that :func:`read_csv_log` inverts exactly."""
    columns = log.columns()
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(columns)
        for row in log.rows():
            # repr round-trips IEEE doubles exactly, so the written text
            # parses back to the same bits.
            writer.writerow([repr(row[name]) for name in columns])


def write_jsonl_log(path: str, log: TraceLog) -> None:
    """Write a JSONL request log that :func:`read_jsonl_log` inverts exactly."""
    with open(path, "w", encoding="utf-8") as fh:
        for row in log.rows():
            fh.write(json.dumps(row) + "\n")


# ------------------------------------------------------------------- fitter
@dataclass(frozen=True)
class TraceFit:
    """A piecewise-Poisson model fitted to a request log's timestamps.

    Attributes
    ----------
    num_events:
        Arrivals the fit was estimated from.
    span_ms:
        Time between the first and last arrival.
    nominal_rate_per_ms:
        Long-run mean rate, ``(num_events - 1) / span_ms`` (the inverse
        mean inter-arrival gap).
    cv_interarrival:
        Coefficient of variation of the inter-arrival gaps — the
        burstiness statistic (1.0 for a Poisson process, larger for
        bursty traffic, smaller for pacing).
    peak_to_mean:
        Peak fitted segment rate over the nominal rate.
    num_burst_windows:
        Estimation windows whose empirical rate exceeded twice the
        nominal rate (before adjacent-window merging).
    segments:
        ``(duration_ms, rate_per_ms)`` pairs — the recipe's piecewise
        rates, in time order, covering exactly ``span_ms``.
    """

    num_events: int
    span_ms: float
    nominal_rate_per_ms: float
    cv_interarrival: float
    peak_to_mean: float
    num_burst_windows: int
    segments: tuple[tuple[float, float], ...]

    def arrival_spec(self, *, seed: int = 0) -> "ArrivalSpec":
        """The shareable synthetic recipe: a ``time_varying`` ArrivalSpec."""
        from repro.serving.spec import ArrivalSpec

        return ArrivalSpec(kind="time_varying", segments=self.segments, seed=seed)

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_events": self.num_events,
            "span_ms": self.span_ms,
            "nominal_rate_per_ms": self.nominal_rate_per_ms,
            "cv_interarrival": self.cv_interarrival,
            "peak_to_mean": self.peak_to_mean,
            "num_burst_windows": self.num_burst_windows,
            "segments": [list(seg) for seg in self.segments],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceFit":
        payload: dict[str, Any] = dict(data)
        payload["segments"] = tuple(
            tuple(seg) for seg in payload.get("segments", ())
        )
        return cls(**payload)


def fit_piecewise_poisson(
    timestamps_ms: Sequence[float] | npt.NDArray[np.float64],
    *,
    max_segments: int = 8,
    merge_tolerance: float = 0.25,
) -> TraceFit:
    """Estimate a piecewise-Poisson arrival model from raw timestamps.

    The span between the first and last arrival is divided into up to
    ``max_segments`` equal windows; each window's empirical rate (with a
    half-count floor so empty windows stay positive) becomes a candidate
    segment, and adjacent windows whose rates agree within
    ``merge_tolerance`` (relative) are pooled — a constant-rate log
    collapses to a single segment, a flash crowd keeps its spike.
    """
    ts = _as_float64(timestamps_ms)
    if ts.ndim != 1 or ts.size < 2:
        raise ValueError("fitting needs at least two timestamps")
    if not np.all(np.isfinite(ts)):
        raise ValueError("trace timestamps must be finite")
    ts = np.sort(ts, kind="stable")
    rel = ts - ts[0]
    span = float(rel[-1])
    if span <= 0.0:
        raise ValueError("fitting needs a positive time span between arrivals")
    if max_segments < 1:
        raise ValueError(f"max_segments must be >= 1, got {max_segments}")
    if merge_tolerance < 0.0:
        raise ValueError(
            f"merge_tolerance must be non-negative, got {merge_tolerance}"
        )
    # Enough windows to see shape, enough arrivals per window to trust the
    # rate: ~25 expected arrivals per window, capped at max_segments.
    windows = int(min(max_segments, max(1, ts.size // 25)))
    counts, _ = np.histogram(rel, bins=windows, range=(0.0, span))
    width = span / windows
    nominal = (ts.size - 1) / span
    raw_rates = [max(float(c), 0.5) / width for c in counts]
    num_burst_windows = sum(1 for r in raw_rates if r > 2.0 * nominal)
    merged: list[list[float]] = []
    for rate in raw_rates:
        if merged:
            duration0, rate0 = merged[-1]
            if abs(rate - rate0) <= merge_tolerance * max(rate, rate0):
                pooled = (duration0 * rate0 + width * rate) / (duration0 + width)
                merged[-1] = [duration0 + width, pooled]
                continue
        merged.append([width, rate])
    segments = tuple((float(d), float(r)) for d, r in merged)
    gaps = np.diff(ts)
    mean_gap = float(gaps.mean())
    cv = float(gaps.std() / mean_gap) if mean_gap > 0.0 else 0.0
    peak = max(r for _, r in segments)
    return TraceFit(
        num_events=int(ts.size),
        span_ms=span,
        nominal_rate_per_ms=float(nominal),
        cv_interarrival=cv,
        peak_to_mean=float(peak / nominal),
        num_burst_windows=int(num_burst_windows),
        segments=segments,
    )
