"""Query-stream (workload) generators.

The paper evaluates SUSHI on streams of "random queries" whose accuracy and
latency constraints are drawn across the SuperNet family's feasible ranges
(Fig. 15/16), and motivates the work with applications whose constraints
*drift* over time (AV navigation of sparse vs dense terrain, ICU load).  This
module provides seeded generators for several such patterns:

* ``uniform``    — i.i.d. constraints over the feasible ranges (the paper's
                   random-query streams),
* ``phased``     — piecewise-constant phases (low-latency phase, then
                   high-accuracy phase, ...), modelling regime changes,
* ``drift``      — constraints that sweep smoothly from one end of the range
                   to the other,
* ``bursty``     — mostly relaxed constraints with occasional tight bursts.

All generators take an explicit seed so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, get_args

import numpy as np

from repro.serving.query import ArrayQueryTrace, Query, QueryTrace

Pattern = Literal["uniform", "phased", "drift", "bursty"]

#: All supported workload patterns (runtime counterpart of :data:`Pattern`).
PATTERNS: tuple[str, ...] = get_args(Pattern)


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a generated query stream.

    Attributes
    ----------
    num_queries:
        Stream length.
    accuracy_range:
        (min, max) accuracy constraints, as fractions.  ``None`` defers the
        choice: scenario builders (:mod:`repro.serving.api`) resolve it to
        the serving pool's feasible range at build time.
    latency_range_ms:
        (min, max) latency constraints in ms, or ``None`` to defer as above.
        Sensible explicit values depend on the SuperNet family and platform;
        use :func:`feasible_ranges_from_table` to derive them from a latency
        table.
    pattern:
        One of ``uniform``, ``phased``, ``drift``, ``bursty``.
    num_phases:
        Number of phases for the ``phased`` pattern.
    burst_fraction:
        Fraction of queries inside bursts for the ``bursty`` pattern.
    """

    num_queries: int = 200
    accuracy_range: tuple[float, float] | None = (0.75, 0.80)
    latency_range_ms: tuple[float, float] | None = (2.0, 20.0)
    pattern: Pattern = "uniform"
    num_phases: int = 4
    burst_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.num_queries <= 0:
            raise ValueError("num_queries must be positive")
        if self.accuracy_range is not None:
            lo, hi = self.accuracy_range
            if not (0.0 < lo <= hi < 1.0):
                raise ValueError(f"invalid accuracy_range {self.accuracy_range}")
        if self.latency_range_ms is not None:
            llo, lhi = self.latency_range_ms
            if not (0.0 < llo <= lhi):
                raise ValueError(f"invalid latency_range_ms {self.latency_range_ms}")
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}; expected one of {PATTERNS}")
        if self.num_phases <= 0:
            raise ValueError("num_phases must be positive")
        if not (0.0 <= self.burst_fraction <= 1.0):
            raise ValueError("burst_fraction must be in [0, 1]")

    @property
    def has_resolved_ranges(self) -> bool:
        return self.accuracy_range is not None and self.latency_range_ms is not None


def feasible_ranges_from_table(latency_table) -> tuple[tuple[float, float], tuple[float, float]]:
    """Derive (accuracy_range, latency_range_ms) from a SushiAbs latency table.

    The ranges span the table's own accuracy / latency extremes so generated
    constraints are always meaningful for the family being served.
    """
    accs = latency_table.accuracies
    lats = latency_table.latencies_ms
    return (
        (float(accs.min()), float(accs.max())),
        (float(lats.min()), float(lats.max())),
    )


class WorkloadGenerator:
    """Seeded generator of query traces."""

    def __init__(self, spec: WorkloadSpec, *, seed: int = 0) -> None:
        if not spec.has_resolved_ranges:
            raise ValueError(
                "workload spec has unresolved (None) constraint ranges; "
                "resolve them first, e.g. with feasible_ranges_from_table "
                "or by building the trace through repro.serving.api"
            )
        self.spec = spec
        self.seed = seed

    # ------------------------------------------------------------ patterns
    def _uniform(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        n = self.spec.num_queries
        acc = rng.uniform(*self.spec.accuracy_range, size=n)
        lat = rng.uniform(*self.spec.latency_range_ms, size=n)
        return acc, lat

    def _phased(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        n = self.spec.num_queries
        phases = self.spec.num_phases
        acc_lo, acc_hi = self.spec.accuracy_range
        lat_lo, lat_hi = self.spec.latency_range_ms
        acc = np.empty(n)
        lat = np.empty(n)
        boundaries = np.linspace(0, n, phases + 1).astype(int)
        for p in range(phases):
            lo, hi = boundaries[p], boundaries[p + 1]
            # Alternate between accuracy-hungry and latency-critical phases.
            if p % 2 == 0:
                acc_center = acc_hi - 0.1 * (acc_hi - acc_lo)
                lat_center = lat_hi - 0.2 * (lat_hi - lat_lo)
            else:
                acc_center = acc_lo + 0.1 * (acc_hi - acc_lo)
                lat_center = lat_lo + 0.2 * (lat_hi - lat_lo)
            acc[lo:hi] = np.clip(
                rng.normal(acc_center, 0.08 * (acc_hi - acc_lo), size=hi - lo),
                acc_lo,
                acc_hi,
            )
            lat[lo:hi] = np.clip(
                rng.normal(lat_center, 0.1 * (lat_hi - lat_lo), size=hi - lo),
                lat_lo,
                lat_hi,
            )
        return acc, lat

    def _drift(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        n = self.spec.num_queries
        acc_lo, acc_hi = self.spec.accuracy_range
        lat_lo, lat_hi = self.spec.latency_range_ms
        t = np.linspace(0.0, 1.0, n)
        acc = acc_lo + (acc_hi - acc_lo) * t
        lat = lat_hi - (lat_hi - lat_lo) * t
        acc = np.clip(acc + rng.normal(0, 0.05 * (acc_hi - acc_lo), size=n), acc_lo, acc_hi)
        lat = np.clip(lat + rng.normal(0, 0.05 * (lat_hi - lat_lo), size=n), lat_lo, lat_hi)
        return acc, lat

    def _bursty(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        n = self.spec.num_queries
        acc_lo, acc_hi = self.spec.accuracy_range
        lat_lo, lat_hi = self.spec.latency_range_ms
        acc = rng.uniform(acc_lo, acc_lo + 0.5 * (acc_hi - acc_lo), size=n)
        lat = rng.uniform(lat_lo + 0.5 * (lat_hi - lat_lo), lat_hi, size=n)
        in_burst = rng.random(n) < self.spec.burst_fraction
        # Bursts demand tight latency (transient overload → drop to faster nets).
        lat[in_burst] = rng.uniform(lat_lo, lat_lo + 0.2 * (lat_hi - lat_lo), size=in_burst.sum())
        acc[in_burst] = rng.uniform(acc_lo, acc_lo + 0.2 * (acc_hi - acc_lo), size=in_burst.sum())
        return acc, lat

    # ------------------------------------------------------------ generate
    def generate_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The stream's ``(accuracy, latency_ms)`` constraint arrays.

        Exactly the draws :meth:`generate` materializes into ``Query``
        objects — the array and object forms of one workload are
        bit-identical, which is what lets the engine's fast path skip eager
        materialization.
        """
        rng = np.random.default_rng(self.seed)
        pattern = self.spec.pattern
        if pattern == "uniform":
            return self._uniform(rng)
        if pattern == "phased":
            return self._phased(rng)
        if pattern == "drift":
            return self._drift(rng)
        if pattern == "bursty":
            return self._bursty(rng)
        raise ValueError(f"unknown pattern {pattern!r}")  # pragma: no cover

    def _overridden_arrays(
        self,
        accuracy_override: np.ndarray | None,
        latency_override: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The constraint draws, with replayed-log columns substituted.

        Trace-replay scenarios may carry per-request ``accuracy_floor`` /
        ``slo_ms`` columns (see :mod:`repro.serving.trace_io`); a present
        column replaces the corresponding synthetic draw wholesale, so the
        served constraints are exactly the recorded ones.  Overrides longer
        than the stream are truncated; shorter ones are an error.
        """
        acc, lat = self.generate_arrays()
        n = self.spec.num_queries
        for label, override in (
            ("accuracy", accuracy_override),
            ("latency", latency_override),
        ):
            if override is not None and len(override) < n:
                raise ValueError(
                    f"{label} override supplies {len(override)} values for "
                    f"{n} queries"
                )
        if accuracy_override is not None:
            acc = np.asarray(accuracy_override, dtype=np.float64)[:n]
        if latency_override is not None:
            lat = np.asarray(latency_override, dtype=np.float64)[:n]
        return acc, lat

    def generate(
        self,
        *,
        name: str | None = None,
        accuracy_override: np.ndarray | None = None,
        latency_override: np.ndarray | None = None,
    ) -> QueryTrace:
        """Produce a query trace according to the spec."""
        acc, lat = self._overridden_arrays(accuracy_override, latency_override)
        queries = tuple(
            Query(index=i, accuracy_constraint=float(a), latency_constraint_ms=float(l))
            for i, (a, l) in enumerate(zip(acc, lat))
        )
        return QueryTrace(
            queries=queries, name=name or f"{self.spec.pattern}-{self.seed}"
        )

    def generate_array_trace(
        self,
        *,
        name: str | None = None,
        accuracy_override: np.ndarray | None = None,
        latency_override: np.ndarray | None = None,
    ) -> ArrayQueryTrace:
        """The array-backed form of :meth:`generate` (lazy ``Query`` objects).

        Used by the engine fast path on long traces; materialized queries
        are bit-identical to :meth:`generate`'s.
        """
        acc, lat = self._overridden_arrays(accuracy_override, latency_override)
        return ArrayQueryTrace(
            acc, lat, name=name or f"{self.spec.pattern}-{self.seed}"
        )
