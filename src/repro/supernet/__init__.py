"""Weight-shared SuperNet substrate (OFA-style architectures).

This subpackage provides a structural model of weight-shared deep neural
networks (WS-DNNs) as used by the SUSHI paper: SuperNets with elastic depth,
expand-ratio and width dimensions, from which individual SubNets can be
materialized without weight duplication.  Only *structural* properties are
modelled (layer shapes, weight bytes, FLOPs, shared-weight overlap) plus a
calibrated accuracy model — no tensor math is performed, because none of the
paper's experiments require real forward passes.
"""

from repro.supernet.layers import ConvLayerSpec, LayerKind
from repro.supernet.blocks import BlockSpec, BottleneckBlock, MBConvBlock
from repro.supernet.stages import StageSpec
from repro.supernet.supernet import SuperNet, ElasticConfig
from repro.supernet.subnet import SubNet, SubNetConfig
from repro.supernet.weights import WeightStore, SharedWeightIndex
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.pareto import pareto_frontier, ParetoPoint
from repro.supernet.ofa_resnet50 import build_ofa_resnet50
from repro.supernet.ofa_mobilenetv3 import build_ofa_mobilenetv3
from repro.supernet.zoo import (
    load_supernet,
    paper_pareto_subnets,
    SUPPORTED_SUPERNETS,
)

__all__ = [
    "ConvLayerSpec",
    "LayerKind",
    "BlockSpec",
    "BottleneckBlock",
    "MBConvBlock",
    "StageSpec",
    "SuperNet",
    "ElasticConfig",
    "SubNet",
    "SubNetConfig",
    "WeightStore",
    "SharedWeightIndex",
    "AccuracyModel",
    "pareto_frontier",
    "ParetoPoint",
    "build_ofa_resnet50",
    "build_ofa_mobilenetv3",
    "load_supernet",
    "paper_pareto_subnets",
    "SUPPORTED_SUPERNETS",
]
