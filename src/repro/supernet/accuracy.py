"""Calibrated accuracy model for SubNets.

The paper's evaluation assigns each Pareto SubNet a fixed top-1 accuracy
(ResNet50 SubNets span roughly 75-80 %, MobileNetV3 SubNets 76-80 %).  Since
no experiment performs real inference, this reproduction uses a monotone,
saturating accuracy model over SubNet capacity (FLOPs and parameter bytes),
calibrated so the Pareto families land in the paper's accuracy ranges.

The model is deliberately simple and documented: ``acc = a_max - span *
exp(-k * normalized_capacity)``, with per-family calibration anchors.  It
preserves the two properties every experiment relies on:

1. accuracy is a fixed attribute of a SubNet (independent of caching), and
2. larger SubNets are monotonically more accurate, producing a non-trivial
   latency/accuracy Pareto frontier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.supernet.subnet import SubNet
from repro.supernet.supernet import SuperNet


@dataclass(frozen=True)
class AccuracyCalibration:
    """Family-specific anchors for the accuracy model.

    Attributes
    ----------
    min_accuracy:
        Top-1 accuracy (fraction) of the smallest SubNet in the family.
    max_accuracy:
        Top-1 accuracy of the largest SubNet.
    curvature:
        Shape parameter of the saturating exponential; larger values make the
        accuracy saturate faster with capacity.
    """

    min_accuracy: float
    max_accuracy: float
    curvature: float = 2.5

    def __post_init__(self) -> None:
        if not (0.0 < self.min_accuracy < self.max_accuracy < 1.0):
            raise ValueError(
                "calibration requires 0 < min_accuracy < max_accuracy < 1, got "
                f"{self.min_accuracy}, {self.max_accuracy}"
            )
        if self.curvature <= 0:
            raise ValueError("curvature must be positive")


# Calibrations matching the accuracy ranges visible in the paper's Fig. 10/15.
DEFAULT_CALIBRATIONS: dict[str, AccuracyCalibration] = {
    "ofa_resnet50": AccuracyCalibration(min_accuracy=0.750, max_accuracy=0.802),
    "ofa_mobilenetv3": AccuracyCalibration(min_accuracy=0.758, max_accuracy=0.803),
}


class AccuracyModel:
    """Maps SubNets of one SuperNet family to deterministic top-1 accuracy."""

    def __init__(
        self,
        supernet: SuperNet,
        calibration: AccuracyCalibration | None = None,
    ) -> None:
        self.supernet = supernet
        if calibration is None:
            calibration = DEFAULT_CALIBRATIONS.get(
                supernet.name, AccuracyCalibration(0.70, 0.80)
            )
        self.calibration = calibration
        # Capacity normalization anchors: the min / max SubNets of the family.
        from repro.supernet.subnet import max_subnet, min_subnet  # local import to avoid cycle

        self._min_capacity = self._capacity(min_subnet(supernet))
        self._max_capacity = self._capacity(max_subnet(supernet))
        if self._max_capacity <= self._min_capacity:
            raise ValueError(
                f"{supernet.name}: degenerate capacity range "
                f"[{self._min_capacity}, {self._max_capacity}]"
            )

    @staticmethod
    def _capacity(subnet: SubNet) -> float:
        """Scalar capacity proxy combining compute and parameters.

        The geometric mean of FLOPs and weight bytes captures that both depth
        (FLOPs-heavy) and width (parameter-heavy) scaling improve accuracy.
        """
        return math.sqrt(float(subnet.flops) * float(subnet.weight_bytes))

    def normalized_capacity(self, subnet: SubNet) -> float:
        """Capacity mapped to [0, 1] over the family's min/max SubNets."""
        cap = self._capacity(subnet)
        norm = (cap - self._min_capacity) / (self._max_capacity - self._min_capacity)
        return min(max(norm, 0.0), 1.0)

    def accuracy(self, subnet: SubNet) -> float:
        """Deterministic top-1 accuracy (fraction in (0, 1)) for a SubNet."""
        if subnet.supernet.name != self.supernet.name:
            raise ValueError(
                f"SubNet belongs to {subnet.supernet.name}, "
                f"model calibrated for {self.supernet.name}"
            )
        cal = self.calibration
        x = self.normalized_capacity(subnet)
        # Saturating exponential through the (0, min) and (1, max) anchors.
        span = cal.max_accuracy - cal.min_accuracy
        denom = 1.0 - math.exp(-cal.curvature)
        rise = (1.0 - math.exp(-cal.curvature * x)) / denom
        return cal.min_accuracy + span * rise

    def accuracy_percent(self, subnet: SubNet) -> float:
        """Accuracy expressed in percent (paper-style, e.g. ``78.3``)."""
        return 100.0 * self.accuracy(subnet)
