"""Elastic block definitions for OFA-style SuperNets.

The OFA SuperNets the paper serves (ResNet50 and MobileNetV3) are organized
as stages of repeated blocks.  A *block* is the unit selected by the elastic
depth dimension; within a block, the elastic expand-ratio and width dimensions
select how many kernels / channels of each convolution are active.

Two block families are modelled:

* :class:`BottleneckBlock` — ResNet bottleneck: 1x1 reduce, 3x3 conv,
  1x1 expand (plus an optional projection shortcut on the first block of a
  stage).
* :class:`MBConvBlock` — MobileNetV3 inverted residual: 1x1 expand,
  k x k depthwise, 1x1 project.

Blocks produce concrete :class:`~repro.supernet.layers.ConvLayerSpec` lists
for a given elastic configuration via :meth:`BlockSpec.materialize`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.supernet.layers import ConvLayerSpec, LayerKind


def _round_channels(value: float, divisor: int = 8) -> int:
    """Round a channel count to a hardware-friendly multiple of ``divisor``."""
    return max(divisor, int(math.ceil(value / divisor) * divisor))


@dataclass(frozen=True)
class BlockSpec:
    """Common interface for elastic blocks.

    Parameters
    ----------
    name:
        Unique block name (``"stage{i}.block{j}"``).
    in_channels:
        Channels entering the block (at maximum width).
    out_channels:
        Channels leaving the block (at maximum width).
    input_hw:
        Spatial size of the block's input activation.
    stride:
        Stride applied by the block's spatial convolution.
    kernel_size:
        Kernel size of the spatial convolution.
    max_expand_ratio:
        The largest supported expand ratio (elastic expand chooses a value
        <= this).
    """

    name: str
    in_channels: int
    out_channels: int
    input_hw: int
    stride: int = 1
    kernel_size: int = 3
    max_expand_ratio: float = 1.0

    @property
    def output_hw(self) -> int:
        return max(1, math.ceil(self.input_hw / self.stride))

    def materialize(
        self, *, expand_ratio: float, width_mult: float = 1.0
    ) -> list[ConvLayerSpec]:
        """Produce concrete layer specs for the given elastic settings."""
        raise NotImplementedError

    def max_layers(self) -> list[ConvLayerSpec]:
        """Layers at the maximal elastic configuration (defines the SuperNet)."""
        return self.materialize(expand_ratio=self.max_expand_ratio, width_mult=1.0)


@dataclass(frozen=True)
class BottleneckBlock(BlockSpec):
    """ResNet-style bottleneck with elastic expand ratio.

    The expand ratio controls the width of the internal 3x3 convolution
    (``mid = out_channels * expand_ratio / max_expand_ratio`` scaled by the
    standard 0.25 bottleneck factor), exactly mirroring how OFA-ResNet
    exposes its ``expand`` dimension.
    """

    bottleneck_factor: float = 0.25
    has_projection: bool = False

    def _mid_channels(self, expand_ratio: float, width_mult: float) -> int:
        base_mid = self.out_channels * self.bottleneck_factor
        scale = expand_ratio / self.max_expand_ratio if self.max_expand_ratio else 1.0
        return _round_channels(base_mid * scale * width_mult)

    def materialize(
        self, *, expand_ratio: float, width_mult: float = 1.0
    ) -> list[ConvLayerSpec]:
        if expand_ratio <= 0 or expand_ratio > self.max_expand_ratio:
            raise ValueError(
                f"{self.name}: expand_ratio {expand_ratio} outside "
                f"(0, {self.max_expand_ratio}]"
            )
        mid = self._mid_channels(expand_ratio, width_mult)
        in_ch = _round_channels(self.in_channels * width_mult)
        out_ch = _round_channels(self.out_channels * width_mult)
        layers = [
            ConvLayerSpec(
                name=f"{self.name}.conv1",
                kind=LayerKind.POINTWISE_CONV,
                in_channels=in_ch,
                out_channels=mid,
                kernel_size=1,
                input_hw=self.input_hw,
                stride=1,
            ),
            ConvLayerSpec(
                name=f"{self.name}.conv2",
                kind=LayerKind.CONV,
                in_channels=mid,
                out_channels=mid,
                kernel_size=self.kernel_size,
                input_hw=self.input_hw,
                stride=self.stride,
            ),
            ConvLayerSpec(
                name=f"{self.name}.conv3",
                kind=LayerKind.POINTWISE_CONV,
                in_channels=mid,
                out_channels=out_ch,
                kernel_size=1,
                input_hw=self.output_hw,
                stride=1,
            ),
        ]
        if self.has_projection:
            layers.append(
                ConvLayerSpec(
                    name=f"{self.name}.shortcut",
                    kind=LayerKind.POINTWISE_CONV,
                    in_channels=in_ch,
                    out_channels=out_ch,
                    kernel_size=1,
                    input_hw=self.input_hw,
                    stride=self.stride,
                )
            )
        return layers


@dataclass(frozen=True)
class MBConvBlock(BlockSpec):
    """MobileNetV3 inverted-residual block with elastic expand ratio.

    The expand ratio controls the width of the depthwise convolution's channel
    dimension (``mid = in_channels * expand_ratio``), as in OFA-MobileNetV3.
    """

    use_se: bool = False

    def _mid_channels(self, expand_ratio: float, width_mult: float) -> int:
        return _round_channels(self.in_channels * expand_ratio * width_mult)

    def materialize(
        self, *, expand_ratio: float, width_mult: float = 1.0
    ) -> list[ConvLayerSpec]:
        if expand_ratio <= 0 or expand_ratio > self.max_expand_ratio:
            raise ValueError(
                f"{self.name}: expand_ratio {expand_ratio} outside "
                f"(0, {self.max_expand_ratio}]"
            )
        mid = self._mid_channels(expand_ratio, width_mult)
        in_ch = _round_channels(self.in_channels * width_mult)
        out_ch = _round_channels(self.out_channels * width_mult)
        layers = []
        # The first MBConv of a network sometimes has expand ratio 1 and skips
        # the expansion pointwise conv; keep it whenever mid != in_ch.
        if mid != in_ch:
            layers.append(
                ConvLayerSpec(
                    name=f"{self.name}.expand",
                    kind=LayerKind.POINTWISE_CONV,
                    in_channels=in_ch,
                    out_channels=mid,
                    kernel_size=1,
                    input_hw=self.input_hw,
                    stride=1,
                )
            )
        layers.append(
            ConvLayerSpec(
                name=f"{self.name}.depthwise",
                kind=LayerKind.DEPTHWISE_CONV,
                in_channels=mid,
                out_channels=mid,
                kernel_size=self.kernel_size,
                input_hw=self.input_hw,
                stride=self.stride,
                groups=mid,
            )
        )
        if self.use_se:
            se_mid = _round_channels(mid / 4)
            layers.append(
                ConvLayerSpec(
                    name=f"{self.name}.se_reduce",
                    kind=LayerKind.POINTWISE_CONV,
                    in_channels=mid,
                    out_channels=se_mid,
                    kernel_size=1,
                    input_hw=1,
                    stride=1,
                )
            )
            layers.append(
                ConvLayerSpec(
                    name=f"{self.name}.se_expand",
                    kind=LayerKind.POINTWISE_CONV,
                    in_channels=se_mid,
                    out_channels=mid,
                    kernel_size=1,
                    input_hw=1,
                    stride=1,
                )
            )
        layers.append(
            ConvLayerSpec(
                name=f"{self.name}.project",
                kind=LayerKind.POINTWISE_CONV,
                in_channels=mid,
                out_channels=out_ch,
                kernel_size=1,
                input_hw=self.output_hw,
                stride=1,
            )
        )
        return layers


def block_weight_bytes(block: BlockSpec, *, expand_ratio: float, width_mult: float = 1.0) -> int:
    """Total weight bytes of a block at the given elastic configuration."""
    return sum(
        layer.weight_bytes
        for layer in block.materialize(expand_ratio=expand_ratio, width_mult=width_mult)
    )


def validate_block_chain(blocks: Sequence[BlockSpec]) -> None:
    """Check that consecutive blocks have compatible channel/spatial shapes."""
    for prev, nxt in zip(blocks, blocks[1:]):
        if prev.out_channels != nxt.in_channels:
            raise ValueError(
                f"block chain mismatch: {prev.name} outputs {prev.out_channels} "
                f"channels but {nxt.name} expects {nxt.in_channels}"
            )
        if prev.output_hw != nxt.input_hw:
            raise ValueError(
                f"block chain mismatch: {prev.name} outputs {prev.output_hw}px "
                f"but {nxt.name} expects {nxt.input_hw}px"
            )
