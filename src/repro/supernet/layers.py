"""Convolution-layer structural specifications.

A :class:`ConvLayerSpec` captures everything SUSHI's analytic models need to
know about a single convolution (or related) layer: tensor shapes, kernel
geometry, groups, stride and quantized data widths.  From those we derive
MACs/FLOPs, weight bytes, activation bytes and arithmetic intensity — the
quantities driving the roofline analysis (Fig. 2 / Fig. 11 of the paper) and
the accelerator latency model.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace


class LayerKind(str, enum.Enum):
    """Kinds of layers the structural model distinguishes.

    Only layers that move non-trivial amounts of data are modelled; cheap
    element-wise ops (activations, batch-norm folded into conv at inference
    time) are not represented separately.
    """

    CONV = "conv"
    DEPTHWISE_CONV = "depthwise_conv"
    POINTWISE_CONV = "pointwise_conv"
    LINEAR = "linear"
    POOL = "pool"

    def is_conv(self) -> bool:
        return self in (
            LayerKind.CONV,
            LayerKind.DEPTHWISE_CONV,
            LayerKind.POINTWISE_CONV,
        )


@dataclass(frozen=True)
class ConvLayerSpec:
    """Structural description of one convolution layer.

    Parameters
    ----------
    name:
        Unique layer name within its SuperNet (e.g. ``"stage2.block1.conv2"``).
    kind:
        The :class:`LayerKind`.
    in_channels, out_channels:
        Channel counts of the input / output activation tensors.
    kernel_size:
        Spatial kernel size (square kernels assumed, as in OFA supernets).
    input_hw:
        Spatial height == width of the input activation (square inputs).
    stride:
        Convolution stride.
    groups:
        Number of groups; ``groups == in_channels`` models depthwise conv.
    weight_bits, act_bits:
        Quantized data width in bits (the paper uses int8 weights/activations).
    """

    name: str
    kind: LayerKind
    in_channels: int
    out_channels: int
    kernel_size: int
    input_hw: int
    stride: int = 1
    groups: int = 1
    weight_bits: int = 8
    act_bits: int = 8

    def __post_init__(self) -> None:
        if self.in_channels <= 0 or self.out_channels <= 0:
            raise ValueError(f"{self.name}: channel counts must be positive")
        if self.kernel_size <= 0:
            raise ValueError(f"{self.name}: kernel_size must be positive")
        if self.input_hw <= 0:
            raise ValueError(f"{self.name}: input_hw must be positive")
        if self.stride <= 0:
            raise ValueError(f"{self.name}: stride must be positive")
        if self.groups <= 0:
            raise ValueError(f"{self.name}: groups must be positive")
        if self.in_channels % self.groups != 0:
            raise ValueError(
                f"{self.name}: in_channels ({self.in_channels}) not divisible "
                f"by groups ({self.groups})"
            )
        if self.out_channels % self.groups != 0:
            raise ValueError(
                f"{self.name}: out_channels ({self.out_channels}) not divisible "
                f"by groups ({self.groups})"
            )

    # ------------------------------------------------------------------ shapes
    @property
    def output_hw(self) -> int:
        """Output spatial size assuming 'same' padding (as OFA convs use)."""
        return max(1, math.ceil(self.input_hw / self.stride))

    @property
    def weight_count(self) -> int:
        """Number of weight scalars in this layer."""
        if self.kind == LayerKind.LINEAR:
            return self.in_channels * self.out_channels
        per_group_in = self.in_channels // self.groups
        return self.out_channels * per_group_in * self.kernel_size * self.kernel_size

    @property
    def weight_bytes(self) -> int:
        """Quantized weight footprint in bytes."""
        return math.ceil(self.weight_count * self.weight_bits / 8)

    @property
    def input_act_count(self) -> int:
        return self.in_channels * self.input_hw * self.input_hw

    @property
    def output_act_count(self) -> int:
        return self.out_channels * self.output_hw * self.output_hw

    @property
    def input_act_bytes(self) -> int:
        return math.ceil(self.input_act_count * self.act_bits / 8)

    @property
    def output_act_bytes(self) -> int:
        return math.ceil(self.output_act_count * self.act_bits / 8)

    # ------------------------------------------------------------------ work
    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one forward pass of this layer."""
        if self.kind == LayerKind.POOL:
            return 0
        if self.kind == LayerKind.LINEAR:
            return self.in_channels * self.out_channels
        per_group_in = self.in_channels // self.groups
        return (
            self.output_hw
            * self.output_hw
            * self.out_channels
            * per_group_in
            * self.kernel_size
            * self.kernel_size
        )

    @property
    def flops(self) -> int:
        """FLOPs = 2 x MACs (multiply + add), the convention used in the paper."""
        return 2 * self.macs

    @property
    def total_data_bytes(self) -> int:
        """Bytes moved if nothing is cached: weights + iActs + oActs."""
        return self.weight_bytes + self.input_act_bytes + self.output_act_bytes

    def arithmetic_intensity(self, *, cached_weight_bytes: int = 0) -> float:
        """FLOPs per byte of off-chip traffic.

        Parameters
        ----------
        cached_weight_bytes:
            Weight bytes already resident on chip (e.g. in the Persistent
            Buffer).  SGS raises arithmetic intensity by removing these bytes
            from the denominator; passing 0 gives the plain (Fig. 2) value.
        """
        if self.kind == LayerKind.POOL:
            return 0.0
        cached = min(max(cached_weight_bytes, 0), self.weight_bytes)
        bytes_moved = self.total_data_bytes - cached
        if bytes_moved <= 0:
            return float("inf")
        return self.flops / bytes_moved

    # ------------------------------------------------------------------ misc
    def with_channels(self, in_channels: int, out_channels: int) -> "ConvLayerSpec":
        """Return a copy with different channel counts (used by elastic width).

        Depthwise layers keep ``groups == in_channels`` consistent.
        """
        groups = self.groups
        if self.kind == LayerKind.DEPTHWISE_CONV:
            groups = in_channels
        return replace(
            self,
            in_channels=in_channels,
            out_channels=out_channels,
            groups=groups,
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name}: {self.kind.value} {self.in_channels}->{self.out_channels} "
            f"k{self.kernel_size} s{self.stride} @{self.input_hw}x{self.input_hw} "
            f"({self.weight_bytes / 1e3:.1f} KB weights, {self.flops / 1e6:.1f} MFLOPs)"
        )


@dataclass(frozen=True)
class LayerSlice:
    """A (possibly partial) view of a layer's weights.

    SubGraphs are built from layer slices: a slice keeps the layer identity
    but may include only the first ``kernels`` output kernels and the first
    ``channels`` input channels, matching how OFA orders important kernels /
    channels first.  ``kernels == out_channels`` and ``channels ==
    in_channels`` means the full layer.
    """

    layer: ConvLayerSpec
    kernels: int
    channels: int
    _bytes: int = field(init=False, default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not (0 <= self.kernels <= self.layer.out_channels):
            raise ValueError(
                f"{self.layer.name}: kernels {self.kernels} out of range "
                f"[0, {self.layer.out_channels}]"
            )
        if not (0 <= self.channels <= self.layer.in_channels):
            raise ValueError(
                f"{self.layer.name}: channels {self.channels} out of range "
                f"[0, {self.layer.in_channels}]"
            )

    @property
    def weight_bytes(self) -> int:
        """Byte footprint of the sliced weights."""
        full = self.layer
        if full.kind == LayerKind.LINEAR:
            count = self.kernels * self.channels
        elif full.kind == LayerKind.DEPTHWISE_CONV:
            # Depthwise weights are per-channel; the slice is bounded by the
            # smaller of the kernel/channel selections.
            count = min(self.kernels, self.channels) * full.kernel_size**2
        else:
            per_group_in = max(1, self.channels // full.groups) if full.groups > 1 else self.channels
            count = self.kernels * per_group_in * full.kernel_size**2
        return math.ceil(count * full.weight_bits / 8)

    @property
    def is_empty(self) -> bool:
        return self.kernels == 0 or self.channels == 0

    @property
    def is_full(self) -> bool:
        return (
            self.kernels == self.layer.out_channels
            and self.channels == self.layer.in_channels
        )

    def intersect(self, other: "LayerSlice") -> "LayerSlice":
        """Largest common slice of the same layer (kernel/channel-wise min)."""
        if self.layer.name != other.layer.name:
            raise ValueError(
                f"cannot intersect slices of different layers "
                f"({self.layer.name} vs {other.layer.name})"
            )
        return LayerSlice(
            layer=self.layer,
            kernels=min(self.kernels, other.kernels),
            channels=min(self.channels, other.channels),
        )

    def contains(self, other: "LayerSlice") -> bool:
        """True if ``other`` is a (non-strict) sub-slice of this slice."""
        return (
            self.layer.name == other.layer.name
            and self.kernels >= other.kernels
            and self.channels >= other.channels
        )
