"""OFA-MobileNetV3 SuperNet definition.

Structural reproduction of the weight-shared MobileNetV3-Large supernet
("MobV3" in the paper).  Elastic dimensions follow OFA:

* elastic depth: 2-4 inverted-residual blocks per stage,
* elastic expand ratio: {3, 4, 6},
* width multiplier fixed at 1.0 (OFA-MobileNetV3 does not expose width).

SubNet weight footprints (int8) span roughly 2-5 MB, consistent with the
paper's reported [2.97 MB, 4.74 MB] range with about 2.9 MB shared between
every SubNet.
"""

from __future__ import annotations

from repro.supernet.blocks import MBConvBlock
from repro.supernet.layers import ConvLayerSpec, LayerKind
from repro.supernet.stages import HeadSpec, StageSpec, StemSpec
from repro.supernet.supernet import ElasticConfig, SuperNet

#: Per-stage (in_channels, out_channels, kernel_size, stride, use_se, input_hw).
STAGE_SETTINGS: tuple[tuple[int, int, int, int, bool, int], ...] = (
    (16, 24, 3, 2, False, 112),
    (24, 40, 5, 2, True, 56),
    (40, 80, 3, 2, False, 28),
    (80, 112, 3, 1, True, 14),
    (112, 160, 5, 2, True, 14),
)

#: Maximum number of MBConv blocks per stage.
MAX_DEPTH_PER_STAGE: int = 4

#: Elastic dimension choices (OFA-MobileNetV3).
ELASTIC = ElasticConfig(
    depth_choices=(2, 3, 4),
    expand_choices=(3.0, 4.0, 6.0),
    width_choices=(1.0,),
)


def _build_stem(input_hw: int) -> StemSpec:
    """MobileNetV3 stem: 3x3 stride-2 conv plus the first (expand=1) MBConv."""
    return StemSpec(
        layers=(
            ConvLayerSpec(
                name="stem.conv",
                kind=LayerKind.CONV,
                in_channels=3,
                out_channels=16,
                kernel_size=3,
                input_hw=input_hw,
                stride=2,
            ),
            ConvLayerSpec(
                name="stem.mbconv_dw",
                kind=LayerKind.DEPTHWISE_CONV,
                in_channels=16,
                out_channels=16,
                kernel_size=3,
                input_hw=input_hw // 2,
                stride=1,
                groups=16,
            ),
            ConvLayerSpec(
                name="stem.mbconv_pw",
                kind=LayerKind.POINTWISE_CONV,
                in_channels=16,
                out_channels=16,
                kernel_size=1,
                input_hw=input_hw // 2,
                stride=1,
            ),
        )
    )


def _build_head() -> HeadSpec:
    """MobileNetV3 head: final 1x1 expansion conv plus the classifier."""
    final_channels = STAGE_SETTINGS[-1][1]
    return HeadSpec(
        layers=(
            ConvLayerSpec(
                name="head.final_expand",
                kind=LayerKind.POINTWISE_CONV,
                in_channels=final_channels,
                out_channels=960,
                kernel_size=1,
                input_hw=7,
                stride=1,
            ),
            ConvLayerSpec(
                name="head.fc",
                kind=LayerKind.LINEAR,
                in_channels=960,
                out_channels=1000,
                kernel_size=1,
                input_hw=1,
            ),
        )
    )


def _build_stage(
    index: int,
    in_channels: int,
    out_channels: int,
    kernel_size: int,
    stride: int,
    use_se: bool,
    input_hw: int,
) -> StageSpec:
    """One elastic MobileNetV3 stage of ``MAX_DEPTH_PER_STAGE`` MBConv blocks."""
    blocks = []
    output_hw = max(1, -(-input_hw // stride))
    for j in range(MAX_DEPTH_PER_STAGE):
        is_first = j == 0
        blocks.append(
            MBConvBlock(
                name=f"stage{index + 1}.block{j + 1}",
                in_channels=in_channels if is_first else out_channels,
                out_channels=out_channels,
                input_hw=input_hw if is_first else output_hw,
                stride=stride if is_first else 1,
                kernel_size=kernel_size,
                max_expand_ratio=ELASTIC.max_expand,
                use_se=use_se,
            )
        )
    return StageSpec(name=f"stage{index + 1}", blocks=tuple(blocks), min_depth=2)


def build_ofa_mobilenetv3(input_hw: int = 224) -> SuperNet:
    """Construct the OFA-MobileNetV3 SuperNet structural model."""
    stages = []
    for i, (in_ch, out_ch, k, s, se, hw) in enumerate(STAGE_SETTINGS):
        stages.append(_build_stage(i, in_ch, out_ch, k, s, se, hw))
    return SuperNet(
        "ofa_mobilenetv3",
        stem=_build_stem(input_hw),
        stages=stages,
        head=_build_head(),
        elastic=ELASTIC,
        input_hw=input_hw,
    )
