"""OFA-ResNet50 SuperNet definition.

Structural reproduction of the weight-shared ResNet50 supernet used by the
paper (Cai et al., "Once-for-All", 2019; weight-shared version referenced in
SUSHI Section 5.1).  The elastic dimensions follow OFA-ResNet:

* elastic depth: 2-4 bottleneck blocks per stage,
* elastic expand ratio: {0.2, 0.25, 0.35} scaling the bottleneck width,
* elastic width multiplier: {0.65, 0.8, 1.0}.

The resulting SubNet weight footprints (int8) span roughly 8-28 MB, matching
the paper's reported [7.58 MB, 27.47 MB] range, with the smallest SubNet's
weights (shared by every other SubNet) around 7.5 MB.
"""

from __future__ import annotations

from repro.supernet.blocks import BottleneckBlock
from repro.supernet.layers import ConvLayerSpec, LayerKind
from repro.supernet.stages import HeadSpec, StageSpec, StemSpec
from repro.supernet.supernet import ElasticConfig, SuperNet

#: Channel width of each ResNet50 stage (at width multiplier 1.0).
STAGE_CHANNELS: tuple[int, ...] = (256, 512, 1024, 2048)

#: Spatial resolution entering each stage for a 224x224 input.
STAGE_RESOLUTIONS: tuple[int, ...] = (56, 28, 14, 7)

#: Maximum number of bottleneck blocks per stage.
MAX_DEPTH_PER_STAGE: int = 4

#: Elastic dimension choices (OFA-ResNet50).
ELASTIC = ElasticConfig(
    depth_choices=(2, 3, 4),
    expand_choices=(0.2, 0.25, 0.35),
    width_choices=(0.65, 0.8, 1.0),
)


def _build_stem(input_hw: int) -> StemSpec:
    """ResNet50 stem: a 7x7 stride-2 convolution (batch-norm folded)."""
    return StemSpec(
        layers=(
            ConvLayerSpec(
                name="stem.conv",
                kind=LayerKind.CONV,
                in_channels=3,
                out_channels=64,
                kernel_size=7,
                input_hw=input_hw,
                stride=2,
            ),
        )
    )


def _build_head() -> HeadSpec:
    """ResNet50 head: global pooling (free) + 1000-way classifier."""
    return HeadSpec(
        layers=(
            ConvLayerSpec(
                name="head.fc",
                kind=LayerKind.LINEAR,
                in_channels=STAGE_CHANNELS[-1],
                out_channels=1000,
                kernel_size=1,
                input_hw=1,
            ),
        )
    )


def _build_stage(
    index: int, in_channels: int, out_channels: int, input_hw: int
) -> StageSpec:
    """One elastic ResNet stage of ``MAX_DEPTH_PER_STAGE`` bottleneck blocks."""
    blocks = []
    # Stage 1 keeps 56px (stride 1); later stages downsample on their first block.
    first_stride = 1 if index == 0 else 2
    block_input_hw = input_hw if index == 0 else input_hw * 2
    for j in range(MAX_DEPTH_PER_STAGE):
        is_first = j == 0
        blocks.append(
            BottleneckBlock(
                name=f"stage{index + 1}.block{j + 1}",
                in_channels=in_channels if is_first else out_channels,
                out_channels=out_channels,
                input_hw=block_input_hw if is_first else input_hw,
                stride=first_stride if is_first else 1,
                kernel_size=3,
                max_expand_ratio=ELASTIC.max_expand,
                has_projection=is_first,
            )
        )
    return StageSpec(name=f"stage{index + 1}", blocks=tuple(blocks), min_depth=2)


def build_ofa_resnet50(input_hw: int = 224) -> SuperNet:
    """Construct the OFA-ResNet50 SuperNet structural model."""
    stages = []
    prev_channels = 64
    for i, (channels, hw) in enumerate(zip(STAGE_CHANNELS, STAGE_RESOLUTIONS)):
        stages.append(_build_stage(i, prev_channels, channels, hw))
        prev_channels = channels
    return SuperNet(
        "ofa_resnet50",
        stem=_build_stem(input_hw),
        stages=stages,
        head=_build_head(),
        elastic=ELASTIC,
        input_hw=input_hw,
    )
