"""Latency/accuracy Pareto frontier extraction.

The paper serves a sequence of SubNets drawn from the Pareto frontier of the
latency/accuracy trade-off (6 for ResNet50, 7 for MobileNetV3).  This module
provides the generic frontier computation used by the model zoo and by the
scheduler's feasibility analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.supernet.subnet import SubNet


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the latency/accuracy trade-off space."""

    subnet: SubNet
    latency_ms: float
    accuracy: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True if this point is no worse in both objectives and better in one."""
        no_worse = self.latency_ms <= other.latency_ms and self.accuracy >= other.accuracy
        better = self.latency_ms < other.latency_ms or self.accuracy > other.accuracy
        return no_worse and better


def pareto_frontier(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Return the non-dominated subset, sorted by ascending latency.

    Ties in latency keep only the highest-accuracy point; the result is
    strictly increasing in both latency and accuracy (a usable frontier for
    the scheduler's argmin/argmax selections).
    """
    pts = sorted(points, key=lambda p: (p.latency_ms, -p.accuracy))
    frontier: list[ParetoPoint] = []
    best_acc = float("-inf")
    for p in pts:
        if p.accuracy > best_acc:
            frontier.append(p)
            best_acc = p.accuracy
    return frontier


def build_pareto_points(
    subnets: Sequence[SubNet],
    latency_fn: Callable[[SubNet], float],
    accuracy_fn: Callable[[SubNet], float],
) -> list[ParetoPoint]:
    """Evaluate latency/accuracy for each SubNet and wrap into ParetoPoints."""
    return [
        ParetoPoint(subnet=sn, latency_ms=latency_fn(sn), accuracy=accuracy_fn(sn))
        for sn in subnets
    ]


def frontier_coverage(
    frontier: Sequence[ParetoPoint], candidates: Sequence[ParetoPoint]
) -> float:
    """Fraction of candidate points that lie on (or equal) the frontier.

    A diagnostic used in tests: the model-zoo Pareto families should be fully
    non-dominated (coverage == 1.0 when candidates are the family itself).
    """
    if not candidates:
        return 1.0
    frontier_set = {(p.subnet.name, p.latency_ms, p.accuracy) for p in frontier}
    hits = sum(
        1
        for c in candidates
        if (c.subnet.name, c.latency_ms, c.accuracy) in frontier_set
        or not any(f.dominates(c) for f in frontier)
    )
    return hits / len(candidates)
