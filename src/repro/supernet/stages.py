"""Stage definitions: groups of repeated elastic blocks.

A *stage* groups ``max_depth`` blocks that share output channel width and
spatial resolution.  The elastic depth dimension selects the top ``k`` blocks
of each stage (OFA keeps the first blocks and drops the tail), so a stage is
the natural unit over which depth elasticity is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.supernet.blocks import BlockSpec, validate_block_chain
from repro.supernet.layers import ConvLayerSpec


@dataclass(frozen=True)
class StageSpec:
    """A stage of a SuperNet: ``max_depth`` repeated elastic blocks.

    Parameters
    ----------
    name:
        Stage name, e.g. ``"stage3"``.
    blocks:
        Blocks in order.  The first block may downsample (stride > 1) and
        change channel width; the remaining blocks preserve shape.
    min_depth:
        The smallest number of blocks the elastic depth dimension may select.
    """

    name: str
    blocks: tuple[BlockSpec, ...]
    min_depth: int = 2

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ValueError(f"{self.name}: a stage needs at least one block")
        if not (1 <= self.min_depth <= len(self.blocks)):
            raise ValueError(
                f"{self.name}: min_depth {self.min_depth} outside "
                f"[1, {len(self.blocks)}]"
            )
        validate_block_chain(self.blocks)

    @property
    def max_depth(self) -> int:
        return len(self.blocks)

    @property
    def depth_choices(self) -> tuple[int, ...]:
        """Valid elastic depth values for this stage."""
        return tuple(range(self.min_depth, self.max_depth + 1))

    @property
    def in_channels(self) -> int:
        return self.blocks[0].in_channels

    @property
    def out_channels(self) -> int:
        return self.blocks[-1].out_channels

    @property
    def input_hw(self) -> int:
        return self.blocks[0].input_hw

    @property
    def output_hw(self) -> int:
        return self.blocks[-1].output_hw

    def select(self, depth: int) -> tuple[BlockSpec, ...]:
        """Return the top ``depth`` blocks (what elastic depth activates)."""
        if depth not in self.depth_choices:
            raise ValueError(
                f"{self.name}: depth {depth} not in valid choices {self.depth_choices}"
            )
        return self.blocks[:depth]

    def materialize(
        self,
        *,
        depth: int,
        expand_ratio: float,
        width_mult: float = 1.0,
    ) -> list[ConvLayerSpec]:
        """Concrete layer list of the stage at the given elastic settings."""
        layers: list[ConvLayerSpec] = []
        for block in self.select(depth):
            layers.extend(
                block.materialize(expand_ratio=expand_ratio, width_mult=width_mult)
            )
        return layers

    def max_layers(self) -> list[ConvLayerSpec]:
        """Layers of the stage at its maximal configuration."""
        layers: list[ConvLayerSpec] = []
        for block in self.blocks:
            layers.extend(block.max_layers())
        return layers


@dataclass(frozen=True)
class StemSpec:
    """The fixed (non-elastic) stem layers preceding the elastic stages."""

    layers: tuple[ConvLayerSpec, ...] = field(default_factory=tuple)

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)


@dataclass(frozen=True)
class HeadSpec:
    """The fixed (non-elastic) head layers (final convs / classifier)."""

    layers: tuple[ConvLayerSpec, ...] = field(default_factory=tuple)

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)


def stage_names(stages: Sequence[StageSpec]) -> list[str]:
    """Names of all stages in order (convenience for reporting)."""
    return [stage.name for stage in stages]
