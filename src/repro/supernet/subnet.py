"""SubNet: a servable slice of a SuperNet.

A SubNet is the unit the scheduler activates to serve a query.  It is defined
by an elastic configuration (per-stage depths, expand ratio, width multiplier)
and materialized as an ordered mapping of layer slices over the owning
SuperNet's maximal layers.  SubNets expose the structural quantities the rest
of the stack consumes: per-layer shapes for the accelerator model, weight
bytes for cache accounting, FLOPs for the accuracy model, and the
``[K1, C1, ..., KN, CN]`` vector encoding used by SushiSched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping, Sequence

import numpy as np

from repro.supernet.layers import ConvLayerSpec, LayerSlice
from repro.supernet.supernet import SuperNet


@dataclass(frozen=True)
class SubNetConfig:
    """Elastic configuration selecting one SubNet out of a SuperNet.

    Attributes
    ----------
    depths:
        Per-stage depth (number of active blocks), one entry per stage.
    expand_ratio:
        The expand ratio applied to every active block.
    width_mult:
        Global width multiplier.
    name:
        Optional human-readable label (e.g. ``"A"`` ... ``"F"`` as the paper
        labels its Pareto SubNets).
    """

    depths: tuple[int, ...]
    expand_ratio: float
    width_mult: float = 1.0
    name: str = ""

    def label(self) -> str:
        if self.name:
            return self.name
        depth_str = "".join(str(d) for d in self.depths)
        return f"d{depth_str}-e{self.expand_ratio:g}-w{self.width_mult:g}"


class SubNet:
    """A materialized SubNet of a :class:`~repro.supernet.supernet.SuperNet`."""

    def __init__(self, supernet: SuperNet, config: SubNetConfig) -> None:
        supernet.validate_config(config.depths, config.expand_ratio, config.width_mult)
        self.supernet = supernet
        self.config = config
        self._slices = supernet.slices_for(
            depths=config.depths,
            expand_ratio=config.expand_ratio,
            width_mult=config.width_mult,
        )
        # Keep slices in network order for deterministic iteration.
        order = supernet.layer_index
        self._ordered_names = sorted(self._slices, key=order)

    # ------------------------------------------------------------ identity
    @property
    def name(self) -> str:
        return self.config.label()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubNet({self.supernet.name}/{self.name}, "
            f"{self.num_layers} layers, {self.weight_bytes / 1e6:.2f} MB)"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SubNet):
            return NotImplemented
        return self.supernet.name == other.supernet.name and self.config == other.config

    def __hash__(self) -> int:
        return hash((self.supernet.name, self.config))

    # ------------------------------------------------------------ structure
    @property
    def layer_slices(self) -> dict[str, LayerSlice]:
        """Mapping layer name -> active slice, in arbitrary order."""
        return dict(self._slices)

    @property
    def ordered_slices(self) -> list[LayerSlice]:
        """Active slices in network order."""
        return [self._slices[name] for name in self._ordered_names]

    @property
    def layer_names(self) -> list[str]:
        return list(self._ordered_names)

    @property
    def num_layers(self) -> int:
        return len(self._slices)

    def active_layers(self) -> list[ConvLayerSpec]:
        """Concrete layer specs at the SubNet's (sliced) channel counts.

        These carry the *activated* in/out channel counts so the accelerator
        model computes the SubNet's true FLOPs and data movement, not the
        maximal SuperNet's.
        """
        layers = []
        for name in self._ordered_names:
            sl = self._slices[name]
            layers.append(sl.layer.with_channels(sl.channels, sl.kernels))
        return layers

    # ------------------------------------------------------------ quantities
    @cached_property
    def weight_bytes(self) -> int:
        """Total weight bytes activated by this SubNet."""
        return sum(sl.weight_bytes for sl in self._slices.values())

    @cached_property
    def macs(self) -> int:
        return sum(layer.macs for layer in self.active_layers())

    @cached_property
    def flops(self) -> int:
        return 2 * self.macs

    @cached_property
    def total_act_bytes(self) -> int:
        return sum(
            layer.input_act_bytes + layer.output_act_bytes
            for layer in self.active_layers()
        )

    # ------------------------------------------------------------- encoding
    def encode(self) -> np.ndarray:
        """Vector encoding ``[K1, C1, ..., KN, CN]`` over the SuperNet layers.

        Layers dropped by elastic depth contribute zeros, so every SubNet (and
        SubGraph) of the same SuperNet encodes to the same dimensionality —
        a requirement for the scheduler's running average and distance
        computations (paper Fig. 6).
        """
        n = self.supernet.num_layers
        vec = np.zeros(2 * n, dtype=np.float64)
        for name, sl in self._slices.items():
            idx = self.supernet.layer_index(name)
            vec[2 * idx] = sl.kernels
            vec[2 * idx + 1] = sl.channels
        return vec

    # ------------------------------------------------------------- overlap
    def shared_bytes_with(self, other: "SubNet") -> int:
        """Weight bytes shared with another SubNet of the same SuperNet."""
        if self.supernet.name != other.supernet.name:
            raise ValueError("cannot intersect SubNets of different SuperNets")
        shared = 0
        for name, sl in self._slices.items():
            other_sl = other._slices.get(name)
            if other_sl is not None:
                shared += sl.intersect(other_sl).weight_bytes
        return shared

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.supernet.name}/{self.name}: {self.num_layers} layers, "
            f"{self.weight_bytes / 1e6:.2f} MB weights, {self.flops / 1e9:.2f} GFLOPs"
        )


def build_subnet(supernet: SuperNet, config: SubNetConfig) -> SubNet:
    """Convenience constructor mirroring ``SubNet(supernet, config)``."""
    return SubNet(supernet, config)


def uniform_config(
    supernet: SuperNet,
    *,
    depth: int,
    expand_ratio: float,
    width_mult: float = 1.0,
    name: str = "",
) -> SubNetConfig:
    """A configuration with the same depth in every stage (clamped per stage)."""
    depths = tuple(
        min(max(depth, stage.depth_choices[0]), stage.max_depth)
        for stage in supernet.stages
    )
    return SubNetConfig(
        depths=depths, expand_ratio=expand_ratio, width_mult=width_mult, name=name
    )


def max_subnet(supernet: SuperNet, name: str = "max") -> SubNet:
    """The largest SubNet (all blocks, max expand, max width)."""
    config = SubNetConfig(
        depths=tuple(stage.max_depth for stage in supernet.stages),
        expand_ratio=supernet.elastic.max_expand,
        width_mult=supernet.elastic.max_width,
        name=name,
    )
    return SubNet(supernet, config)


def min_subnet(supernet: SuperNet, name: str = "min") -> SubNet:
    """The smallest SubNet (min depth, min expand, min width)."""
    config = SubNetConfig(
        depths=tuple(stage.depth_choices[0] for stage in supernet.stages),
        expand_ratio=supernet.elastic.expand_choices[0],
        width_mult=supernet.elastic.width_choices[0],
        name=name,
    )
    return SubNet(supernet, config)
