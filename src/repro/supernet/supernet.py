"""The SuperNet container: elastic stages plus shared-weight bookkeeping.

A :class:`SuperNet` owns the maximal architecture (stem + elastic stages +
head).  SubNets are *views* of that structure: each elastic layer of a SubNet
is a slice (first ``K`` kernels x first ``C`` channels) of the corresponding
maximal layer, exactly how OFA supernets share weights (important kernels /
channels are sorted first so every SubNet uses a prefix of the maximal
weights).  This prefix property is what makes SubGraph intersection and the
Persistent Buffer cache well-defined.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.supernet.layers import ConvLayerSpec, LayerSlice
from repro.supernet.stages import HeadSpec, StageSpec, StemSpec


@dataclass(frozen=True)
class ElasticConfig:
    """Valid elastic dimension choices for a SuperNet.

    Attributes
    ----------
    depth_choices:
        Allowed per-stage depth values (e.g. ``(2, 3, 4)``).
    expand_choices:
        Allowed expand-ratio values (e.g. ``(0.2, 0.25, 0.35)`` for ResNet50
        or ``(3, 4, 6)`` for MobileNetV3).
    width_choices:
        Allowed global width multipliers (e.g. ``(0.65, 0.8, 1.0)``).
    """

    depth_choices: tuple[int, ...]
    expand_choices: tuple[float, ...]
    width_choices: tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if not self.depth_choices or not self.expand_choices or not self.width_choices:
            raise ValueError("every elastic dimension needs at least one choice")
        for name, choices in (
            ("depth_choices", self.depth_choices),
            ("expand_choices", self.expand_choices),
            ("width_choices", self.width_choices),
        ):
            if tuple(sorted(choices)) != tuple(choices):
                raise ValueError(f"{name} must be sorted ascending: {choices}")

    @property
    def max_expand(self) -> float:
        return self.expand_choices[-1]

    @property
    def max_width(self) -> float:
        return self.width_choices[-1]

    @property
    def max_depth(self) -> int:
        return self.depth_choices[-1]

    def design_space_size(self, num_stages: int) -> int:
        """Number of distinct SubNet configurations (per-stage depth & expand)."""
        per_stage = len(self.depth_choices) * len(self.expand_choices)
        return (per_stage**num_stages) * len(self.width_choices)


class SuperNet:
    """A weight-shared SuperNet composed of a stem, elastic stages and a head.

    Parameters
    ----------
    name:
        SuperNet family name (``"ofa_resnet50"`` or ``"ofa_mobilenetv3"``).
    stem, head:
        Fixed (always-active) layers.
    stages:
        The elastic stages.
    elastic:
        The valid elastic dimension choices.
    input_hw:
        Input image resolution (square).
    """

    def __init__(
        self,
        name: str,
        *,
        stem: StemSpec,
        stages: Sequence[StageSpec],
        head: HeadSpec,
        elastic: ElasticConfig,
        input_hw: int = 224,
    ) -> None:
        if not stages:
            raise ValueError("a SuperNet needs at least one elastic stage")
        self.name = name
        self.stem = stem
        self.stages = tuple(stages)
        self.head = head
        self.elastic = elastic
        self.input_hw = input_hw
        # Canonical maximal layers, in network order, indexed by name.
        self._max_layers: dict[str, ConvLayerSpec] = {}
        for layer in self._iter_max_layers():
            if layer.name in self._max_layers:
                raise ValueError(f"duplicate layer name in SuperNet: {layer.name}")
            self._max_layers[layer.name] = layer
        self._layer_order = {name: i for i, name in enumerate(self._max_layers)}

    # ---------------------------------------------------------------- layers
    def _iter_max_layers(self) -> Iterator[ConvLayerSpec]:
        yield from self.stem.layers
        for stage in self.stages:
            yield from stage.max_layers()
        yield from self.head.layers

    @property
    def max_layers(self) -> list[ConvLayerSpec]:
        """All layers of the maximal architecture, in network order."""
        return list(self._max_layers.values())

    @property
    def layer_names(self) -> list[str]:
        return list(self._max_layers)

    @property
    def num_layers(self) -> int:
        return len(self._max_layers)

    def layer(self, name: str) -> ConvLayerSpec:
        """Look up a maximal layer by name."""
        try:
            return self._max_layers[name]
        except KeyError as exc:
            raise KeyError(f"{self.name} has no layer named {name!r}") from exc

    def layer_index(self, name: str) -> int:
        """Position of a layer in network order (used for vector encodings)."""
        try:
            return self._layer_order[name]
        except KeyError as exc:
            raise KeyError(f"{self.name} has no layer named {name!r}") from exc

    # ------------------------------------------------------------ properties
    @property
    def max_weight_bytes(self) -> int:
        """Weight footprint of the full (maximal) SuperNet."""
        return sum(layer.weight_bytes for layer in self.max_layers)

    @property
    def fixed_weight_bytes(self) -> int:
        """Weight bytes of the always-active stem + head."""
        return self.stem.weight_bytes + self.head.weight_bytes

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def design_space_size(self) -> int:
        """Number of distinct SubNet configurations expressible."""
        return self.elastic.design_space_size(self.num_stages)

    # ------------------------------------------------------------- subnets
    def full_slices(self) -> dict[str, LayerSlice]:
        """Slices covering every maximal layer completely (the max SubNet)."""
        return {
            name: LayerSlice(layer=layer, kernels=layer.out_channels, channels=layer.in_channels)
            for name, layer in self._max_layers.items()
        }

    def slices_for(
        self,
        *,
        depths: Sequence[int],
        expand_ratio: float,
        width_mult: float = 1.0,
    ) -> dict[str, LayerSlice]:
        """Compute the layer slices activated by an elastic configuration.

        Returns a mapping from layer name to :class:`LayerSlice`.  Layers not
        present (dropped by elastic depth) are omitted.  Stem and head layers
        are always present and always full.
        """
        if len(depths) != self.num_stages:
            raise ValueError(
                f"{self.name}: expected {self.num_stages} per-stage depths, "
                f"got {len(depths)}"
            )
        slices: dict[str, LayerSlice] = {}
        for layer in itertools.chain(self.stem.layers, self.head.layers):
            slices[layer.name] = LayerSlice(
                layer=layer, kernels=layer.out_channels, channels=layer.in_channels
            )
        for stage, depth in zip(self.stages, depths):
            active = stage.materialize(
                depth=depth, expand_ratio=expand_ratio, width_mult=width_mult
            )
            for sub_layer in active:
                max_layer = self._max_layers.get(sub_layer.name)
                if max_layer is None:
                    raise KeyError(
                        f"materialized layer {sub_layer.name!r} missing from the "
                        f"maximal SuperNet — block materialization is inconsistent"
                    )
                slices[sub_layer.name] = LayerSlice(
                    layer=max_layer,
                    kernels=min(sub_layer.out_channels, max_layer.out_channels),
                    channels=min(sub_layer.in_channels, max_layer.in_channels),
                )
        return slices

    def validate_config(
        self, depths: Sequence[int], expand_ratio: float, width_mult: float
    ) -> None:
        """Raise ``ValueError`` if the elastic configuration is not allowed."""
        for stage, depth in zip(self.stages, depths):
            if depth not in stage.depth_choices:
                raise ValueError(
                    f"{self.name}/{stage.name}: depth {depth} not in {stage.depth_choices}"
                )
        if expand_ratio not in self.elastic.expand_choices:
            raise ValueError(
                f"{self.name}: expand_ratio {expand_ratio} not in "
                f"{self.elastic.expand_choices}"
            )
        if width_mult not in self.elastic.width_choices:
            raise ValueError(
                f"{self.name}: width_mult {width_mult} not in {self.elastic.width_choices}"
            )

    def enumerate_configs(
        self, *, max_configs: int | None = None
    ) -> Iterator[tuple[tuple[int, ...], float, float]]:
        """Iterate (depths, expand_ratio, width_mult) over the design space.

        The full space is exponential; ``max_configs`` bounds the iteration
        (uniform depth per stage is enumerated first so small limits still see
        diverse sizes).
        """
        count = 0
        # Uniform-depth configurations first: these span the size range.
        for depth in self.elastic.depth_choices:
            for expand in self.elastic.expand_choices:
                for width in self.elastic.width_choices:
                    depths = tuple(
                        min(depth, stage.max_depth) for stage in self.stages
                    )
                    yield depths, expand, width
                    count += 1
                    if max_configs is not None and count >= max_configs:
                        return
        # Then the mixed per-stage depth configurations.
        per_stage_choices = [stage.depth_choices for stage in self.stages]
        for depths in itertools.product(*per_stage_choices):
            if len(set(depths)) == 1:
                continue  # already emitted above
            for expand in self.elastic.expand_choices:
                for width in self.elastic.width_choices:
                    yield tuple(depths), expand, width
                    count += 1
                    if max_configs is not None and count >= max_configs:
                        return

    # ------------------------------------------------------------------ misc
    def describe(self) -> str:
        """Multi-line human-readable summary of the SuperNet."""
        lines = [
            f"SuperNet {self.name}: {self.num_stages} stages, "
            f"{self.num_layers} maximal layers, "
            f"{self.max_weight_bytes / 1e6:.2f} MB max weights, "
            f"input {self.input_hw}x{self.input_hw}",
        ]
        for stage in self.stages:
            lines.append(
                f"  {stage.name}: {stage.max_depth} blocks "
                f"({stage.in_channels}->{stage.out_channels} ch, "
                f"{stage.input_hw}->{stage.output_hw} px), "
                f"depth choices {stage.depth_choices}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SuperNet(name={self.name!r}, stages={self.num_stages}, layers={self.num_layers})"
