"""Synthetic weight storage and shared-weight bookkeeping.

The paper's artifact uses real OFA checkpoints; this reproduction replaces
them with a *structural* weight store: every maximal layer owns a contiguous
byte extent, and any layer slice maps to a prefix of that extent (OFA sorts
important kernels/channels first, so SubNets always use weight prefixes).
This is sufficient for everything SUSHI measures — cache occupancy, off-chip
traffic, hit ratios — and avoids shipping hundreds of MB of checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.supernet.layers import LayerSlice
from repro.supernet.subnet import SubNet
from repro.supernet.supernet import SuperNet


@dataclass(frozen=True)
class WeightExtent:
    """A contiguous byte range of the SuperNet's weight address space."""

    layer_name: str
    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class WeightStore:
    """Byte-addressed view of a SuperNet's weights.

    Each maximal layer is assigned a contiguous extent; a layer slice maps to
    a prefix of its layer's extent proportional to the slice's byte footprint.
    The store can optionally materialize synthetic int8 weight arrays (useful
    in examples that want to show end-to-end data flow), but all accounting is
    done on byte counts only.
    """

    def __init__(self, supernet: SuperNet, *, materialize: bool = False, seed: int = 0) -> None:
        self.supernet = supernet
        self._extents: dict[str, WeightExtent] = {}
        offset = 0
        for layer in supernet.max_layers:
            self._extents[layer.name] = WeightExtent(
                layer_name=layer.name, offset=offset, nbytes=layer.weight_bytes
            )
            offset += layer.weight_bytes
        self._total_bytes = offset
        self._data: np.ndarray | None = None
        if materialize:
            rng = np.random.default_rng(seed)
            self._data = rng.integers(
                -128, 128, size=self._total_bytes, dtype=np.int8
            )

    # ------------------------------------------------------------ extents
    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def extent(self, layer_name: str) -> WeightExtent:
        try:
            return self._extents[layer_name]
        except KeyError as exc:
            raise KeyError(f"no weights stored for layer {layer_name!r}") from exc

    def slice_extent(self, sl: LayerSlice) -> WeightExtent:
        """Byte extent occupied by a layer slice (a prefix of the layer extent)."""
        base = self.extent(sl.layer.name)
        return WeightExtent(
            layer_name=sl.layer.name,
            offset=base.offset,
            nbytes=min(sl.weight_bytes, base.nbytes),
        )

    def subnet_extents(self, subnet: SubNet) -> list[WeightExtent]:
        """All byte extents a SubNet touches, in network order."""
        return [self.slice_extent(sl) for sl in subnet.ordered_slices]

    def subnet_bytes(self, subnet: SubNet) -> int:
        return sum(ext.nbytes for ext in self.subnet_extents(subnet))

    # ------------------------------------------------------------ raw data
    def read_slice(self, sl: LayerSlice) -> np.ndarray:
        """Return the synthetic int8 weights of a slice (requires materialize)."""
        if self._data is None:
            raise RuntimeError(
                "WeightStore was constructed without materialize=True; "
                "no raw weight data is available"
            )
        ext = self.slice_extent(sl)
        return self._data[ext.offset : ext.end]


class SharedWeightIndex:
    """Shared-weight accounting across a family of SubNets.

    Used to verify the paper's reported shared-weight footprints (7.55 MB for
    the ResNet50 family, 2.90 MB for MobileNetV3) and to drive cache-hit
    analytics.
    """

    def __init__(self, subnets: Sequence[SubNet]) -> None:
        if not subnets:
            raise ValueError("SharedWeightIndex needs at least one SubNet")
        supernet_names = {sn.supernet.name for sn in subnets}
        if len(supernet_names) != 1:
            raise ValueError(
                f"all SubNets must come from the same SuperNet, got {supernet_names}"
            )
        self.subnets = list(subnets)
        self.supernet = subnets[0].supernet

    def common_slices(self) -> dict[str, LayerSlice]:
        """Per-layer intersection over *all* SubNets (the globally shared SubGraph)."""
        common: dict[str, LayerSlice] = dict(self.subnets[0].layer_slices)
        for subnet in self.subnets[1:]:
            slices = subnet.layer_slices
            next_common: dict[str, LayerSlice] = {}
            for name, sl in common.items():
                other = slices.get(name)
                if other is None:
                    continue
                inter = sl.intersect(other)
                if not inter.is_empty:
                    next_common[name] = inter
            common = next_common
        return common

    def shared_bytes(self) -> int:
        """Weight bytes shared by every SubNet in the family."""
        return sum(sl.weight_bytes for sl in self.common_slices().values())

    def pairwise_shared_bytes(self) -> np.ndarray:
        """Matrix ``M[i, j]`` = bytes shared between SubNet i and SubNet j."""
        n = len(self.subnets)
        mat = np.zeros((n, n), dtype=np.int64)
        for i in range(n):
            mat[i, i] = self.subnets[i].weight_bytes
            for j in range(i + 1, n):
                shared = self.subnets[i].shared_bytes_with(self.subnets[j])
                mat[i, j] = shared
                mat[j, i] = shared
        return mat

    def sharing_fraction(self) -> float:
        """Globally shared bytes as a fraction of the smallest SubNet."""
        smallest = min(sn.weight_bytes for sn in self.subnets)
        if smallest == 0:
            return 0.0
        return self.shared_bytes() / smallest

    def summary(self) -> dict[str, float]:
        """Headline sharing statistics (sizes in MB) for reports."""
        sizes = [sn.weight_bytes / 1e6 for sn in self.subnets]
        return {
            "num_subnets": float(len(self.subnets)),
            "min_subnet_mb": min(sizes),
            "max_subnet_mb": max(sizes),
            "shared_mb": self.shared_bytes() / 1e6,
            "sharing_fraction_of_min": self.sharing_fraction(),
        }


def total_distinct_bytes(subnets: Iterable[SubNet]) -> int:
    """Bytes needed to store the given SubNets *without* weight sharing.

    This is the counterfactual the paper contrasts weight sharing against:
    independently exported models would each carry their full weights.
    """
    return sum(sn.weight_bytes for sn in subnets)
