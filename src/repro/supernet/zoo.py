"""Model zoo: the SuperNets and Pareto SubNet families the paper evaluates.

The paper picks 6 Pareto-frontier SubNets (labelled A-F) from OFA-ResNet50
and 7 (A-G) from OFA-MobileNetV3.  This module pins down concrete elastic
configurations for those families, ordered from smallest/fastest (A) to
largest/most-accurate (F or G), and provides the loader used across
examples, experiments and tests.
"""

from __future__ import annotations

from typing import Callable

from repro.supernet.ofa_mobilenetv3 import build_ofa_mobilenetv3
from repro.supernet.ofa_resnet50 import build_ofa_resnet50
from repro.supernet.subnet import SubNet, SubNetConfig
from repro.supernet.supernet import SuperNet

#: Names of the SuperNets this reproduction ships.
SUPPORTED_SUPERNETS: tuple[str, ...] = ("ofa_resnet50", "ofa_mobilenetv3")

_BUILDERS: dict[str, Callable[[], SuperNet]] = {
    "ofa_resnet50": build_ofa_resnet50,
    "ofa_mobilenetv3": build_ofa_mobilenetv3,
}

#: Pareto family for OFA-ResNet50 (paper Fig. 10a / 13 labels A-F), ordered
#: from the smallest (A) to the largest (F) SubNet.  Each step increases one
#: elastic dimension, so capacity — and therefore accuracy — is monotone.
RESNET50_PARETO_CONFIGS: tuple[SubNetConfig, ...] = (
    SubNetConfig(depths=(2, 2, 2, 2), expand_ratio=0.2, width_mult=0.65, name="A"),
    SubNetConfig(depths=(2, 2, 2, 2), expand_ratio=0.2, width_mult=0.8, name="B"),
    SubNetConfig(depths=(2, 2, 2, 2), expand_ratio=0.25, width_mult=1.0, name="C"),
    SubNetConfig(depths=(3, 3, 3, 3), expand_ratio=0.25, width_mult=1.0, name="D"),
    SubNetConfig(depths=(4, 4, 4, 4), expand_ratio=0.25, width_mult=1.0, name="E"),
    SubNetConfig(depths=(4, 4, 4, 4), expand_ratio=0.35, width_mult=1.0, name="F"),
)

#: Pareto family for OFA-MobileNetV3 (paper Fig. 10b labels A-G).
MOBILENETV3_PARETO_CONFIGS: tuple[SubNetConfig, ...] = (
    SubNetConfig(depths=(2, 2, 2, 2, 2), expand_ratio=3.0, name="A"),
    SubNetConfig(depths=(2, 2, 2, 2, 2), expand_ratio=4.0, name="B"),
    SubNetConfig(depths=(3, 2, 3, 2, 3), expand_ratio=4.0, name="C"),
    SubNetConfig(depths=(3, 3, 3, 3, 3), expand_ratio=4.0, name="D"),
    SubNetConfig(depths=(3, 3, 3, 3, 3), expand_ratio=6.0, name="E"),
    SubNetConfig(depths=(4, 3, 4, 3, 4), expand_ratio=6.0, name="F"),
    SubNetConfig(depths=(4, 4, 4, 4, 4), expand_ratio=6.0, name="G"),
)

_PARETO_CONFIGS: dict[str, tuple[SubNetConfig, ...]] = {
    "ofa_resnet50": RESNET50_PARETO_CONFIGS,
    "ofa_mobilenetv3": MOBILENETV3_PARETO_CONFIGS,
}


def load_supernet(name: str, *, input_hw: int = 224) -> SuperNet:
    """Build one of the supported SuperNets by name.

    Parameters
    ----------
    name:
        ``"ofa_resnet50"`` or ``"ofa_mobilenetv3"`` (case-insensitive; the
        aliases ``"resnet50"`` and ``"mobilenetv3"``/``"mobv3"`` are accepted).
    input_hw:
        Input image resolution.
    """
    key = name.lower()
    aliases = {
        "resnet50": "ofa_resnet50",
        "mobilenetv3": "ofa_mobilenetv3",
        "mobv3": "ofa_mobilenetv3",
    }
    key = aliases.get(key, key)
    builder = _BUILDERS.get(key)
    if builder is None:
        raise ValueError(
            f"unknown SuperNet {name!r}; supported: {sorted(_BUILDERS)} "
            f"(aliases: {sorted(aliases)})"
        )
    return builder(input_hw)


def paper_pareto_configs(supernet_name: str) -> tuple[SubNetConfig, ...]:
    """The Pareto SubNet configurations used throughout the paper's evaluation."""
    key = supernet_name.lower()
    aliases = {"resnet50": "ofa_resnet50", "mobilenetv3": "ofa_mobilenetv3", "mobv3": "ofa_mobilenetv3"}
    key = aliases.get(key, key)
    try:
        return _PARETO_CONFIGS[key]
    except KeyError as exc:
        raise ValueError(
            f"no Pareto family defined for {supernet_name!r}; "
            f"supported: {sorted(_PARETO_CONFIGS)}"
        ) from exc


def paper_pareto_subnets(supernet: SuperNet) -> list[SubNet]:
    """Materialize the paper's Pareto SubNet family for a SuperNet instance."""
    configs = paper_pareto_configs(supernet.name)
    return [SubNet(supernet, cfg) for cfg in configs]
