"""Declarative scenario sweeps: grid specs, parallel execution, merged artifacts.

One reproducible runner replacing N ad-hoc sweep scripts: a
:class:`SweepSpec` (base scenario × override axes) expands into grid cells,
:func:`run_sweep` executes them — optionally across forked worker processes
with per-worker stack caching — and the merged :class:`SweepResult`
serializes to JSON/CSV artifacts that are byte-identical regardless of the
worker count.  The CLI front end is ``python -m repro sweep``.
"""

from repro.sweep.spec import SweepAxis, SweepSpec
from repro.sweep.runner import (
    METRIC_FIELDS,
    CellResult,
    SweepResult,
    format_sweep_summary,
    result_metrics,
    run_sweep,
)

__all__ = [
    "METRIC_FIELDS",
    "CellResult",
    "SweepAxis",
    "SweepResult",
    "SweepSpec",
    "format_sweep_summary",
    "result_metrics",
    "run_sweep",
]
