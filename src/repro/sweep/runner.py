"""Parallel sweep execution: expand the grid, run cells, merge results.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` into its
grid cells and runs each through :func:`repro.serving.api.run_scenario`,
optionally fanning cells out over forked worker processes.  Guarantees:

* **Deterministic artifacts** — cell results are keyed and re-ordered by
  grid index, metrics are pure functions of the (seeded) simulation, and
  nothing wall-clock-dependent is recorded, so the merged JSON/CSV
  artifact is byte-identical however many workers ran the sweep.
* **Per-cell fault isolation** — a cell whose overrides fail validation or
  whose run raises becomes an *error cell* (``error`` set, ``metrics``
  null); the other cells are unaffected.
* **Per-worker stack caching** — each worker process keeps one
  ``StackCache``, so expensive latency tables build once per worker, not
  once per cell (forked workers inherit whatever the parent has already
  warmed).
* **Sequential fallback** — ``workers <= 1``, a single cell, or a platform
  without ``fork`` (spawn would need every backend picklable) all run the
  cells in-process, in grid order, producing the identical artifact.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.serving.api import StackCache, run_scenario
from repro.serving.engine import SimulationResult
from repro.sweep.spec import SweepSpec

__all__ = [
    "METRIC_FIELDS",
    "CellResult",
    "SweepResult",
    "format_sweep_summary",
    "result_metrics",
    "run_sweep",
]

#: The fixed, ordered metric set every cell reports — a closed list so the
#: merged CSV's columns (and the JSON's key order) never depend on which
#: cells happened to succeed.
METRIC_FIELDS: tuple[str, ...] = (
    "num_offered",
    "num_served",
    "num_dropped",
    "offered_load",
    "drop_rate",
    "slo_attainment",
    "mean_response_ms",
    "p99_response_ms",
    "achieved_throughput_per_ms",
    "goodput_per_ms",
    "mean_accuracy",
    "mean_batch_occupancy",
    "replica_seconds",
    "weighted_replica_seconds",
    "num_crashes",
    "duration_ms",
)


def result_metrics(result: SimulationResult) -> dict[str, float]:
    """One cell's scalar metrics, in the fixed :data:`METRIC_FIELDS` order."""
    return {name: float(getattr(result, name)) for name in METRIC_FIELDS}


@dataclass(frozen=True)
class CellResult:
    """Outcome of one grid cell: its overrides plus metrics or an error."""

    index: int
    overrides: tuple[tuple[str, Any], ...]
    error: str | None = None
    metrics: dict[str, float] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "overrides", tuple(tuple(o) for o in self.overrides)
        )
        if (self.error is None) == (self.metrics is None):
            raise ValueError(
                "a cell result carries exactly one of metrics or error"
            )

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "overrides": [[path, value] for path, value in self.overrides],
            "error": self.error,
            "metrics": None if self.metrics is None else dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellResult":
        payload: dict[str, Any] = dict(data)
        payload["overrides"] = tuple(
            (path, value) for path, value in payload.get("overrides", ())
        )
        return cls(**payload)


@dataclass(frozen=True)
class SweepResult:
    """The merged outcome of a sweep: spec + one result per grid cell."""

    spec: SweepSpec
    cells: tuple[CellResult, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))

    @property
    def num_ok(self) -> int:
        return sum(1 for c in self.cells if c.ok)

    @property
    def num_failed(self) -> int:
        return len(self.cells) - self.num_ok

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "cells": [c.to_dict() for c in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        payload: dict[str, Any] = dict(data)
        if "spec" in payload:
            payload["spec"] = SweepSpec.from_dict(payload["spec"])
        payload["cells"] = tuple(
            CellResult.from_dict(c) for c in payload.get("cells", ())
        )
        return cls(**payload)

    def to_json(self, *, indent: int = 2) -> str:
        """The merged JSON artifact (byte-identical across worker counts)."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self) -> str:
        """The merged CSV artifact: axis columns + the fixed metric set.

        Axis values serialize compactly as JSON so strings, numbers and
        structured values all land unambiguously in one column; floats
        round-trip exactly (``json.dumps`` emits ``repr`` digits).
        """
        axis_paths = [axis.path for axis in self.spec.axes]
        buffer = io.StringIO(newline="")
        writer = csv.writer(buffer)
        writer.writerow(["index", *axis_paths, "error", *METRIC_FIELDS])
        for cell in self.cells:
            by_path = dict(cell.overrides)
            row: list[str] = [str(cell.index)]
            row.extend(json.dumps(by_path[path]) for path in axis_paths)
            row.append("" if cell.error is None else cell.error)
            for name in METRIC_FIELDS:
                value = None if cell.metrics is None else cell.metrics[name]
                row.append("" if value is None else repr(value))
            writer.writerow(row)
        return buffer.getvalue()


# ------------------------------------------------------------------ running
#: One template-stack cache per process: the parent's warms sequential runs
#: (and is inherited, copy-on-write, by forked workers).
_STACK_CACHE: StackCache = {}

_CellOutput = tuple[int, str | None, dict[str, float] | None]


def _run_cell(
    payload: tuple[int, dict[str, Any], tuple[tuple[str, Any], ...]],
) -> _CellOutput:
    """Run one grid cell; failures become per-cell errors, never raises."""
    index, sweep_data, overrides = payload
    try:
        spec = SweepSpec.from_dict(sweep_data).scenario(overrides)
        result = run_scenario(spec, stack_cache=_STACK_CACHE)
        return index, None, result_metrics(result)
    except Exception as exc:  # noqa: BLE001 - cell isolation is the contract
        return index, f"{type(exc).__name__}: {exc}", None


def _map_cells(
    payloads: list[tuple[int, dict[str, Any], tuple[tuple[str, Any], ...]]],
    workers: int | None,
) -> list[_CellOutput]:
    if workers is None or workers <= 1 or len(payloads) <= 1:
        return [_run_cell(p) for p in payloads]
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        # No fork on this platform; spawn would need every backend
        # importable-picklable.  The sequential path produces the identical
        # artifact, just slower.
        return [_run_cell(p) for p in payloads]
    with ctx.Pool(processes=min(workers, len(payloads))) as pool:
        # chunksize=1 so long cells don't serialize behind short ones.
        return pool.map(_run_cell, payloads, chunksize=1)


def run_sweep(spec: SweepSpec, *, workers: int | None = None) -> SweepResult:
    """Expand and run a sweep grid; the result's cells are in grid order.

    ``workers > 1`` fans cells out over forked processes (falling back to
    in-process execution where fork is unavailable); the merged result is
    byte-identical either way.
    """
    cells = spec.cells()
    sweep_data = spec.to_dict()
    payloads = [(i, sweep_data, cell) for i, cell in enumerate(cells)]
    outputs = _map_cells(payloads, workers)
    by_index: dict[int, _CellOutput] = {out[0]: out for out in outputs}
    ordered = tuple(
        CellResult(
            index=i,
            overrides=cells[i],
            error=by_index[i][1],
            metrics=by_index[i][2],
        )
        for i in range(len(cells))
    )
    return SweepResult(spec=spec, cells=ordered)


def format_sweep_summary(result: SweepResult) -> str:
    """Human-readable per-cell summary of one sweep (used by the CLI)."""
    from repro.analysis.reporting import format_table

    rows: dict[str, dict[str, object]] = {}
    for cell in result.cells:
        label = ", ".join(f"{p}={v}" for p, v in cell.overrides) or "(base)"
        key = f"cell {cell.index}: {label}"
        if cell.metrics is None:
            rows[key] = {"status": f"ERROR: {cell.error}"}
        else:
            rows[key] = {
                "served": cell.metrics["num_served"],
                "dropped": cell.metrics["num_dropped"],
                "SLO attainment": cell.metrics["slo_attainment"],
                "p99 response (ms)": cell.metrics["p99_response_ms"],
                "goodput (/ms)": cell.metrics["goodput_per_ms"],
                "mean accuracy (%)": 100.0 * cell.metrics["mean_accuracy"],
            }
    return format_table(
        rows,
        title=(
            f"Sweep {result.spec.name!r} — {len(result.cells)} cells "
            f"({result.num_ok} ok, {result.num_failed} failed)"
        ),
        precision=3,
    )
