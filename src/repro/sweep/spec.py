"""Declarative sweep grids: one base scenario × override axes.

A :class:`SweepSpec` names a base :class:`~repro.serving.spec.ScenarioSpec`
and a list of :class:`SweepAxis` entries, each a dotted override path (the
same paths ``repro serve --override`` takes) and the values to try.  The
grid is the cartesian product of the axes, expanded in declaration order
with the *last* axis varying fastest — cell ``i`` is a pure function of the
spec, independent of how (or on how many workers) the sweep runs.

Like every spec in the repo, the sweep grid round-trips exactly through
plain JSON (``from_dict(to_dict(spec)) == spec``), so grids live in
version-controlled files (``examples/sweeps/``) and run from the command
line with ``python -m repro sweep --spec <file>``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.serving.spec import ScenarioSpec

__all__ = ["SweepAxis", "SweepSpec"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _as_tuple(value: Any) -> Any:
    """Recursively convert lists (as produced by JSON) to tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_as_tuple(v) for v in value)
    return value


def _as_json(value: Any) -> Any:
    """Recursively convert tuples back to lists for JSON serialization."""
    if isinstance(value, (list, tuple)):
        return [_as_json(v) for v in value]
    return value


@dataclass(frozen=True)
class SweepAxis:
    """One override axis of a sweep grid.

    Attributes
    ----------
    path:
        Dotted path into the serialized scenario (exactly the
        ``--override`` syntax), e.g. ``"arrivals.rate_scale"`` or
        ``"replica_groups.0.count"``.
    values:
        The values this axis tries, in order.  Values may themselves be
        JSON structures (lists arrive as tuples after parsing).
    """

    path: str
    values: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", _as_tuple(self.values))
        _require(
            isinstance(self.path, str) and bool(self.path),
            f"axis path must be a non-empty string, got {self.path!r}",
        )
        _require(
            bool(self.values),
            f"axis {self.path!r} needs at least one value",
        )

    def to_dict(self) -> dict[str, Any]:
        return {"path": self.path, "values": [_as_json(v) for v in self.values]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepAxis":
        payload: dict[str, Any] = dict(data)
        payload["values"] = _as_tuple(payload.get("values", ()))
        return cls(**payload)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of scenarios: base spec × override axes.

    Attributes
    ----------
    base:
        The scenario every grid cell starts from.
    axes:
        Override axes; the grid is their cartesian product, last axis
        varying fastest.  An empty tuple is a one-cell sweep (just the
        base scenario).
    name:
        Sweep name (labels the merged artifact).
    """

    base: ScenarioSpec
    axes: tuple[SweepAxis, ...] = ()
    name: str = "sweep"

    def __post_init__(self) -> None:
        if isinstance(self.base, Mapping):
            object.__setattr__(self, "base", ScenarioSpec.from_dict(self.base))
        object.__setattr__(
            self,
            "axes",
            tuple(
                SweepAxis.from_dict(a) if isinstance(a, Mapping) else a
                for a in self.axes
            ),
        )
        paths = [a.path for a in self.axes]
        _require(
            len(set(paths)) == len(paths),
            f"axis paths must be unique, got {paths}",
        )

    # --------------------------------------------------------------- derived
    @property
    def num_cells(self) -> int:
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    def cells(self) -> tuple[tuple[tuple[str, Any], ...], ...]:
        """Every grid cell's override list, in deterministic order.

        Cell ``i`` pairs each axis path with one of its values; the last
        axis varies fastest (row-major order).  This ordering is the
        contract the merged artifact's byte-identity across worker counts
        rests on.
        """
        per_axis = [
            [(axis.path, value) for value in axis.values] for axis in self.axes
        ]
        return tuple(itertools.product(*per_axis))

    def scenario(self, cell: tuple[tuple[str, Any], ...]) -> ScenarioSpec:
        """The concrete scenario of one grid cell (overrides applied)."""
        spec = self.base.override_many(cell)
        labels = ",".join(f"{path}={value}" for path, value in cell)
        if labels:
            spec = spec.override("name", f"{self.base.name}[{labels}]")
        return spec

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": [a.to_dict() for a in self.axes],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        payload: dict[str, Any] = dict(data)
        if "base" in payload:
            payload["base"] = ScenarioSpec.from_dict(payload["base"])
        payload["axes"] = tuple(
            SweepAxis.from_dict(a) for a in payload.get("axes", ())
        )
        return cls(**payload)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))
