"""Unit tests for the SushiAccel end-to-end analytic model."""

import pytest

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.accelerator.platforms import ANALYTIC_DEFAULT, ZCU104
from repro.supernet.layers import LayerKind


class TestSubnetBreakdown:
    def test_latency_positive_and_finite(self, analytic_model, resnet50_subnets):
        for subnet in resnet50_subnets:
            latency = analytic_model.subnet_latency_ms(subnet)
            assert 0 < latency < 1000

    def test_components_sum_to_total(self, analytic_model, resnet50_subnets):
        breakdown = analytic_model.subnet_breakdown(resnet50_subnets[0])
        c = breakdown.components
        assert breakdown.latency_ms == pytest.approx(c.total_ms)
        assert c.total_ms == pytest.approx(
            c.compute_ms + c.offchip_iact_ms + c.offchip_weight_ms
            + c.onchip_weight_ms + c.offchip_oact_ms
        )

    def test_per_layer_count_matches_subnet(self, analytic_model, resnet50_subnets):
        subnet = resnet50_subnets[0]
        breakdown = analytic_model.subnet_breakdown(subnet)
        assert len(breakdown.per_layer) == subnet.num_layers

    def test_latency_monotone_in_subnet_size(self, analytic_model, resnet50_subnets):
        latencies = [analytic_model.subnet_latency_ms(sn) for sn in resnet50_subnets]
        assert latencies == sorted(latencies)

    def test_paper_latency_ballpark(self, analytic_model, resnet50_subnets, mobilenetv3_subnets):
        # Fig. 10: ResNet50 SubNets run in single-digit ms, MobV3 in < 3 ms at
        # the analytic configuration.
        for subnet in resnet50_subnets:
            assert 0.5 < analytic_model.subnet_latency_ms(subnet) < 20.0
        for subnet in mobilenetv3_subnets:
            assert 0.1 < analytic_model.subnet_latency_ms(subnet) < 5.0

    def test_caching_own_subgraph_reduces_latency(self, analytic_model, resnet50_subnets):
        for subnet in resnet50_subnets:
            cached = CachedSubGraph.from_subnet(subnet)
            assert analytic_model.subnet_latency_ms(subnet, cached) < analytic_model.subnet_latency_ms(subnet)

    def test_sgs_reduction_in_paper_range(self, analytic_model, resnet50_subnets):
        # Fig. 10 reports 5.7-7.9 % potential reduction for ResNet50; accept a
        # generous band around it (the substrate is a model, not the testbed).
        for subnet in resnet50_subnets:
            base = analytic_model.subnet_latency_ms(subnet)
            cached = analytic_model.subnet_latency_ms(subnet, CachedSubGraph.from_subnet(subnet))
            reduction = 100 * (base - cached) / base
            assert 3.0 < reduction < 25.0

    def test_without_pb_ignores_cache(self, analytic_model_no_pb, resnet50_subnets):
        subnet = resnet50_subnets[0]
        cached = CachedSubGraph.from_subnet(subnet)
        assert analytic_model_no_pb.subnet_latency_ms(subnet, cached) == pytest.approx(
            analytic_model_no_pb.subnet_latency_ms(subnet)
        )

    def test_energy_decreases_with_cache(self, analytic_model, mobilenetv3_subnets):
        subnet = mobilenetv3_subnets[0]
        base = analytic_model.subnet_breakdown(subnet)
        cached = analytic_model.subnet_breakdown(subnet, CachedSubGraph.from_subnet(subnet))
        assert cached.offchip_energy_mj < base.offchip_energy_mj

    def test_layer_filter_3x3(self, analytic_model, resnet50_subnets):
        subnet = resnet50_subnets[0]
        full = analytic_model.subnet_breakdown(subnet)
        filtered = analytic_model.subnet_breakdown(
            subnet, layer_filter=lambda l: l.kind == LayerKind.CONV and l.kernel_size == 3
        )
        assert 0 < len(filtered.per_layer) < len(full.per_layer)
        assert filtered.latency_ms < full.latency_ms

    def test_layer_filter_rejecting_everything_raises(self, analytic_model, resnet50_subnets):
        with pytest.raises(ValueError):
            analytic_model.subnet_breakdown(resnet50_subnets[0], layer_filter=lambda l: False)

    def test_memory_bound_layers_listed(self, analytic_model, resnet50_subnets):
        breakdown = analytic_model.subnet_breakdown(resnet50_subnets[-1])
        names = set(l.layer_name for l in breakdown.per_layer)
        assert set(breakdown.memory_bound_layers()) <= names


class TestModelConfiguration:
    def test_pb_capacity_zero_without_pb(self, analytic_model_no_pb):
        assert analytic_model_no_pb.pb_capacity_bytes == 0

    def test_make_persistent_buffer_capacity(self, analytic_model):
        pb = analytic_model.make_persistent_buffer()
        assert pb.capacity_bytes == analytic_model.pb_capacity_bytes > 0

    def test_cache_load_latency(self, analytic_model):
        assert analytic_model.cache_load_latency_ms(0) == 0.0
        assert analytic_model.cache_load_latency_ms(1_000_000) > 0.0

    def test_latency_matrix_shape(self, analytic_model, resnet50_subnets):
        subgraphs = [CachedSubGraph.from_subnet(sn) for sn in resnet50_subnets[:2]]
        matrix = analytic_model.latency_matrix_ms(resnet50_subnets[:3], subgraphs)
        assert len(matrix) == 3
        assert all(len(row) == 2 for row in matrix)

    def test_zcu104_slower_than_analytic(self, zcu104_model, analytic_model, resnet50_subnets):
        # The embedded board has 5x less compute than the analytic config.
        subnet = resnet50_subnets[-1]
        assert zcu104_model.subnet_latency_ms(subnet) > analytic_model.subnet_latency_ms(subnet)
