"""Unit tests for the CPU and Xilinx DPU baseline latency models."""

import pytest

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.cpu_model import CPUModel
from repro.accelerator.dpu_model import XilinxDPUModel
from repro.accelerator.platforms import ZCU104
from repro.supernet.layers import LayerKind


@pytest.fixture(scope="module")
def cpu():
    return CPUModel()


@pytest.fixture(scope="module")
def dpu():
    return XilinxDPUModel()


class TestCPUModel:
    def test_latency_positive_and_monotone(self, cpu, resnet50_subnets):
        latencies = [cpu.subnet_latency_ms(sn) for sn in resnet50_subnets]
        assert all(l > 0 for l in latencies)
        assert latencies == sorted(latencies)

    def test_includes_framework_overhead(self, cpu, resnet50_subnets):
        assert cpu.subnet_latency_ms(resnet50_subnets[0]) > cpu.framework_overhead_ms

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            CPUModel(compute_efficiency=0.0)
        with pytest.raises(ValueError):
            CPUModel(memory_efficiency=1.5)

    def test_sushiaccel_speedup_in_paper_range(self, cpu, zcu104_model, resnet50_subnets):
        # Fig. 13a: SushiAccel w/ PB on ZCU104 is 1.87-3.17x faster than CPU.
        for subnet in resnet50_subnets:
            speedup = cpu.subnet_latency_ms(subnet) / zcu104_model.subnet_latency_ms(subnet)
            assert 1.2 < speedup < 5.0


class TestXilinxDPUModel:
    def test_layer_latency_positive(self, dpu, resnet50_subnets):
        for layer in resnet50_subnets[0].active_layers():
            if layer.kind == LayerKind.CONV:
                assert dpu.layer_latency_ms(layer) > 0

    def test_macs_per_cycle_close_to_table2(self, dpu):
        # Table 2: 2304 ops/cycle = 1152 MACs/cycle.
        assert 800 <= dpu.macs_per_cycle <= 1400

    def test_subnet_latency_monotone(self, dpu, resnet50_subnets):
        latencies = [dpu.subnet_latency_ms(sn) for sn in resnet50_subnets]
        assert latencies == sorted(latencies)

    def test_sushiaccel_beats_dpu_on_average(self, dpu, resnet50_subnets):
        # Fig. 14: geometric-mean speedup of ~25% on the min SubNet's 3x3 convs.
        from repro.analysis.comparison import geometric_mean_speedup
        from repro.accelerator.dataflow import layer_latency

        sushi = SushiAccelModel(ZCU104, with_pb=False)
        min_subnet = resnet50_subnets[0]
        dpu_ms, sushi_ms = [], []
        for layer in min_subnet.active_layers():
            if layer.kind == LayerKind.CONV and layer.kernel_size == 3:
                dpu_ms.append(dpu.layer_latency_ms(layer))
                ll = layer_latency(
                    layer, sushi.dpe, sushi.dram,
                    sb_capacity_bytes=sushi.buffers["SB"].capacity_bytes,
                    ob_capacity_bytes=sushi.buffers["OB"].capacity_bytes,
                )
                sushi_ms.append(sushi.dram.cycles_to_ms(ll.total_cycles))
        assert geometric_mean_speedup(dpu_ms, sushi_ms) > 1.05
