"""Unit tests for the on-chip buffer hierarchy."""

import pytest

from repro.accelerator.buffers import (
    BUFFER_NAMES,
    BufferHierarchy,
    BufferSpec,
    bandwidth_requirements,
    default_hierarchy,
)
from repro.accelerator.dpe import DPEArrayConfig
from repro.accelerator.platforms import ANALYTIC_DEFAULT, ZCU104


class TestBufferSpec:
    def test_capacity_kb(self):
        assert BufferSpec("PB", 2048, 64.0).capacity_kb == 2.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferSpec("PB", -1, 64.0)


class TestBandwidthRequirements:
    def test_all_table1_buffers_present(self):
        dpe = DPEArrayConfig(kp=ZCU104.kp, cp=ZCU104.cp)
        reqs = bandwidth_requirements(dpe, ZCU104)
        assert {"DB", "SB", "LB", "OB", "PB"} <= set(reqs)

    def test_db_and_pb_at_least_off_chip(self):
        dpe = DPEArrayConfig(kp=ZCU104.kp, cp=ZCU104.cp)
        reqs = bandwidth_requirements(dpe, ZCU104)
        assert reqs["DB"] >= ZCU104.off_chip_bytes_per_cycle
        assert reqs["PB"] >= ZCU104.off_chip_bytes_per_cycle

    def test_ob_matches_kernel_parallelism(self):
        dpe = DPEArrayConfig(kp=ZCU104.kp, cp=ZCU104.cp)
        reqs = bandwidth_requirements(dpe, ZCU104)
        assert reqs["OB"] == ZCU104.kp


class TestDefaultHierarchy:
    def test_contains_all_buffers(self):
        hierarchy = default_hierarchy(ZCU104)
        for name in BUFFER_NAMES:
            assert hierarchy[name].capacity_bytes >= 0

    def test_fits_budget(self):
        for platform in (ZCU104, ANALYTIC_DEFAULT):
            for with_pb in (True, False):
                hierarchy = default_hierarchy(platform, with_pb=with_pb)
                hierarchy.validate_budget(platform)

    def test_pb_zero_when_disabled(self):
        hierarchy = default_hierarchy(ZCU104, with_pb=False)
        assert hierarchy.pb.capacity_bytes == 0

    def test_pb_positive_when_enabled(self):
        hierarchy = default_hierarchy(ZCU104, with_pb=True)
        assert hierarchy.pb.capacity_bytes > 1024 * 1024  # >1 MB on ZCU104

    def test_sb_identical_with_and_without_pb(self):
        with_pb = default_hierarchy(ZCU104, with_pb=True)
        without_pb = default_hierarchy(ZCU104, with_pb=False)
        assert with_pb["SB"].capacity_bytes == without_pb["SB"].capacity_bytes

    def test_total_storage_equal_with_and_without_pb(self):
        # Paper Tab. 3: both configurations use the same overall storage; the
        # w/o-PB variant redirects the PB budget to the dynamic buffers.
        with_pb = default_hierarchy(ZCU104, with_pb=True)
        without_pb = default_hierarchy(ZCU104, with_pb=False)
        assert without_pb.db_bytes > with_pb.db_bytes
        assert abs(with_pb.total_bytes - without_pb.total_bytes) <= with_pb.pb.capacity_bytes

    def test_summary_has_overall(self):
        summary = default_hierarchy(ZCU104).summary()
        assert "Overall" in summary
        assert summary["Overall"] > 0

    def test_missing_buffer_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            BufferHierarchy(buffers={"PB": BufferSpec("PB", 0, 0)})

    def test_budget_violation_detected(self):
        hierarchy = default_hierarchy(ZCU104)
        tiny = ZCU104.scaled(name="tiny")
        import dataclasses

        tiny = dataclasses.replace(tiny, total_buffer_kb=100.0, pb_kb=0.0)
        with pytest.raises(ValueError, match="exceeds"):
            hierarchy.validate_budget(tiny)
