"""Unit tests for the per-layer dataflow latency model."""

import pytest

from repro.accelerator.dataflow import layer_latency
from repro.accelerator.dpe import DPEArrayConfig
from repro.accelerator.dram import DRAMModel
from repro.supernet.layers import ConvLayerSpec, LayerKind


@pytest.fixture
def dpe():
    return DPEArrayConfig(kp=24, cp=30)


@pytest.fixture
def dram():
    return DRAMModel(bandwidth_gbps=19.2, clock_mhz=100.0)


def conv(in_ch=512, out_ch=512, k=3, hw=14, kind=LayerKind.CONV, groups=1):
    return ConvLayerSpec(
        name="l", kind=kind, in_channels=in_ch, out_channels=out_ch,
        kernel_size=k, input_hw=hw, groups=groups,
    )


class TestLayerLatency:
    def test_total_is_sum_of_components(self, dpe, dram):
        ll = layer_latency(conv(), dpe, dram)
        assert ll.total_cycles == pytest.approx(
            ll.compute_cycles
            + ll.exposed_iact_cycles
            + ll.exposed_weight_cycles
            + ll.exposed_oact_cycles
            + ll.onchip_weight_cycles
        )

    def test_pool_layer_is_free(self, dpe, dram):
        ll = layer_latency(conv(kind=LayerKind.POOL), dpe, dram)
        assert ll.total_cycles == 0.0

    def test_caching_reduces_latency(self, dpe, dram):
        layer = conv()
        base = layer_latency(layer, dpe, dram)
        cached = layer_latency(layer, dpe, dram, cached_weight_bytes=layer.weight_bytes)
        assert cached.total_cycles < base.total_cycles

    def test_caching_reduces_offchip_bytes(self, dpe, dram):
        layer = conv()
        base = layer_latency(layer, dpe, dram)
        cached = layer_latency(layer, dpe, dram, cached_weight_bytes=layer.weight_bytes)
        assert cached.offchip_bytes == pytest.approx(base.offchip_bytes - layer.weight_bytes)

    def test_cached_bytes_clamped(self, dpe, dram):
        layer = conv()
        over = layer_latency(layer, dpe, dram, cached_weight_bytes=10 * layer.weight_bytes)
        assert over.cached_weight_bytes == layer.weight_bytes

    def test_latency_monotone_in_cached_bytes(self, dpe, dram):
        layer = conv()
        latencies = [
            layer_latency(layer, dpe, dram, cached_weight_bytes=frac * layer.weight_bytes).total_cycles
            for frac in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(latencies, latencies[1:]))

    def test_first_layer_pays_iact_fetch(self, dpe, dram):
        layer = conv()
        interior = layer_latency(layer, dpe, dram, sb_capacity_bytes=10**9)
        first = layer_latency(layer, dpe, dram, sb_capacity_bytes=10**9, is_first_layer=True)
        assert first.offchip_bytes > interior.offchip_bytes

    def test_last_layer_pays_oact_writeback(self, dpe, dram):
        layer = conv()
        interior = layer_latency(layer, dpe, dram, ob_capacity_bytes=10**9)
        last = layer_latency(layer, dpe, dram, ob_capacity_bytes=10**9, is_last_layer=True)
        assert last.offchip_bytes > interior.offchip_bytes

    def test_activation_spill_when_sb_too_small(self, dpe, dram):
        layer = conv(hw=56, in_ch=256)
        fits = layer_latency(layer, dpe, dram, sb_capacity_bytes=10**9)
        spills = layer_latency(layer, dpe, dram, sb_capacity_bytes=1024)
        assert spills.offchip_bytes > fits.offchip_bytes

    def test_lower_bandwidth_increases_exposure(self, dpe):
        layer = conv()
        fast = layer_latency(layer, dpe, DRAMModel(bandwidth_gbps=38.4, clock_mhz=100))
        slow = layer_latency(layer, dpe, DRAMModel(bandwidth_gbps=4.8, clock_mhz=100))
        assert slow.exposed_weight_cycles > fast.exposed_weight_cycles

    def test_full_overlap_hides_most_weight_traffic(self, dpe, dram):
        layer = conv()
        none = layer_latency(layer, dpe, dram, weight_overlap_fraction=0.0)
        full = layer_latency(layer, dpe, dram, weight_overlap_fraction=1.0)
        assert full.exposed_weight_cycles <= none.exposed_weight_cycles

    def test_invalid_overlap_fraction_rejected(self, dpe, dram):
        with pytest.raises(ValueError):
            layer_latency(conv(), dpe, dram, weight_overlap_fraction=1.5)

    def test_memory_bound_flag(self, dpe):
        # A tiny-compute, huge-weight layer on a slow interface is memory bound.
        layer = conv(in_ch=2048, out_ch=1000, k=1, hw=1, kind=LayerKind.LINEAR)
        slow = DRAMModel(bandwidth_gbps=1.0, clock_mhz=100)
        assert layer_latency(layer, dpe, slow).is_memory_bound
