"""Unit tests for the DPE-array compute model."""

import pytest

from repro.accelerator.dpe import DPEArrayConfig
from repro.supernet.layers import ConvLayerSpec, LayerKind


@pytest.fixture
def dpe():
    return DPEArrayConfig(kp=16, cp=9, dpe_size=9)


def conv(kind=LayerKind.CONV, in_ch=64, out_ch=128, k=3, hw=28, groups=1, stride=1):
    return ConvLayerSpec(
        name="l",
        kind=kind,
        in_channels=in_ch,
        out_channels=out_ch,
        kernel_size=k,
        input_hw=hw,
        stride=stride,
        groups=groups,
    )


class TestComputeCycles:
    def test_peak_macs(self, dpe):
        assert dpe.macs_per_cycle == 16 * 9 * 9

    def test_pool_layer_is_free(self, dpe):
        assert dpe.compute_cycles(conv(kind=LayerKind.POOL)) == 0

    def test_cycles_positive_for_conv(self, dpe):
        assert dpe.compute_cycles(conv()) > 0

    def test_cycles_at_least_ideal(self, dpe):
        layer = conv()
        ideal = layer.macs / dpe.macs_per_cycle
        assert dpe.compute_cycles(layer) >= ideal * 0.999

    def test_utilization_bounded(self, dpe):
        for layer in (conv(), conv(k=1), conv(kind=LayerKind.DEPTHWISE_CONV, in_ch=64, out_ch=64, groups=64)):
            assert 0.0 < dpe.utilization(layer) <= 1.0

    def test_more_kernels_more_cycles(self, dpe):
        assert dpe.compute_cycles(conv(out_ch=256)) > dpe.compute_cycles(conv(out_ch=64))

    def test_larger_kernel_more_cycles(self, dpe):
        assert dpe.compute_cycles(conv(k=7)) > dpe.compute_cycles(conv(k=3))

    def test_depthwise_utilization_lower_than_standard(self, dpe):
        dw = conv(kind=LayerKind.DEPTHWISE_CONV, in_ch=128, out_ch=128, groups=128)
        std = conv(in_ch=128, out_ch=128)
        assert dpe.utilization(dw) < dpe.utilization(std)

    def test_pointwise_channel_flattening(self, dpe):
        # 1x1 convs flatten channels across the 9 multipliers: a layer with
        # exactly cp*9 input channels should complete in ~out/kp passes/pixel.
        layer = conv(k=1, in_ch=dpe.cp * 9, out_ch=dpe.kp)
        assert dpe.compute_cycles(layer) == layer.output_hw**2

    def test_few_input_channels_use_spatial_parallelism(self, dpe):
        # The stem (3 input channels) should not waste the whole CP dimension.
        stem = conv(in_ch=3, out_ch=64, k=7, hw=224, stride=2)
        assert dpe.utilization(stem) > 0.2

    def test_effective_macs_consistent(self, dpe):
        layer = conv()
        assert dpe.effective_macs_per_cycle(layer) == pytest.approx(
            dpe.utilization(layer) * dpe.macs_per_cycle
        )

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            DPEArrayConfig(kp=0, cp=1)


class TestBandwidthDemands:
    def test_weight_demand_scales_with_array(self):
        small = DPEArrayConfig(kp=8, cp=8).demanded_weight_bytes_per_cycle()
        large = DPEArrayConfig(kp=16, cp=16).demanded_weight_bytes_per_cycle()
        assert large == 4 * small

    def test_iact_demand_scales_with_kernel(self, dpe):
        assert dpe.demanded_iact_bytes_per_cycle(kernel_size=5) > dpe.demanded_iact_bytes_per_cycle(kernel_size=3)

    def test_oact_production(self, dpe):
        assert dpe.produced_oact_bytes_per_cycle() == dpe.kp
