"""Unit tests for the DRAM model."""

import pytest

from repro.accelerator.dram import DRAMModel
from repro.accelerator.platforms import ALVEO_U50, ANALYTIC_DEFAULT


@pytest.fixture
def dram():
    return DRAMModel(bandwidth_gbps=19.2, clock_mhz=100.0)


class TestTransfer:
    def test_bytes_per_cycle(self, dram):
        assert dram.bytes_per_cycle == pytest.approx(192.0)

    def test_zero_bytes_is_free(self, dram):
        assert dram.transfer_cycles(0) == 0.0
        assert dram.transfer_ms(0) == 0.0

    def test_burst_rounding(self, dram):
        # 1 byte still costs one 64-byte burst.
        assert dram.transfer_cycles(1) == pytest.approx(64 / 192.0)

    def test_linear_in_bytes(self, dram):
        assert dram.transfer_cycles(192_000) == pytest.approx(1000.0)
        assert dram.transfer_cycles(384_000) == pytest.approx(2000.0)

    def test_cycles_to_ms(self, dram):
        assert dram.cycles_to_ms(100_000) == pytest.approx(1.0)

    def test_transfer_ms_1mb(self, dram):
        # 1 MB at 19.2 GB/s is ~52 microseconds.
        assert dram.transfer_ms(1_000_000) == pytest.approx(0.0521, rel=0.05)

    def test_from_platform_uses_effective_bandwidth(self):
        model = DRAMModel.from_platform(ALVEO_U50)
        assert model.bandwidth_gbps == pytest.approx(ALVEO_U50.effective_bandwidth_gbps)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DRAMModel(bandwidth_gbps=0, clock_mhz=100)
        with pytest.raises(ValueError):
            DRAMModel(bandwidth_gbps=10, clock_mhz=0)
        with pytest.raises(ValueError):
            DRAMModel(bandwidth_gbps=10, clock_mhz=100, burst_bytes=0)


class TestEnergy:
    def test_off_chip_energy_linear(self, dram):
        assert dram.off_chip_energy_mj(2_000_000) == pytest.approx(2 * dram.off_chip_energy_mj(1_000_000))

    def test_on_chip_cheaper_than_off_chip(self, dram):
        nbytes = 1_000_000
        assert dram.on_chip_energy_mj(nbytes) < dram.off_chip_energy_mj(nbytes)

    def test_negative_bytes_clamped(self, dram):
        assert dram.off_chip_energy_mj(-5) == 0.0
