"""Unit tests for the design-space explorer (Fig. 12)."""

import pytest

from repro.accelerator.dse import DesignPoint, DesignSpaceExplorer
from repro.accelerator.platforms import ANALYTIC_DEFAULT


@pytest.fixture(scope="module")
def explorer(request):
    from repro.supernet.zoo import load_supernet, paper_pareto_subnets

    subnets = paper_pareto_subnets(load_supernet("ofa_mobilenetv3"))
    return DesignSpaceExplorer(subnets, base_platform=ANALYTIC_DEFAULT)


class TestDesignPoint:
    def test_time_save_percent(self):
        point = DesignPoint(
            pb_kb=1024, bandwidth_gbps=19.2, macs_per_cycle=6480,
            mean_latency_no_pb_ms=10.0, mean_latency_with_pb_ms=9.0,
        )
        assert point.time_save_percent == pytest.approx(10.0)

    def test_zero_baseline_guard(self):
        point = DesignPoint(
            pb_kb=0, bandwidth_gbps=19.2, macs_per_cycle=6480,
            mean_latency_no_pb_ms=0.0, mean_latency_with_pb_ms=0.0,
        )
        assert point.time_save_percent == 0.0


class TestExplorer:
    def test_empty_subnets_rejected(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer([])

    def test_zero_pb_saves_nothing(self, explorer):
        assert explorer.evaluate(pb_kb=0).time_save_percent == 0.0

    def test_saving_positive_with_pb(self, explorer):
        assert explorer.evaluate(pb_kb=1728).time_save_percent > 0.0

    def test_larger_pb_saves_more(self, explorer):
        small = explorer.evaluate(pb_kb=256).time_save_percent
        large = explorer.evaluate(pb_kb=3456).time_save_percent
        assert large > small

    def test_lower_bandwidth_increases_relative_saving(self, explorer):
        slow = explorer.evaluate(pb_kb=1728, bandwidth_gbps=9.6).time_save_percent
        fast = explorer.evaluate(pb_kb=1728, bandwidth_gbps=38.4).time_save_percent
        assert slow > fast

    def test_more_compute_increases_relative_saving(self, explorer):
        weak = explorer.evaluate(pb_kb=1728, macs_per_cycle=1296).time_save_percent
        strong = explorer.evaluate(pb_kb=1728, macs_per_cycle=6480).time_save_percent
        assert strong >= weak

    def test_sweep_size(self, explorer):
        points = explorer.sweep(
            pb_kb_values=(512, 1728),
            bandwidth_values_gbps=(9.6, 19.2),
            macs_per_cycle_values=(1296,),
        )
        assert len(points) == 4

    def test_best_point_is_maximum(self, explorer):
        points = explorer.sweep(
            pb_kb_values=(512, 1728), bandwidth_values_gbps=(9.6, 19.2),
            macs_per_cycle_values=(1296,),
        )
        best = explorer.best_point(points)
        assert best.time_save_percent == max(p.time_save_percent for p in points)
