"""Unit tests for the Persistent Buffer and CachedSubGraph."""

import pytest

from repro.accelerator.persistent_buffer import CachedSubGraph, PersistentBuffer


class TestCachedSubGraph:
    def test_from_subnet_covers_subnet(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        sg = CachedSubGraph.from_subnet(subnet)
        assert sg.weight_bytes == subnet.weight_bytes
        assert sg.overlap_bytes(subnet) == subnet.weight_bytes

    def test_empty_subgraph(self, resnet50_subnets):
        sg = CachedSubGraph.empty()
        assert sg.weight_bytes == 0
        assert sg.overlap_bytes(resnet50_subnets[0]) == 0

    def test_overlap_bounded(self, resnet50_subnets):
        small, large = resnet50_subnets[0], resnet50_subnets[-1]
        sg = CachedSubGraph.from_subnet(small)
        assert sg.overlap_bytes(large) <= min(sg.weight_bytes, large.weight_bytes)

    def test_overlap_per_layer_sums_to_total(self, resnet50_subnets):
        small, large = resnet50_subnets[0], resnet50_subnets[-1]
        sg = CachedSubGraph.from_subnet(small)
        per_layer = sg.overlap_bytes_per_layer(large)
        assert sum(per_layer.values()) == sg.overlap_bytes(large)

    def test_encode_dimension(self, resnet50, resnet50_subnets):
        sg = CachedSubGraph.from_subnet(resnet50_subnets[0])
        assert sg.encode(resnet50).shape == (2 * resnet50.num_layers,)

    def test_layer_bytes_lookup(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        sg = CachedSubGraph.from_subnet(subnet)
        name = subnet.layer_names[0]
        assert sg.layer_bytes(name) > 0
        assert sg.layer_bytes("missing") == 0


class TestPersistentBuffer:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PersistentBuffer(-1)

    def test_load_within_capacity(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        pb = PersistentBuffer(subnet.weight_bytes + 1024)
        fetched = pb.load(CachedSubGraph.from_subnet(subnet))
        assert fetched == subnet.weight_bytes
        assert pb.occupancy_bytes == subnet.weight_bytes

    def test_fit_respects_capacity(self, resnet50_subnets):
        subnet = resnet50_subnets[-1]
        pb = PersistentBuffer(1024 * 1024)
        fitted = pb.fit_subgraph(CachedSubGraph.from_subnet(subnet))
        assert fitted.weight_bytes <= pb.capacity_bytes

    def test_fit_prefers_largest_layers(self, resnet50_subnets):
        subnet = resnet50_subnets[-1]
        pb = PersistentBuffer(2 * 1024 * 1024)
        fitted = pb.fit_subgraph(CachedSubGraph.from_subnet(subnet))
        kept_sizes = sorted((sl.weight_bytes for sl in fitted.slices.values()), reverse=True)
        all_sizes = sorted((sl.weight_bytes for sl in subnet.layer_slices.values()), reverse=True)
        # The single largest layer that fits must have been admitted.
        admissible = [s for s in all_sizes if s <= pb.capacity_bytes]
        if admissible:
            assert kept_sizes[0] == admissible[0]

    def test_reload_only_fetches_new_bytes(self, resnet50_subnets):
        small, large = resnet50_subnets[0], resnet50_subnets[1]
        pb = PersistentBuffer(10**9)
        first = pb.load(CachedSubGraph.from_subnet(small))
        second = pb.load(CachedSubGraph.from_subnet(large))
        assert first == small.weight_bytes
        # Only the delta between large and small needs to cross the interface.
        assert second == pytest.approx(large.weight_bytes - small.shared_bytes_with(large))

    def test_identical_reload_is_free(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        pb = PersistentBuffer(10**9)
        pb.load(CachedSubGraph.from_subnet(subnet))
        assert pb.load(CachedSubGraph.from_subnet(subnet)) == 0

    def test_hit_bytes_and_stats(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        pb = PersistentBuffer(10**9)
        pb.load(CachedSubGraph.from_subnet(subnet))
        assert pb.hit_bytes(subnet) == subnet.weight_bytes
        pb.record_serve(subnet)
        assert pb.stats.byte_hit_ratio == pytest.approx(1.0)

    def test_zero_capacity_never_hits(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        pb = PersistentBuffer(0)
        pb.load(CachedSubGraph.from_subnet(subnet))
        assert pb.hit_bytes(subnet) == 0
        assert pb.occupancy_fraction == 0.0

    def test_vector_hit_ratio_bounds(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        pb = PersistentBuffer(10**9)
        assert pb.vector_hit_ratio(subnet) == 0.0
        pb.load(CachedSubGraph.from_subnet(subnet))
        assert pb.vector_hit_ratio(subnet) == pytest.approx(1.0)

    def test_clear(self, resnet50_subnets):
        pb = PersistentBuffer(10**9)
        pb.load(CachedSubGraph.from_subnet(resnet50_subnets[0]))
        pb.clear()
        assert pb.occupancy_bytes == 0
