"""Unit tests for platform configurations."""

import pytest

from repro.accelerator.platforms import (
    ALVEO_U50,
    ANALYTIC_DEFAULT,
    CPU_I7_10750H,
    PlatformConfig,
    XILINX_DPU_ZCU104,
    ZCU104,
    platform_by_name,
)


class TestPlatformConfig:
    def test_analytic_default_matches_paper(self):
        # 19.2 GB/s and 1.296 TFLOPS at 100 MHz (Section 5.2).
        assert ANALYTIC_DEFAULT.off_chip_bandwidth_gbps == 19.2
        assert ANALYTIC_DEFAULT.peak_tflops == pytest.approx(1.296, rel=1e-6)

    def test_zcu104_peak_matches_table2(self):
        # 2592 ops/cycle -> 259.2 GFLOPS at 100 MHz.
        assert 2 * ZCU104.macs_per_cycle == 2592
        assert ZCU104.peak_gflops == pytest.approx(259.2)

    def test_alveo_peak_matches_table2(self):
        assert 2 * ALVEO_U50.macs_per_cycle == 9216
        assert ALVEO_U50.peak_gflops == pytest.approx(921.6)

    def test_dpu_peak_matches_table2(self):
        assert 2 * XILINX_DPU_ZCU104.macs_per_cycle == 2304

    def test_off_chip_bytes_per_cycle(self):
        assert ANALYTIC_DEFAULT.off_chip_bytes_per_cycle == pytest.approx(192.0)

    def test_alveo_contention_reduces_effective_bandwidth(self):
        assert ALVEO_U50.effective_bandwidth_gbps < ALVEO_U50.off_chip_bandwidth_gbps

    def test_without_pb_variant(self):
        variant = ZCU104.without_pb()
        assert not variant.has_pb
        assert variant.total_buffer_kb == ZCU104.total_buffer_kb

    def test_with_pb_variant(self):
        variant = ZCU104.with_pb(512)
        assert variant.pb_kb == 512

    def test_scaled_variant(self):
        variant = ANALYTIC_DEFAULT.scaled(bandwidth_gbps=9.6, kp=8, cp=8)
        assert variant.off_chip_bandwidth_gbps == 9.6
        assert variant.macs_per_cycle == 8 * 8 * 9

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(name="bad", clock_mhz=0, kp=1, cp=1)
        with pytest.raises(ValueError):
            PlatformConfig(name="bad", clock_mhz=100, kp=1, cp=1, pb_kb=100, total_buffer_kb=50)
        with pytest.raises(ValueError):
            PlatformConfig(name="bad", clock_mhz=100, kp=1, cp=1, dram_contention_factor=0.5)

    def test_platform_by_name(self):
        assert platform_by_name("zcu104") is ZCU104
        assert platform_by_name("cpu-i7-10750h") is CPU_I7_10750H
        with pytest.raises(ValueError):
            platform_by_name("tpu-v4")
