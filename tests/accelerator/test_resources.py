"""Unit tests for FPGA resource estimation (Tables 2/3) and the reuse matrix."""

import pytest

from repro.accelerator.platforms import ALVEO_U50, ZCU104
from repro.accelerator.resources import (
    buffer_allocation_table,
    estimate_resources,
    resource_comparison_table,
)
from repro.accelerator.reuse_matrix import REUSE_COMPARISON, reuse_comparison_table


class TestResourceEstimate:
    def test_zcu104_lut_ballpark(self):
        # Table 2: ~61k (w/o PB) and ~64k (w/ PB) LUTs.
        without = estimate_resources(ZCU104, with_pb=False)
        with_pb = estimate_resources(ZCU104, with_pb=True)
        assert 40_000 < without.lut < 90_000
        assert with_pb.lut > without.lut

    def test_pb_costs_logic_not_storage(self):
        # Total on-chip storage is held constant (Tab. 3), so the PB costs
        # extra control logic (LUT/FF) rather than extra URAM.
        without = estimate_resources(ZCU104, with_pb=False)
        with_pb = estimate_resources(ZCU104, with_pb=True)
        assert with_pb.uram >= without.uram
        assert with_pb.register > without.register

    def test_dsp_scales_with_array(self):
        zcu = estimate_resources(ZCU104, with_pb=True)
        alveo = estimate_resources(ALVEO_U50, with_pb=True)
        assert alveo.dsp > zcu.dsp

    def test_peak_ops_match_platform(self):
        est = estimate_resources(ZCU104, with_pb=True)
        assert est.peak_ops_per_cycle == 2 * ZCU104.macs_per_cycle
        assert est.gflops_100mhz == pytest.approx(259.2)

    def test_utilization_fractions(self):
        est = estimate_resources(ZCU104, with_pb=True)
        util = est.utilization()
        assert set(util) == {"LUT", "Register", "BRAM", "URAM", "DSP"}
        assert all(0 <= v <= 1.2 for v in util.values())

    def test_utilization_unknown_device_raises(self):
        est = estimate_resources(ZCU104.scaled(name="mystery"), with_pb=True)
        with pytest.raises(ValueError):
            est.utilization()

    def test_comparison_table_has_four_rows(self):
        rows = resource_comparison_table()
        assert len(rows) == 4
        assert all("LUT" in row for row in rows.values())


class TestBufferAllocationTable:
    def test_both_configurations_present(self):
        table = buffer_allocation_table(ZCU104)
        assert set(table) == {"with_pb_kb", "without_pb_kb"}

    def test_pb_only_in_with_pb(self):
        table = buffer_allocation_table(ZCU104)
        assert table["with_pb_kb"]["PB"] > 0
        assert table["without_pb_kb"]["PB"] == 0

    def test_overall_total_consistent(self):
        table = buffer_allocation_table(ZCU104)
        for config, rows in table.items():
            parts = sum(v for k, v in rows.items() if k != "Overall")
            assert rows["Overall"] == pytest.approx(parts, rel=1e-6)


class TestReuseMatrix:
    def test_only_sushi_has_subgraph_reuse(self):
        for entry in REUSE_COMPARISON:
            if entry.name == "SUSHI":
                assert entry.subgraph_reuse_spatial and entry.subgraph_reuse_temporal
            else:
                assert not entry.subgraph_reuse_spatial
                assert not entry.subgraph_reuse_temporal

    def test_table_rows_match_paper(self):
        table = reuse_comparison_table()
        assert set(table) == {"MAERI", "NVDLA", "Eyeriss", "Xilinx DPU", "SUSHI"}

    def test_values_are_yes_no(self):
        for row in reuse_comparison_table().values():
            assert set(row.values()) <= {"yes", "no"}
