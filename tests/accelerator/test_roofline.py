"""Unit tests for the roofline model (Fig. 11)."""

import numpy as np
import pytest

from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.accelerator.platforms import ANALYTIC_DEFAULT
from repro.accelerator.roofline import RooflineModel


@pytest.fixture(scope="module")
def roofline():
    return RooflineModel(ANALYTIC_DEFAULT)


class TestRooflineCurve:
    def test_ridge_point_matches_paper_config(self, roofline):
        # 1.296 TFLOPS / 19.2 GB/s = 67.5 FLOPs/byte.
        assert roofline.ridge_point == pytest.approx(67.5, rel=1e-3)

    def test_attainable_capped_at_peak(self, roofline):
        assert roofline.attainable_tflops(10_000) == pytest.approx(roofline.peak_tflops)

    def test_attainable_linear_below_ridge(self, roofline):
        low = roofline.attainable_tflops(10)
        assert low == pytest.approx(10 * 19.2e9 / 1e12)

    def test_zero_intensity(self, roofline):
        assert roofline.attainable_tflops(0) == 0.0

    def test_curve_matches_pointwise(self, roofline):
        xs = [1.0, 10.0, 67.5, 200.0]
        curve = roofline.curve(xs)
        assert np.allclose(curve, [roofline.attainable_tflops(x) for x in xs])

    def test_higher_bandwidth_raises_sloped_region(self, roofline):
        assert roofline.attainable_tflops(10, bandwidth_gbps=38.4) > roofline.attainable_tflops(10)


class TestSubnetPoints:
    def test_intensity_positive(self, roofline, resnet50_subnets):
        for subnet in resnet50_subnets:
            assert roofline.subnet_intensity(subnet) > 0

    def test_sgs_raises_intensity(self, roofline, resnet50_subnets):
        for subnet in resnet50_subnets:
            cached = CachedSubGraph.from_subnet(subnet)
            assert roofline.subnet_intensity(subnet, cached) > roofline.subnet_intensity(subnet)

    def test_sgs_improves_effective_bandwidth(self, roofline, resnet50_subnets):
        subnet = resnet50_subnets[0]
        cached = CachedSubGraph.from_subnet(subnet)
        assert roofline.effective_bandwidth_gbps(subnet, cached) > roofline.bandwidth_gbps
        assert roofline.effective_bandwidth_gbps(subnet, None) == roofline.bandwidth_gbps

    def test_family_points_labels(self, roofline, resnet50_subnets):
        points = roofline.family_points(resnet50_subnets)
        assert [p.label for p in points] == [sn.name for sn in resnet50_subnets]

    def test_attainable_never_exceeds_peak(self, roofline, mobilenetv3_subnets):
        for point in roofline.family_points(mobilenetv3_subnets):
            assert point.attainable_tflops <= roofline.peak_tflops + 1e-9
