"""Unit tests for weight-tile decomposition."""

import pytest

from repro.accelerator.dpe import DPEArrayConfig
from repro.accelerator.tiling import first_tile_bytes, tile_layer
from repro.supernet.layers import ConvLayerSpec, LayerKind


@pytest.fixture
def dpe():
    return DPEArrayConfig(kp=16, cp=9)


def conv(kind=LayerKind.CONV, in_ch=64, out_ch=128, k=3, hw=28, groups=1):
    return ConvLayerSpec(
        name="l", kind=kind, in_channels=in_ch, out_channels=out_ch,
        kernel_size=k, input_hw=hw, groups=groups,
    )


class TestTileLayer:
    def test_tiles_cover_layer(self, dpe):
        layer = conv()
        tile = tile_layer(layer, dpe)
        assert tile.total_bytes >= layer.weight_bytes

    def test_pool_has_no_tiles(self, dpe):
        tile = tile_layer(conv(kind=LayerKind.POOL), dpe)
        assert tile.num_tiles == 0
        assert tile.tile_bytes == 0

    def test_tile_kernels_bounded_by_kp(self, dpe):
        tile = tile_layer(conv(out_ch=512), dpe)
        assert tile.kernels <= dpe.kp

    def test_small_layer_single_tile(self, dpe):
        layer = conv(in_ch=8, out_ch=8)
        assert tile_layer(layer, dpe).num_tiles == 1

    def test_db_capacity_shrinks_tiles(self, dpe):
        layer = conv(out_ch=512, in_ch=256)
        unconstrained = tile_layer(layer, dpe)
        constrained = tile_layer(layer, dpe, db_capacity_bytes=unconstrained.tile_bytes // 2)
        assert constrained.tile_bytes <= unconstrained.tile_bytes
        assert constrained.num_tiles >= unconstrained.num_tiles

    def test_depthwise_tiles(self, dpe):
        layer = conv(kind=LayerKind.DEPTHWISE_CONV, in_ch=128, out_ch=128, groups=128)
        tile = tile_layer(layer, dpe)
        assert tile.channels == 1
        assert tile.num_tiles >= 128 // dpe.kp

    def test_pointwise_channel_cover(self, dpe):
        layer = conv(k=1, in_ch=256, out_ch=64)
        tile = tile_layer(layer, dpe)
        assert tile.channels <= dpe.cp * dpe.dpe_size


class TestFirstTileBytes:
    def test_bounded_by_layer(self, dpe):
        layer = conv(in_ch=8, out_ch=8)
        assert first_tile_bytes(layer, dpe) <= layer.weight_bytes

    def test_zero_for_pool(self, dpe):
        assert first_tile_bytes(conv(kind=LayerKind.POOL), dpe) == 0

    def test_positive_for_conv(self, dpe):
        assert first_tile_bytes(conv(), dpe) > 0
