"""Unit tests for the analysis helpers (reporting, comparisons, intensities)."""

import pytest

from repro.analysis.arithmetic_intensity import (
    layer_arithmetic_intensities,
    subnet_arithmetic_intensity_series,
)
from repro.analysis.comparison import geometric_mean_speedup, speedup_series
from repro.analysis.reporting import format_kv, format_series, format_table


class TestReporting:
    def test_format_table_alignment_and_content(self):
        rows = {"a": {"x": 1.2345, "y": True}, "b": {"x": 2.0, "z": "text"}}
        text = format_table(rows, title="T", precision=2)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.23" in text and "yes" in text and "text" in text
        # Missing cells render as empty strings without crashing.
        assert "z" in lines[1]

    def test_format_table_empty(self):
        assert format_table({}, title="empty") == "empty"

    def test_format_series(self):
        text = format_series([1, 2], [0.5, 0.25], x_label="q", y_label="lat")
        assert "q=1" in text and "lat" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1, 2], [1.0])

    def test_format_kv(self):
        text = format_kv({"alpha": 1.5, "beta": "x"}, title="KV")
        assert text.splitlines()[0] == "KV"
        assert "alpha" in text and "1.500" in text


class TestComparison:
    def test_speedup_series(self):
        assert speedup_series([2.0, 4.0], [1.0, 2.0]) == [2.0, 2.0]

    def test_geomean(self):
        assert geometric_mean_speedup([2.0, 8.0], [1.0, 1.0]) == pytest.approx(4.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            speedup_series([1.0], [1.0, 2.0])

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ValueError):
            speedup_series([0.0], [1.0])


class TestArithmeticIntensity:
    def test_series_lengths_match(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        ids, values = subnet_arithmetic_intensity_series(subnet)
        assert len(ids) == len(values) > 0

    def test_conv_only_filter(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        conv_ids, _ = subnet_arithmetic_intensity_series(subnet, conv_only=True)
        all_ids, _ = subnet_arithmetic_intensity_series(subnet, conv_only=False)
        assert len(conv_ids) < len(all_ids)

    def test_caching_raises_intensities(self, resnet50_subnets):
        layers = resnet50_subnets[0].active_layers()[:5]
        base = layer_arithmetic_intensities(layers)
        cached = layer_arithmetic_intensities(layers, cached_weight_bytes=10**9)
        assert all(c >= b for b, c in zip(base, cached))
