"""Shared fixtures for the test suite.

SuperNet construction and Pareto-family materialization are pure and cheap
but used by almost every test module, so they are provided as session-scoped
fixtures.
"""

from __future__ import annotations

import pytest

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT, ZCU104
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.zoo import load_supernet, paper_pareto_subnets


@pytest.fixture(scope="session")
def resnet50():
    return load_supernet("ofa_resnet50")


@pytest.fixture(scope="session")
def mobilenetv3():
    return load_supernet("ofa_mobilenetv3")


@pytest.fixture(scope="session")
def resnet50_subnets(resnet50):
    return paper_pareto_subnets(resnet50)


@pytest.fixture(scope="session")
def mobilenetv3_subnets(mobilenetv3):
    return paper_pareto_subnets(mobilenetv3)


@pytest.fixture(scope="session")
def resnet50_accuracy(resnet50):
    return AccuracyModel(resnet50)


@pytest.fixture(scope="session")
def analytic_model():
    return SushiAccelModel(ANALYTIC_DEFAULT, with_pb=True)


@pytest.fixture(scope="session")
def analytic_model_no_pb():
    return SushiAccelModel(ANALYTIC_DEFAULT, with_pb=False)


@pytest.fixture(scope="session")
def zcu104_model():
    return SushiAccelModel(ZCU104, with_pb=True)
