"""Unit tests for the caching-policy ablations."""

import pytest

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT
from repro.core.ablations import (
    FrequencyPolicy,
    MostRecentPolicy,
    NeverCachePolicy,
    RunningAveragePolicy,
    StaticSharedPolicy,
)
from repro.core.candidates import build_candidate_set
from repro.experiments import ablation_caching


@pytest.fixture(scope="module")
def setup(mobilenetv3, mobilenetv3_subnets):
    accel = SushiAccelModel(ANALYTIC_DEFAULT, with_pb=True)
    candidates = build_candidate_set(
        mobilenetv3_subnets, capacity_bytes=accel.pb_capacity_bytes
    )
    return mobilenetv3, mobilenetv3_subnets, candidates


class TestPolicies:
    def test_never_cache_keeps_current(self):
        policy = NeverCachePolicy()
        assert policy.propose(3) == 3

    def test_static_policy_always_fixed(self):
        policy = StaticSharedPolicy(fixed_idx=2)
        policy.observe(5)
        assert policy.propose(0) == 2
        with pytest.raises(ValueError):
            StaticSharedPolicy(fixed_idx=-1)

    def test_most_recent_tracks_last(self, setup):
        supernet, subnets, candidates = setup
        policy = MostRecentPolicy(subnets, candidates, supernet)
        assert policy.propose(1) == 1  # nothing observed yet
        policy.observe(0)
        first = policy.propose(1)
        policy.observe(len(subnets) - 1)
        second = policy.propose(1)
        assert 0 <= first < len(candidates)
        assert 0 <= second < len(candidates)

    def test_frequency_prefers_modal_subnet(self, setup):
        supernet, subnets, candidates = setup
        policy = FrequencyPolicy(subnets, candidates, supernet, window=8)
        for idx in (0, 0, 0, 5):
            policy.observe(idx)
        modal = policy.propose(0)
        only_five = FrequencyPolicy(subnets, candidates, supernet, window=8)
        only_five.observe(5)
        assert modal != only_five.propose(0) or len(candidates) == 1

    def test_running_average_matches_scheduler_rule(self, setup):
        supernet, subnets, candidates = setup
        policy = RunningAveragePolicy(subnets, candidates, supernet, window=2)
        assert policy.propose(4) == 4  # no history yet
        policy.observe(2)
        policy.observe(2)
        proposal = policy.propose(0)
        assert 0 <= proposal < len(candidates)

    def test_invalid_windows_rejected(self, setup):
        supernet, subnets, candidates = setup
        with pytest.raises(ValueError):
            FrequencyPolicy(subnets, candidates, supernet, window=0)
        with pytest.raises(ValueError):
            RunningAveragePolicy(subnets, candidates, supernet, window=0)


class TestAblationExperiment:
    def test_run_and_report(self):
        result = ablation_caching.run("ofa_mobilenetv3", num_queries=60)
        names = {o.policy_name for o in result.outcomes}
        assert names == {"never", "static-shared", "most-recent", "frequency", "running-average"}
        outcomes = result.by_name()
        assert outcomes["running-average"].mean_byte_hit_ratio > outcomes["never"].mean_byte_hit_ratio
        assert outcomes["never"].cache_reload_bytes == 0
        assert "Ablation" in ablation_caching.report(result)
